"""Integration tests for the workload generators."""

import pytest

from repro.errors import QueryRejectedError
from repro.workloads import (
    UniversityConfig,
    build_university,
    student_query_mix,
)
from repro.workloads.university import course_ids, student_ids


class TestUniversityGenerator:
    def test_determinism(self):
        a = build_university(UniversityConfig(students=20, seed=1))
        b = build_university(UniversityConfig(students=20, seed=1))
        rows_a = sorted(a.execute("select * from Grades").rows)
        rows_b = sorted(b.execute("select * from Grades").rows)
        assert rows_a == rows_b

    def test_scaling(self):
        db = build_university(UniversityConfig(students=35, courses=5))
        assert db.execute("select count(*) from Students").scalar() == 35
        assert db.execute("select count(*) from Courses").scalar() == 5

    def test_integrity_constraints_hold(self):
        db = build_university(UniversityConfig(students=40, seed=9))
        assert db.validate_participations() == []

    def test_every_student_registered(self):
        db = build_university(UniversityConfig(students=25, seed=2))
        unregistered = db.execute(
            "select count(*) from Students s left join Registered r "
            "on s.student_id = r.student_id where r.course_id is null"
        ).scalar()
        assert unregistered == 0

    def test_views_deployed_and_granted(self):
        db = build_university(UniversityConfig(students=10))
        names = {v.name for v in db.catalog.views() if v.authorization}
        assert {"MyGrades", "CoStudentGrades", "AvgGrades", "SingleGrade"} <= names
        session = db.connect(user_id="11").session
        available = {v.name for v in db.available_views(session)}
        assert "MyGrades" in available
        assert "SingleGrade" not in available  # secretary-only

    def test_helpers(self):
        db = build_university(UniversityConfig(students=10, courses=4))
        assert len(student_ids(db)) == 10
        assert len(course_ids(db)) == 4


class TestQueryMix:
    @pytest.fixture(scope="class")
    def db(self):
        return build_university(UniversityConfig(students=30, seed=11))

    def test_deterministic(self, db):
        a = student_query_mix(db, "11", count=25, seed=4)
        b = student_query_mix(db, "11", count=25, seed=4)
        assert [q.sql for q in a] == [q.sql for q in b]

    def test_labels_match_nontruman_outcomes(self, db):
        """The workload's ground-truth labels agree with the checker:
        authorized ⇔ accepted."""
        conn = db.connect(user_id="11", mode="non-truman")
        for query in student_query_mix(db, "11", count=80, seed=5):
            try:
                conn.query(query.sql)
                accepted = True
            except QueryRejectedError:
                accepted = False
            assert accepted == (query.label == "authorized"), str(query)

    def test_misleading_queries_differ_under_truman(self, db):
        """Each 'misleading' query returns a different answer under the
        Truman rewrite than the true answer."""
        db.set_truman_view("Grades", "MyGrades")
        truman = db.connect(user_id="11", mode="truman")
        seen_misleading = 0
        for query in student_query_mix(db, "11", count=80, seed=6):
            if query.label != "misleading":
                continue
            seen_misleading += 1
            truman_answer = truman.query(query.sql).rows
            true_answer = db.execute(query.sql).rows
            assert truman_answer != true_answer, query.sql
        assert seen_misleading > 0
        db.truman_policy.clear()

    def test_all_labels_present(self, db):
        labels = {q.label for q in student_query_mix(db, "11", count=100, seed=7)}
        assert labels == {"authorized", "misleading", "unauthorized"}
