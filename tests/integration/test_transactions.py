"""Transaction support (substrate feature): BEGIN / COMMIT / ROLLBACK."""

import pytest

from repro.db import Database
from repro.errors import ExecutionError, IntegrityError


@pytest.fixture
def db():
    database = Database()
    database.execute_script(
        """
        create table T(id int primary key, v varchar(10));
        insert into T values (1, 'a'), (2, 'b');
        """
    )
    return database


class TestBasicTransactions:
    def test_commit_keeps_changes(self, db):
        db.execute("begin")
        db.execute("insert into T values (3, 'c')")
        db.execute("commit")
        assert db.execute("select count(*) from T").scalar() == 3

    def test_rollback_undoes_insert(self, db):
        db.execute("begin")
        db.execute("insert into T values (3, 'c')")
        db.execute("rollback")
        assert db.execute("select count(*) from T").scalar() == 2

    def test_rollback_undoes_delete(self, db):
        db.execute("begin transaction")
        db.execute("delete from T where id = 1")
        assert db.execute("select count(*) from T").scalar() == 1
        db.execute("rollback transaction")
        assert sorted(db.execute("select id from T").column("id")) == [1, 2]

    def test_rollback_undoes_update(self, db):
        db.execute("begin")
        db.execute("update T set v = 'zzz' where id = 1")
        db.execute("rollback")
        assert db.execute("select v from T where id = 1").scalar() == "a"

    def test_rollback_mixed_sequence_in_reverse(self, db):
        db.execute("begin")
        db.execute("insert into T values (3, 'c')")
        db.execute("update T set v = 'B' where id = 2")
        db.execute("delete from T where id = 1")
        db.execute("rollback")
        rows = sorted(db.execute("select id, v from T").rows)
        assert rows == [(1, "a"), (2, "b")]

    def test_unique_index_restored_after_rollback(self, db):
        db.execute("begin")
        db.execute("delete from T where id = 1")
        db.execute("insert into T values (1, 'replacement')")
        db.execute("rollback")
        # original row is back; the replacement is gone; PK still enforced
        assert db.execute("select v from T where id = 1").scalar() == "a"
        with pytest.raises(IntegrityError):
            db.execute("insert into T values (1, 'dup')")


class TestTransactionErrors:
    def test_nested_begin_rejected(self, db):
        db.execute("begin")
        with pytest.raises(ExecutionError):
            db.execute("begin")
        db.execute("rollback")

    def test_commit_without_begin(self, db):
        with pytest.raises(ExecutionError):
            db.execute("commit")

    def test_rollback_without_begin(self, db):
        with pytest.raises(ExecutionError):
            db.execute("rollback")

    def test_autocommit_outside_transaction(self, db):
        db.execute("insert into T values (9, 'x')")
        assert db.execute("select count(*) from T").scalar() == 3


class TestTransactionsAndValidity:
    def test_rollback_invalidates_conditional_cache(self, db):
        """A conditional decision made mid-transaction must not survive
        the rollback of the data it depended on."""
        db.execute_script(
            """
            create table Registered(student_id varchar(5), course_id varchar(6),
                primary key (student_id, course_id));
            create table Grades(student_id varchar(5), course_id varchar(6),
                grade float, primary key (student_id, course_id));
            insert into Grades values ('11','CS1',3.0), ('12','CS1',4.0);
            create authorization view CoGrades as
                select Grades.student_id, Grades.course_id, Grades.grade
                from Grades, Registered
                where Registered.student_id = $user_id
                  and Grades.course_id = Registered.course_id;
            create authorization view MyRegs as
                select * from Registered where student_id = $user_id;
            """
        )
        db.grant_public("CoGrades")
        db.grant_public("MyRegs")
        from repro.nontruman.checker import ValidityChecker
        from repro.sql import parse_query

        checker = ValidityChecker(db, use_cache=True)
        session = db.connect(user_id="11").session
        query = parse_query("select * from Grades where course_id = 'CS1'")

        db.execute("begin")
        db.execute("insert into Registered values ('11', 'CS1')")
        assert checker.check(query, session).conditional
        db.execute("rollback")
        refreshed = checker.check(query, session)
        assert not refreshed.from_cache or not refreshed.valid
        assert not refreshed.valid


def test_round_trip_parse_render():
    from repro.sql import parse_statement, render

    for sql in ("begin", "commit", "rollback"):
        stmt = parse_statement(sql)
        assert parse_statement(render(stmt)) == stmt
