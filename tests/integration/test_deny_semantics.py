"""Deny-semantics via negation views (paper §7).

"Most access control list based models support a 'deny-semantics'.
It is straightforward to create authorization views with negation
conditions to implement (and generalize) deny-lists.  However,
equivalence testing may be a bit more complicated under this setting."

These tests exercise views whose predicates EXCLUDE rows (NOT IN,
<>, NOT LIKE) and confirm the inference engine handles the equivalence
reasoning the paper anticipates as "a bit more complicated"."""

import pytest

from repro.db import Database
from repro.errors import QueryRejectedError


@pytest.fixture
def db():
    database = Database()
    database.execute_script(
        """
        create table Documents(doc_id int primary key,
            title varchar(30) not null, classification varchar(12) not null);
        insert into Documents values
            (1, 'cafeteria menu', 'public'),
            (2, 'org chart', 'internal'),
            (3, 'roadmap', 'internal'),
            (4, 'merger plan', 'secret'),
            (5, 'key escrow', 'topsecret');
        create authorization view NonSecretDocs as
            select * from Documents
            where classification not in ('secret', 'topsecret');
        create authorization view NotTopSecret as
            select * from Documents where classification <> 'topsecret';
        """
    )
    database.grant_public("NonSecretDocs")
    database.grant("NotTopSecret", to_user="manager")
    return database


class TestDenyListViews:
    def test_deny_view_query_matches(self, db):
        conn = db.connect(user_id="staff", mode="non-truman")
        sql = (
            "select title from Documents "
            "where classification not in ('secret', 'topsecret')"
        )
        decision = conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        result = conn.query(sql)
        assert sorted(result.column("title")) == [
            "cafeteria menu", "org chart", "roadmap",
        ]

    def test_stronger_exclusion_accepted(self, db):
        """Excluding MORE than the deny list does is a valid refinement."""
        conn = db.connect(user_id="staff", mode="non-truman")
        sql = (
            "select title from Documents "
            "where classification not in ('secret', 'topsecret', 'internal')"
        )
        decision = conn.check_validity(sql)
        assert decision.valid, decision.describe()
        assert conn.query(sql).column("title") == ["cafeteria menu"]

    def test_positive_selection_inside_allowed_region(self, db):
        conn = db.connect(user_id="staff", mode="non-truman")
        sql = "select title from Documents where classification = 'public'"
        decision = conn.check_validity(sql)
        assert decision.valid, decision.describe()

    def test_denied_region_rejected(self, db):
        conn = db.connect(user_id="staff", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query(
                "select title from Documents where classification = 'secret'"
            )

    def test_full_scan_rejected(self, db):
        conn = db.connect(user_id="staff", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query("select title from Documents")

    def test_weaker_deny_list_view_does_not_cover_stronger_need(self, db):
        """The manager's view excludes only topsecret; a query excluding
        only 'secret' still exposes topsecret rows and must be rejected."""
        conn = db.connect(user_id="manager", mode="non-truman")
        decision = conn.check_validity(
            "select title from Documents where classification <> 'secret'"
        )
        assert not decision.valid

    def test_manager_sees_wider_region(self, db):
        conn = db.connect(user_id="manager", mode="non-truman")
        sql = "select title from Documents where classification <> 'topsecret'"
        assert len(conn.query(sql)) == 4
        # and the staff deny-view also works for the manager (both granted)
        sql2 = (
            "select title from Documents "
            "where classification not in ('secret', 'topsecret')"
        )
        assert len(conn.query(sql2)) == 3

    def test_range_exclusion_entailment(self, db):
        """<> chains compose with other predicates through the prover."""
        conn = db.connect(user_id="manager", mode="non-truman")
        sql = (
            "select title from Documents "
            "where classification <> 'topsecret' and doc_id < 3"
        )
        decision = conn.check_validity(sql)
        assert decision.valid, decision.describe()
        witness = db.run_plan(decision.witness, conn.session)
        truth = db.execute(sql)
        assert sorted(witness.rows) == sorted(truth.rows)
