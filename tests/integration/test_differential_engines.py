"""Differential testing: vectorized engine vs the row-engine oracle.

Every query here runs through both engines and must produce bag-equal
results (same multiset of rows, compared with a Counter) and identical
column headers.  The row engine is the semantic oracle — any mismatch
is a vectorized-engine bug by definition.

Coverage: an open-mode catalog of SQL shapes, every workload query of
``student_query_mix`` (open + Truman-rewritten), the paper's worked
examples, Truman rewrites over the bank views, and the empty-result /
all-NULL corners where three-valued logic bugs hide.
"""

from collections import Counter

import pytest

from repro.db import Database
from repro.workloads.bank import build_bank, BankConfig, grant_teller
from repro.workloads.queries import student_query_mix
from repro.workloads.university import build_university, UniversityConfig

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


def assert_engines_agree(db, sql, session=None, mode="open", access_params=None):
    row = db.execute_query(
        sql, session=session, mode=mode, access_params=access_params, engine="row"
    )
    vec = db.execute_query(
        sql, session=session, mode=mode, access_params=access_params,
        engine="vectorized",
    )
    assert row.columns == vec.columns, sql
    assert Counter(row.rows) == Counter(vec.rows), (
        f"engines disagree on {sql!r}:\n  row: {sorted(map(repr, row.rows))}"
        f"\n  vec: {sorted(map(repr, vec.rows))}"
    )
    return row


def connection_agreement(conn, sql):
    row = conn.query(sql, engine="row")
    vec = conn.query(sql, engine="vectorized")
    assert row.columns == vec.columns, sql
    assert Counter(row.rows) == Counter(vec.rows), sql
    return row


# -- open-mode catalog over the Section 2 schema ------------------------

#: one query per executor feature; ordering-sensitive queries compare
#: bag-equal like everything else (ORDER BY ties are nondeterministic)
CATALOG = [
    "select * from Students",
    "select name from Students where type = 'FullTime'",
    "select * from Grades where grade > 3.0",
    "select * from Grades where grade > 3.0 and course_id = 'CS102'",
    "select student_id from Grades where grade >= 2.5 or course_id = 'CS101'",
    "select * from Students where not (type = 'FullTime')",
    "select * from Students where name like 'A%'",
    "select name || ' (' || type || ')' from Students",
    "select student_id, grade + 1.0, grade * 2.0, grade - 0.5 from Grades",
    "select * from Grades where grade between 2.0 and 3.5",
    "select * from Grades where grade not between 2.0 and 3.5",
    "select * from Students where student_id in ('11', '13', '99')",
    "select * from Students where student_id not in ('11', '13')",
    "select * from Students where type is null",
    "select * from Students where type is not null",
    "select case when grade >= 3.5 then 'high' when grade >= 2.5 then 'mid' "
    "else 'low' end from Grades",
    "select coalesce(type, 'Unknown') from Students",
    "select lower(name), upper(name), length(name) from Students",
    "select abs(0.0 - grade) from Grades",
    "select distinct course_id from Grades",
    "select distinct type from Students",
    # joins
    "select s.name, g.grade from Students s, Grades g "
    "where s.student_id = g.student_id",
    "select s.name, g.grade from Students s, Grades g "
    "where s.student_id = g.student_id and g.grade > 3.0",
    "select s.name, c.name from Students s, Registered r, Courses c "
    "where s.student_id = r.student_id and r.course_id = c.course_id",
    "select s.name, g.grade from Students s left join Grades g "
    "on s.student_id = g.student_id",
    "select s.name, g.grade from Students s left join Grades g "
    "on s.student_id = g.student_id and g.grade > 3.9",
    "select s.name, c.name from Students s, Courses c",  # cross product
    "select a.student_id, b.student_id from Grades a, Grades b "
    "where a.course_id = b.course_id and a.grade < b.grade",  # non-equi residual
    # aggregation
    "select count(*) from Grades",
    "select count(*), sum(grade), avg(grade), min(grade), max(grade) from Grades",
    "select course_id, count(*), avg(grade) from Grades group by course_id",
    "select course_id, count(*) from Grades group by course_id "
    "having count(*) >= 2",
    "select type, count(distinct name) from Students group by type",
    "select count(*) from Grades where grade > 100.0",  # empty input aggregate
    # subqueries
    "select * from Students where student_id in "
    "(select student_id from Grades where grade >= 3.5)",
    "select * from Students where student_id not in "
    "(select student_id from FeesPaid)",
    "select count(*) from Students where exists "
    "(select 1 from Grades where grade > 3.9)",
    "select count(*) from Students where not exists "
    "(select 1 from Grades where grade > 4.5)",
    # set operations
    "select student_id from Grades union select student_id from FeesPaid",
    "select student_id from Grades union all select student_id from FeesPaid",
    "select student_id from Registered intersect select student_id from Grades",
    "select student_id from Students except select student_id from FeesPaid",
    # sort / limit
    "select name from Students order by name",
    "select * from Grades order by grade desc, student_id",
    "select name from Students order by name limit 2",
    "select name from Students order by name limit 2 offset 1",
    # empty results
    "select * from Students where student_id = 'nope'",
    "select * from Grades where grade < 0.0",
    "select s.name from Students s, Grades g "
    "where s.student_id = g.student_id and g.grade > 9.0",
]


class TestOpenModeCatalog:
    @pytest.fixture(scope="class")
    def db(self):
        db = Database()
        db.execute_script(UNIVERSITY_SCHEMA)
        db.execute_script(UNIVERSITY_DATA)
        return db

    @pytest.mark.parametrize("sql", CATALOG, ids=range(len(CATALOG)))
    def test_engines_agree(self, db, sql):
        assert_engines_agree(db, sql)


# -- workload query mixes ----------------------------------------------


class TestWorkloadQueries:
    @pytest.fixture(scope="class")
    def university(self):
        return build_university(UniversityConfig(students=40, courses=6, seed=11))

    def test_student_mix_open_mode(self, university):
        for query in student_query_mix(university, "15", count=40, seed=2):
            assert_engines_agree(university, query.sql)

    def test_student_mix_truman_rewritten(self, university):
        """The Truman-modified plans (view substitution, $user_id bound)
        must evaluate identically under both engines — including the
        'misleading' queries, whose *modified* answer is still a fixed
        multiset both engines must reproduce."""
        conn = university.connect(user_id="15", mode="truman")
        for query in student_query_mix(university, "15", count=40, seed=2):
            connection_agreement(conn, query.sql)

    def test_bank_teller_truman(self):
        bank = build_bank(BankConfig(customers=25, seed=9))
        grant_teller(bank, "teller1")
        conn = bank.connect(user_id="teller1", mode="truman")
        for sql in [
            "select acct_id, balance from Accounts where balance > 25000.0",
            "select branch, sum(balance) from Accounts group by branch",
            "select c.name, a.balance from Accounts a, Customers c "
            "where a.cust_id = c.cust_id",
        ]:
            connection_agreement(conn, sql)

    def test_bank_customer_truman(self):
        bank = build_bank(BankConfig(customers=25, seed=9))
        conn = bank.connect(user_id="C105", mode="truman")
        for sql in [
            "select * from Accounts",
            "select sum(balance) from Accounts",
            "select branch, count(*) from Accounts group by branch",
        ]:
            connection_agreement(conn, sql)


# -- the paper's worked examples ---------------------------------------

PAPER_QUERIES = [
    # §1 / §5.2 MyGrades shapes
    "select * from Grades where student_id = '11'",
    "select grade from Grades where student_id = '11'",
    "select course_id from Grades where student_id = '11' and grade >= 3.9",
    # Example 4.1 aggregates
    "select avg(grade) from Grades where student_id = '11'",
    "select avg(grade) from Grades where course_id = 'CS101'",
    "select avg(grade) from Grades where course_id = 'CS103'",  # empty group
    "select course_id, avg(grade) from Grades group by course_id",
    # Examples 5.1-5.4 distinct projections and joins
    "select distinct name, type from Students",
    "select distinct name from Students where Students.type = 'FullTime'",
    "select distinct name from Students, FeesPaid "
    "where Students.student_id = FeesPaid.student_id",
    # Example 4.4 probe
    "select 1 from Registered where student_id = '11' and course_id = 'CS101'",
    # §6 access-pattern shapes
    "select grade from Grades where student_id = '12'",
    "select s.name, g.grade from Students s, Grades g "
    "where s.student_id = g.student_id",
]


class TestPaperExamples:
    @pytest.fixture(scope="class")
    def db(self):
        db = Database()
        db.execute_script(UNIVERSITY_SCHEMA)
        db.execute_script(UNIVERSITY_DATA)
        return db

    @pytest.mark.parametrize("sql", PAPER_QUERIES, ids=range(len(PAPER_QUERIES)))
    def test_open_mode(self, db, sql):
        assert_engines_agree(db, sql)

    @pytest.mark.parametrize("sql", PAPER_QUERIES, ids=range(len(PAPER_QUERIES)))
    def test_truman_rewritten(self, sql):
        """Same examples through the Truman rewriter: the modified query
        references instantiated authorization views, exercising the
        vectorized ViewRel scan / dependent-join paths."""
        db = Database()
        db.execute_script(UNIVERSITY_SCHEMA)
        db.execute_script(UNIVERSITY_DATA)
        db.execute_script(
            """
            create authorization view MyGrades as
                select * from Grades where student_id = $user_id;
            create authorization view MyRegistrations as
                select * from Registered where student_id = $user_id;
            create authorization view AvgGrades as
                select course_id, avg(grade) as avg_grade from Grades
                group by course_id;
            create authorization view AllStudents as
                select * from Students;
            create authorization view FeesPaidView as
                select * from FeesPaid;
            """
        )
        for view in ("MyGrades", "MyRegistrations", "AvgGrades",
                     "AllStudents", "FeesPaidView"):
            db.grant_public(view)
        conn = db.connect(user_id="11", mode="truman")
        connection_agreement(conn, sql)


# -- empty-result and all-NULL corners ---------------------------------


class TestNullAndEmptyCorners:
    @pytest.fixture(scope="class")
    def db(self):
        db = Database()
        db.execute("create table T(k int, v float, tag varchar(8))")
        db.execute("create table Empty(k int, v float)")
        db.execute("create table N(k int, v float)")
        db.execute_script(
            """
            insert into T values (1, 1.5, 'a');
            insert into T values (2, null, 'b');
            insert into T values (3, 2.5, null);
            insert into T values (null, null, 'c');
            insert into N values (null, null);
            insert into N values (null, null);
            """
        )
        return db

    QUERIES = [
        # scans over NULLs; predicates evaluating to UNKNOWN drop rows
        "select * from T where v > 2.0",
        "select * from T where not (v > 2.0)",
        "select * from T where v > 2.0 or tag = 'b'",
        "select * from T where v > 2.0 and tag = 'b'",
        "select * from T where v is null",
        "select * from T where k in (1, null)",
        "select * from T where k not in (1, null)",  # NULL blocks NOT IN
        "select * from N",  # every value NULL
        "select * from N where k = k",  # NULL = NULL is UNKNOWN -> empty
        "select k, v from N union select k, v from N",  # NULL dedup
        "select * from Empty",
        "select * from Empty where k > 0",
        # aggregates over empty / NULL-only input
        "select count(*), count(v), sum(v), avg(v), min(v), max(v) from Empty",
        "select count(*), count(v), sum(v), avg(v), min(v), max(v) from N",
        "select count(*), sum(v) from T where v is null",
        "select k, count(*) from N group by k",  # NULL group key
        "select tag, sum(v) from T group by tag",
        # joins with NULL keys and empty sides
        "select a.tag, b.tag from T a, T b where a.k = b.k",
        "select t.tag, e.k from T t left join Empty e on t.k = e.k",
        "select t.tag, n.v from T t left join N n on t.k = n.k",
        "select * from T t, Empty e where t.k = e.k",
        "select t.tag from T t, N n where t.v < n.v",  # non-equi vs NULLs
        # subqueries against empty / NULL-producing inners
        "select * from T where k in (select k from Empty)",
        "select * from T where k not in (select k from Empty)",
        "select * from T where k in (select k from N)",
        "select * from T where k not in (select k from N)",
        "select count(*) from T where exists (select 1 from Empty)",
        # sort with NULLs first/last and expressions over NULLs
        "select k, v from T order by v desc, k",
        "select coalesce(v, 0.0 - 1.0), case when v > 2.0 then 'x' end from T",
    ]

    @pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
    def test_engines_agree(self, db, sql):
        assert_engines_agree(db, sql)


# -- instrumentation parity --------------------------------------------


class TestInstrumentationParity:
    """``join_pairs_examined`` must match the row engine exactly; index
    pushdown may only *reduce* ``rows_scanned``, never change results."""

    def _counters(self, db, sql, engine):
        from repro.sql.parser import parse_statement
        from repro.db import SessionContext
        from repro.engine import make_executor
        from repro.db import _QueryContext

        session = SessionContext()
        plan = db.plan_query(parse_statement(sql), session, None)
        executor = make_executor(engine, _QueryContext(db, session, None))
        rows = executor.execute(plan)
        return rows, executor

    @pytest.mark.parametrize(
        "sql",
        [
            "select s.name, g.grade from Students s, Grades g "
            "where s.student_id = g.student_id",
            "select s.name, c.name from Students s, Courses c",
            "select a.student_id, b.student_id from Grades a, Grades b "
            "where a.course_id = b.course_id and a.grade < b.grade",
            "select s.name, g.grade from Students s left join Grades g "
            "on s.student_id = g.student_id",
        ],
    )
    def test_join_pairs_match(self, tiny_db, sql):
        rows_r, row_exec = self._counters(tiny_db, sql, "row")
        rows_v, vec_exec = self._counters(tiny_db, sql, "vectorized")
        assert Counter(rows_r) == Counter(rows_v)
        assert row_exec.join_pairs_examined == vec_exec.join_pairs_examined

    def test_index_probe_reduces_rows_scanned(self, tiny_db):
        sql = "select * from Students where student_id = '11'"
        rows_r, row_exec = self._counters(tiny_db, sql, "row")
        rows_v, vec_exec = self._counters(tiny_db, sql, "vectorized")
        assert Counter(rows_r) == Counter(rows_v)
        assert vec_exec.index_probes == 1
        assert vec_exec.rows_scanned < row_exec.rows_scanned
