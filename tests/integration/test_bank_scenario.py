"""The bank scenario from the paper's introduction (Section 1), tested
end-to-end against the Non-Truman model."""

import pytest

from repro.errors import QueryRejectedError
from repro.workloads.bank import account_ids, build_bank, grant_teller


@pytest.fixture(scope="module")
def bank():
    db = build_bank()
    grant_teller(db, "teller1")
    return db


class TestCustomer:
    """'A customer should be able to query her account balance, and no
    one else's balance.'"""

    def test_sees_own_balance(self, bank):
        conn = bank.connect(user_id="C100", mode="non-truman")
        result = conn.query(
            "select acct_id, balance from Accounts where cust_id = 'C100'"
        )
        assert len(result) == 2

    def test_cannot_see_other_balance(self, bank):
        conn = bank.connect(user_id="C100", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query("select balance from Accounts where cust_id = 'C101'")

    def test_cannot_scan_all_accounts(self, bank):
        conn = bank.connect(user_id="C100", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query("select balance from Accounts")

    def test_sees_own_customer_record(self, bank):
        conn = bank.connect(user_id="C100", mode="non-truman")
        result = conn.query(
            "select name, address from Customers where cust_id = 'C100'"
        )
        assert len(result) == 1


class TestTeller:
    """'A teller should have read access to balances of all accounts but
    not the addresses of customers corresponding to these balances.'"""

    def test_sees_all_balances(self, bank):
        conn = bank.connect(user_id="teller1", mode="non-truman")
        result = conn.query("select acct_id, balance from Accounts")
        assert len(result) == 100

    def test_balances_with_customer_names(self, bank):
        conn = bank.connect(user_id="teller1", mode="non-truman")
        result = conn.query(
            "select a.balance, c.name from Accounts a, Customers c "
            "where a.cust_id = c.cust_id"
        )
        assert len(result) == 100

    def test_cannot_see_addresses(self, bank):
        """Cell-level authorization: the address column is projected
        away by TellerBalances, so queries touching it are rejected."""
        conn = bank.connect(user_id="teller1", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query("select address from Customers")
        with pytest.raises(QueryRejectedError):
            conn.query(
                "select a.balance, c.address from Accounts a, Customers c "
                "where a.cust_id = c.cust_id"
            )

    def test_branch_totals_via_aggregate_view(self, bank):
        conn = bank.connect(user_id="teller1", mode="non-truman")
        decision = conn.check_validity(
            "select branch, sum(balance) from Accounts group by branch"
        )
        assert decision.valid, decision.describe()
        result = conn.query(
            "select branch, sum(balance) from Accounts group by branch"
        )
        truth = bank.execute(
            "select branch, sum(balance) from Accounts group by branch"
        )
        assert sorted(result.rows) == sorted(truth.rows)


class TestAccountByNumberAccessPattern:
    """'A teller should be allowed to see the balance of any account by
    providing the account-id but not the balances of all accounts
    together' — for a teller holding ONLY the access-pattern view."""

    @pytest.fixture()
    def restricted(self):
        db = build_bank()
        db.grant("AccountByNumber", "teller2")
        return db

    def test_specific_account_ok(self, restricted):
        acct = account_ids(restricted)[0]
        conn = restricted.connect(user_id="teller2", mode="non-truman")
        result = conn.query(
            f"select balance from Accounts where acct_id = '{acct}'"
        )
        assert len(result) == 1

    def test_full_scan_rejected(self, restricted):
        conn = restricted.connect(user_id="teller2", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query("select balance from Accounts")

    def test_aggregate_over_all_rejected(self, restricted):
        conn = restricted.connect(user_id="teller2", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query("select sum(balance) from Accounts")


class TestIsolationBetweenPrincipals:
    def test_customer_lacks_teller_views(self, bank):
        conn = bank.connect(user_id="C105", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query("select branch, sum(balance) from Accounts group by branch")

    def test_same_query_different_users_different_outcome(self, bank):
        sql = "select balance from Accounts where cust_id = 'C100'"
        owner = bank.connect(user_id="C100", mode="non-truman")
        other = bank.connect(user_id="C101", mode="non-truman")
        assert len(owner.query(sql)) == 2
        with pytest.raises(QueryRejectedError):
            other.query(sql)

    def test_teller_account_lookup_is_unconditional(self, bank):
        acct = account_ids(bank)[3]
        conn = bank.connect(user_id="teller1", mode="non-truman")
        decision = conn.check_validity(
            f"select balance from Accounts where acct_id = '{acct}'"
        )
        assert decision.unconditional
