"""Durable storage round trips: save/open, checkpoint, log truncation.

Crash-point fault injection lives in test_recovery.py; this file covers
the sunny-day lifecycle — every piece of authorization state must
survive a clean close/reopen bit-for-bit.
"""

import os

import pytest

from repro.catalog.constraints import TotalParticipation
from repro.db import Database
from repro.durability import has_durable_data
from repro.durability.layout import list_segments, list_snapshots
from repro.errors import DurabilityError

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


def build_full_db(db: Database) -> Database:
    """Populate with every kind of state the snapshot must carry."""
    db.execute_script(UNIVERSITY_SCHEMA)
    db.execute_script(UNIVERSITY_DATA)
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.execute(
        "create authorization view AllStudents as select * from Students"
    )
    db.execute("create view Honors as select * from Grades where grade > 3.5")
    db.grant_public("MyGrades")
    db.grant("AllStudents", "registrar")
    db.execute(
        "authorize update on Students(name) "
        "where old(Students.student_id) = $user_id"
    )
    db.set_truman_view("Grades", "MyGrades")
    db.add_participation_constraint(
        TotalParticipation(
            core_table="Students",
            remainder_table="Registered",
            join_pairs=(("student_id", "student_id"),),
            visible_to=frozenset({"11", "12"}),
            name="every_student_registered",
        )
    )
    return db


def fingerprint(db: Database) -> dict:
    """Everything recovery promises to restore, in comparable form."""
    tables = {}
    for schema in db.catalog.tables():
        table = db.table(schema.name)
        tables[schema.name.lower()] = {
            "rows": dict(table.rows_with_ids()),
            "next_id": table.next_row_id,
            "indexes": sorted(table.index_defs()),
        }
    return {
        "tables": tables,
        "views": sorted(
            (v.name, v.authorization, v.column_names)
            for v in db.catalog.views()
        ),
        "grants": sorted(
            (r.view, r.grantee, r.grantor, r.grant_option)
            for r in db.grants.grants()
        ),
        "grants_version": db.grants.version,
        "views_version": db.catalog.views_version,
        "truman": dict(db.truman_policy),
        "authorize": [
            (p.action, p.table, p.columns)
            for p in db.update_authorizer.policies()
        ],
        "participations": sorted(
            str(p) for p in db.catalog.participations()
        ),
    }


class TestSaveOpenRoundTrip:
    def test_full_state_survives_reopen(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = build_full_db(Database())
        db.save(data_dir)
        # post-save mutations go through the WAL
        db.execute("insert into Students values ('15', 'Eve', 'PartTime')")
        db.execute("update Students set name = 'Robert' where student_id = '12'")
        db.execute("delete from FeesPaid where student_id = '13'")
        db.grant("AllStudents", "dean")
        expected = fingerprint(db)
        db.close(checkpoint=False)

        recovered = Database.open(data_dir)
        assert fingerprint(recovered) == expected
        assert recovered.durability.recovery_info["wal_records_replayed"] > 0
        # the recovered database keeps working and keeps logging
        recovered.execute("insert into Students values ('16', 'Frank', null)")
        recovered.close()

    def test_query_behavior_survives_reopen(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = build_full_db(Database())
        db.save(data_dir)
        conn = db.connect(user_id="11", mode="non-truman")
        before = conn.query(
            "select grade from Grades where student_id = '11'"
        ).as_multiset()
        db.close()

        recovered = Database.open(data_dir)
        conn = recovered.connect(user_id="11", mode="non-truman")
        after = conn.query(
            "select grade from Grades where student_id = '11'"
        ).as_multiset()
        assert after == before
        # Truman mode sees the policy mapping too
        truman = recovered.connect(user_id="11", mode="truman")
        rows = truman.query("select * from Grades").rows
        assert all(row[0] == "11" for row in rows)
        recovered.close()

    def test_open_on_fresh_directory_is_empty(self, tmp_path):
        data_dir = str(tmp_path / "fresh")
        db = Database.open(data_dir)
        assert db.catalog.tables() == []
        assert has_durable_data(data_dir)
        db.close()

    def test_save_over_existing_data_refused(self, tmp_path):
        data_dir = str(tmp_path / "data")
        Database.open(data_dir).close()
        with pytest.raises(DurabilityError):
            Database().save(data_dir)

    def test_double_attach_refused(self, tmp_path):
        db = Database.open(str(tmp_path / "a"))
        with pytest.raises(DurabilityError):
            db.save(str(tmp_path / "b"))
        db.close()

    def test_data_dir_constructor_matches_open(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = Database(data_dir=data_dir)
        db.execute("create table t (id int primary key)")
        db.execute("insert into t values (1)")
        db.close(checkpoint=False)
        again = Database(data_dir=data_dir)
        assert again.execute("select * from t").rows == [(1,)]
        again.close()


class TestCheckpoint:
    def test_checkpoint_truncates_wal(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = Database.open(data_dir)
        db.execute("create table t (id int primary key, v int)")
        for i in range(20):
            db.execute(f"insert into t values ({i}, {i * 10})")
        lsn = db.checkpoint()
        assert lsn == db.durability.writer.last_appended_lsn
        snapshots = list_snapshots(data_dir)
        segments = list_segments(data_dir)
        assert [s[0] for s in snapshots] == [lsn]
        assert [s[0] for s in segments] == [lsn]
        assert os.path.getsize(segments[0][1]) == 0
        # replay after checkpoint starts from the snapshot alone
        db.close(checkpoint=False)
        recovered = Database.open(data_dir)
        assert recovered.durability.recovery_info["wal_records_replayed"] == 0
        assert len(recovered.table("t")) == 20
        recovered.close()

    def test_wal_grows_again_after_checkpoint(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = Database.open(data_dir)
        db.execute("create table t (id int primary key)")
        db.checkpoint()
        db.execute("insert into t values (1)")
        db.close(checkpoint=False)
        recovered = Database.open(data_dir)
        assert recovered.durability.recovery_info["wal_records_replayed"] == 1
        assert len(recovered.table("t")) == 1
        recovered.close()

    def test_checkpoint_requires_durability(self):
        with pytest.raises(DurabilityError):
            Database().checkpoint()

    def test_close_checkpoints_by_default(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = Database.open(data_dir)
        db.execute("create table t (id int primary key)")
        db.execute("insert into t values (1)")
        db.close()
        recovered = Database.open(data_dir)
        assert recovered.durability.recovery_info["wal_records_replayed"] == 0
        assert len(recovered.table("t")) == 1
        recovered.close()

    def test_mutation_after_close_refused(self, tmp_path):
        db = Database.open(str(tmp_path / "data"))
        db.execute("create table t (id int primary key)")
        db.close()
        with pytest.raises(DurabilityError):
            db.execute("insert into t values (1)")


class TestCounters:
    def test_policy_epoch_and_data_version_restored(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = build_full_db(Database())
        db.save(data_dir)
        db.execute("insert into Students values ('15', 'Eve', null)")
        db.grant("AllStudents", "dean")
        dv = db.validity_cache.data_version
        gv = db.grants.version
        vv = db.catalog.views_version
        db.close(checkpoint=False)

        recovered = Database.open(data_dir)
        assert recovered.validity_cache.data_version >= dv
        assert recovered.grants.version >= gv
        assert recovered.catalog.views_version >= vv
        recovered.close()

    def test_wal_stats_shape(self, tmp_path):
        db = Database.open(str(tmp_path / "data"))
        db.execute("create table t (id int primary key)")
        db.execute("insert into t values (1)")
        stats = db.durability.wal_stats()
        assert stats["wal_records"] == 2
        assert stats["wal_last_lsn"] == 2
        assert stats["wal_synced_lsn"] == 2
        assert stats["sync_policy"] == "group"
        assert stats["wal_fsyncs"] >= 1
        db.close()


class TestInMemoryUnchanged:
    def test_no_data_dir_means_no_durability(self):
        db = build_full_db(Database())
        assert db.durability is None
        db.execute("insert into Students values ('15', 'Eve', null)")
        # close is a harmless no-op in memory
        db.close()
        for schema in db.catalog.tables():
            assert db.table(schema.name).on_mutate is None
        assert db.grants.on_change is None
