"""Crash-point fault-injection matrix for the durability layer.

A randomized single-row bank-style workload runs against a durable
database with a :class:`FaultInjector` armed at one crash point; the
simulated crash (:class:`InjectedCrash`) abandons the process state,
the directory is re-opened, and the recovered database is compared —
rows with ids, index definitions, grant registry, policy epoch, views,
Truman mappings — against a never-crashed in-memory oracle that applied
exactly the operations whose WAL records survived the crash.

Every op in the trace touches exactly one row, so one op is one WAL
record and the oracle prefix for each crash point is well-defined:

==========================  =============================================
``wal.before_append``       crashed op excluded (nothing reached the log)
``wal.torn_append``         crashed op excluded; CRC detects + truncates
``wal.after_append``        crashed op included (framed record flushed)
``wal.before_fsync``        included (append completed; fsync pending)
``wal.after_fsync``         included (fully durable)
``checkpoint.*``            all ops included (checkpoint loses nothing)
==========================  =============================================
"""

import random

import pytest

from repro.db import Database
from repro.durability import FaultInjector, InjectedCrash
from repro.durability.faults import CRASH_POINTS

SETUP_SQL = """
create table Accounts(
    acct_id int primary key,
    owner varchar(10) not null,
    balance float not null
);
create authorization view MyAccounts as
    select * from Accounts where owner = $user_id;
create authorization view AllAccounts as select * from Accounts;
"""

#: ops per generated trace; every op emits exactly one WAL record
TRACE_LEN = 20

#: 1-based op indices at which the matrix injects the crash
CRASH_POSITIONS = (1, 7, TRACE_LEN)

WAL_POINTS = tuple(p for p in CRASH_POINTS if p.startswith("wal."))
CHECKPOINT_POINTS = tuple(
    p for p in CRASH_POINTS if p.startswith("checkpoint.")
)

#: ops excluded from the oracle when the crash hits before the record
#: is fully framed in the log
EXCLUDES_CRASHED_OP = {"wal.before_append", "wal.torn_append"}


def generate_trace(seed: int, length: int = TRACE_LEN) -> list[tuple]:
    """Deterministic single-row op list: DML plus grant/revoke."""
    rng = random.Random(seed)
    ops: list[tuple] = []
    live: list[int] = []
    granted: list[str] = []
    next_id = 0
    next_user = 0
    while len(ops) < length:
        choice = rng.random()
        if choice < 0.40 or not live:
            ops.append(("insert", next_id, f"u{rng.randrange(5)}",
                        round(rng.uniform(1.0, 999.0), 2)))
            live.append(next_id)
            next_id += 1
        elif choice < 0.60:
            ops.append(("update", rng.choice(live),
                        round(rng.uniform(1.0, 999.0), 2)))
        elif choice < 0.75:
            victim = live.pop(rng.randrange(len(live)))
            ops.append(("delete", victim))
        elif choice < 0.90 or not granted:
            user = f"user{next_user}"
            next_user += 1
            ops.append(("grant", "AllAccounts", user))
            granted.append(user)
        else:
            user = granted.pop(rng.randrange(len(granted)))
            ops.append(("revoke", "AllAccounts", user))
    return ops


def apply_op(db: Database, op: tuple) -> None:
    kind = op[0]
    if kind == "insert":
        _, acct, owner, balance = op
        db.execute(
            f"insert into Accounts values ({acct}, '{owner}', {balance})"
        )
    elif kind == "update":
        _, acct, balance = op
        db.execute(
            f"update Accounts set balance = {balance} where acct_id = {acct}"
        )
    elif kind == "delete":
        db.execute(f"delete from Accounts where acct_id = {op[1]}")
    elif kind == "grant":
        db.grant(op[1], to_user=op[2])
    elif kind == "revoke":
        db.grants.revoke(op[1], op[2])
        db._durable_commit()
    else:  # pragma: no cover
        raise AssertionError(f"unknown trace op {op!r}")


def setup_db(db: Database) -> Database:
    db.execute_script(SETUP_SQL)
    db.grant_public("MyAccounts")
    db.set_truman_view("Accounts", "MyAccounts")
    return db


def build_oracle(ops) -> Database:
    """Never-crashed reference: same setup + ops, purely in memory."""
    db = setup_db(Database())
    for op in ops:
        apply_op(db, op)
    return db


def fingerprint(db: Database) -> dict:
    tables = {}
    for schema in db.catalog.tables():
        table = db.table(schema.name)
        tables[schema.name.lower()] = {
            "rows": dict(table.rows_with_ids()),
            "next_id": table.next_row_id,
            "indexes": sorted(table.index_defs()),
        }
    return {
        "tables": tables,
        "views": sorted(v.name for v in db.catalog.views()),
        "grants": sorted(
            (r.view, r.grantee, r.grantor, r.grant_option)
            for r in db.grants.grants()
        ),
        # the policy epoch: (registry version, views version)
        "policy_epoch": (db.grants.version, db.catalog.views_version),
        "data_version": db.validity_cache.data_version,
        "truman": dict(db.truman_policy),
    }


def run_crash(tmp_path, point: str, position: int, seed: int):
    """Run the trace until the injected crash, then recover.

    Returns ``(recovered_db, oracle_db, crashed_at_op)`` where
    ``crashed_at_op`` is the 0-based index of the op that died (None if
    the whole trace survived).
    """
    data_dir = str(tmp_path / "data")
    injector = FaultInjector()
    db = Database.open(data_dir, injector=injector)
    setup_db(db)
    db.checkpoint()  # fold setup into the snapshot: 1 trace op = 1 record

    ops = generate_trace(seed)
    injector.arm(point, countdown=position)
    crashed_at = None
    for index, op in enumerate(ops):
        try:
            apply_op(db, op)
        except InjectedCrash as crash:
            assert crash.point == point
            crashed_at = index
            break
    assert crashed_at == position - 1, (
        f"crash point {point} expected at op {position - 1}, "
        f"got {crashed_at}"
    )
    # the crashed process is abandoned: no close(), no checkpoint

    included = ops[: crashed_at + (0 if point in EXCLUDES_CRASHED_OP else 1)]
    recovered = Database.open(data_dir)
    return recovered, build_oracle(included), crashed_at


class TestWalCrashMatrix:
    @pytest.mark.parametrize("position", CRASH_POSITIONS)
    @pytest.mark.parametrize("point", WAL_POINTS)
    def test_recovered_state_matches_oracle(self, tmp_path, point, position):
        recovered, oracle, _ = run_crash(
            tmp_path, point, position, seed=position * 101 + 7
        )
        assert fingerprint(recovered) == fingerprint(oracle)
        if point == "wal.torn_append":
            assert recovered.durability.recovery_info["torn_truncated"]
        else:
            assert not recovered.durability.recovery_info["torn_truncated"]
        # the recovered database accepts and logs new work
        recovered.execute(
            "insert into Accounts values (9999, 'u0', 1.0)"
        )
        recovered.close()
        oracle.close()

    def test_double_crash_same_point(self, tmp_path):
        """Crash, recover, crash again at the same point, recover again."""
        recovered, oracle, _ = run_crash(
            tmp_path, "wal.torn_append", 5, seed=42
        )
        assert fingerprint(recovered) == fingerprint(oracle)
        # second incarnation: more ops, another torn crash
        injector = FaultInjector()
        recovered.durability.injector = injector
        recovered.durability.writer.injector = injector
        extra = [
            ("insert", 500, "u1", 10.0),
            ("insert", 501, "u2", 20.0),
        ]
        apply_op(recovered, extra[0])
        apply_op(oracle, extra[0])
        injector.arm("wal.torn_append")
        with pytest.raises(InjectedCrash):
            apply_op(recovered, extra[1])
        twice = Database.open(str(tmp_path / "data"))
        assert twice.durability.recovery_info["torn_truncated"]
        assert fingerprint(twice) == fingerprint(oracle)
        twice.close()
        oracle.close()


class TestCheckpointCrashMatrix:
    @pytest.mark.parametrize("point", CHECKPOINT_POINTS)
    def test_crashed_checkpoint_loses_nothing(self, tmp_path, point):
        data_dir = str(tmp_path / "data")
        injector = FaultInjector()
        db = Database.open(data_dir, injector=injector)
        setup_db(db)
        ops = generate_trace(seed=321)
        for op in ops:
            apply_op(db, op)
        injector.arm(point)
        with pytest.raises(InjectedCrash):
            db.checkpoint()
        assert injector.fired == [point]

        recovered = Database.open(data_dir)
        assert fingerprint(recovered) == fingerprint(build_oracle(ops))
        recovered.close()

    def test_completed_checkpoint_then_crash_recovers(self, tmp_path):
        """Crash after the checkpoint fully finished: replay is empty."""
        data_dir = str(tmp_path / "data")
        db = Database.open(data_dir)
        setup_db(db)
        ops = generate_trace(seed=555)
        for op in ops:
            apply_op(db, op)
        db.checkpoint()
        # abandoned without close: simulates dying right after
        recovered = Database.open(data_dir)
        info = recovered.durability.recovery_info
        assert info["wal_records_replayed"] == 0
        assert fingerprint(recovered) == fingerprint(build_oracle(ops))
        recovered.close()


class TestCorruptionHandling:
    def test_corrupt_only_snapshot_fails_loudly(self, tmp_path):
        data_dir = str(tmp_path / "data")
        db = Database.open(data_dir)
        setup_db(db)
        ops = generate_trace(seed=99)
        for op in ops[:10]:
            apply_op(db, op)
        db.checkpoint()
        for op in ops[10:]:
            apply_op(db, op)
        lsn = db.checkpoint()
        db.close(checkpoint=False)
        # corrupt the newest snapshot: recovery must fall back to the
        # older one... but truncation already deleted it, so recovery
        # must fail loudly instead of silently losing data
        from repro.durability.layout import snapshot_path

        path = snapshot_path(data_dir, lsn)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        open(path, "wb").write(bytes(data))

        from repro.errors import DurabilityError

        with pytest.raises(DurabilityError):
            Database.open(data_dir)

    def test_corrupt_snapshot_with_full_wal_replays_from_scratch(
        self, tmp_path
    ):
        data_dir = str(tmp_path / "data")
        db = Database.open(data_dir)
        setup_db(db)
        ops = generate_trace(seed=77)
        for op in ops:
            apply_op(db, op)
        db.close(checkpoint=False)
        # the only snapshot is the empty LSN-0 one; corrupting it forces
        # recovery to rebuild purely from the full WAL (base segment 0)
        from repro.durability.layout import snapshot_path

        path = snapshot_path(data_dir, 0)
        data = bytearray(open(path, "rb").read())
        data[-3] ^= 0x01
        open(path, "wb").write(bytes(data))

        recovered = Database.open(data_dir)
        assert recovered.durability.recovery_info[
            "corrupt_snapshots_skipped"
        ] == 1
        assert fingerprint(recovered) == fingerprint(build_oracle(ops))
        recovered.close()
