"""Integration tests for the Non-Truman checker: structural rules
(U2/C2 over set ops, sort, limit, subqueries), rule-tier ablations,
caching, pruning, and decision metadata."""

import pytest

from repro.db import Database
from repro.errors import QueryRejectedError
from repro.nontruman.checker import ValidityChecker
from repro.nontruman.decision import Validity
from repro.sql import parse_query

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


@pytest.fixture
def db():
    database = Database()
    database.execute_script(UNIVERSITY_SCHEMA)
    database.execute_script(UNIVERSITY_DATA)
    database.execute_script(
        """
        create authorization view MyGrades as
            select * from Grades where student_id = $user_id;
        create authorization view MyRegistrations as
            select * from Registered where student_id = $user_id;
        create authorization view CoStudentGrades as
            select Grades.student_id, Grades.course_id, Grades.grade
            from Grades, Registered
            where Registered.student_id = $user_id
              and Grades.course_id = Registered.course_id;
        """
    )
    for name in ("MyGrades", "MyRegistrations", "CoStudentGrades"):
        database.grant_public(name)
    return database


@pytest.fixture
def conn(db):
    return db.connect(user_id="11", mode="non-truman")


def check_and_execute(db, conn, sql):
    decision = conn.check_validity(sql)
    assert decision.valid, decision.describe()
    original = db.execute(sql)
    witness = db.run_plan(decision.witness, conn.session)
    assert sorted(map(repr, original.rows)) == sorted(map(repr, witness.rows))
    return decision


class TestStructuralRules:
    def test_union_of_valid_queries(self, db, conn):
        check_and_execute(
            db, conn,
            "select course_id from Grades where student_id = '11' "
            "union select course_id from Registered where student_id = '11'",
        )

    def test_union_all(self, db, conn):
        check_and_execute(
            db, conn,
            "select course_id from Grades where student_id = '11' "
            "union all select course_id from Registered where student_id = '11'",
        )

    def test_except(self, db, conn):
        check_and_execute(
            db, conn,
            "select course_id from Registered where student_id = '11' "
            "except select course_id from Grades where student_id = '11'",
        )

    def test_union_with_invalid_side_rejected(self, conn):
        decision = conn.check_validity(
            "select course_id from Grades where student_id = '11' "
            "union select course_id from Grades"
        )
        assert not decision.valid

    def test_order_by_preserved(self, db, conn):
        decision = conn.check_validity(
            "select course_id, grade from Grades where student_id = '11' "
            "order by grade desc"
        )
        assert decision.valid
        witness_rows = db.run_plan(decision.witness, conn.session).rows
        original_rows = db.execute(
            "select course_id, grade from Grades where student_id = '11' "
            "order by grade desc"
        ).rows
        assert witness_rows == original_rows  # order preserved exactly

    def test_limit_over_valid(self, db, conn):
        decision = conn.check_validity(
            "select course_id from Grades where student_id = '11' "
            "order by course_id limit 1"
        )
        assert decision.valid
        witness = db.run_plan(decision.witness, conn.session)
        assert len(witness) == 1

    def test_derived_table_over_valid_subquery(self, db, conn):
        check_and_execute(
            db, conn,
            "select s.course_id from "
            "(select course_id, grade from Grades where student_id = '11') as s "
            "where s.grade >= 3.5",
        )

    def test_join_with_aggregate_subquery(self, db, conn):
        check_and_execute(
            db, conn,
            "select r.course_id, s.n from "
            "(select count(*) as n from Grades where student_id = '11') as s, "
            "Registered r where r.student_id = '11'",
        )

    def test_self_join_of_view_coverage(self, db, conn):
        check_and_execute(
            db, conn,
            "select a.course_id, b.course_id from Grades a, Grades b "
            "where a.student_id = '11' and b.student_id = '11' "
            "and a.grade < b.grade",
        )

    def test_direct_view_reference_u1(self, db, conn):
        decision = conn.check_validity("select * from MyGrades")
        assert decision.unconditional
        assert any(step.rule == "U1" for step in decision.trace)

    def test_view_joined_with_base_table(self, db, conn):
        check_and_execute(
            db, conn,
            "select m.grade, c.name from MyGrades m, Courses c "
            "where m.course_id = c.course_id and m.student_id = '11'",
        ) if False else None
        # Courses has no covering view here; expect rejection instead.
        decision = conn.check_validity(
            "select m.grade, c.name from MyGrades m, Courses c "
            "where m.course_id = c.course_id"
        )
        assert not decision.valid

    def test_constant_only_query_valid(self, db, conn):
        decision = conn.check_validity("select 1 as one")
        assert decision.unconditional
        assert db.run_plan(decision.witness, conn.session).rows == [(1,)]

    def test_unsatisfiable_predicate_valid_empty(self, db, conn):
        decision = conn.check_validity(
            "select * from Grades where grade > 5 and grade < 1"
        )
        assert decision.unconditional
        assert db.run_plan(decision.witness, conn.session).rows == []


class TestRuleTierAblations:
    """E7 machinery: switching rule families off shrinks acceptance."""

    def test_disable_conditional(self, db):
        db.checker_options = {"allow_conditional": False}
        conn = db.connect(user_id="11", mode="non-truman")
        decision = conn.check_validity(
            "select * from Grades where course_id = 'CS101'"
        )
        assert not decision.valid
        db.checker_options = {}

    def test_disable_u3(self, db):
        from repro.catalog.constraints import TotalParticipation

        db.execute(
            "create authorization view RegStudents as "
            "select Registered.course_id, Students.name, Students.type "
            "from Registered, Students "
            "where Students.student_id = Registered.student_id"
        )
        db.grant_public("RegStudents")
        db.add_participation_constraint(
            TotalParticipation(
                core_table="Students",
                remainder_table="Registered",
                join_pairs=(("student_id", "student_id"),),
            )
        )
        sql = "select distinct name, type from Students"
        session = db.connect(user_id="11").session
        with_u3 = ValidityChecker(db, allow_u3=True).check(parse_query(sql), session)
        without_u3 = ValidityChecker(db, allow_u3=False).check(parse_query(sql), session)
        assert with_u3.valid and not without_u3.valid


class TestCaching:
    def test_cache_hit_on_repeat(self, db):
        checker = ValidityChecker(db, use_cache=True)
        session = db.connect(user_id="11").session
        query = parse_query("select grade from Grades where student_id = '11'")
        first = checker.check(query, session)
        second = checker.check(query, session)
        assert first.valid and second.valid
        assert not first.from_cache and second.from_cache

    def test_conditional_decision_invalidated_by_dml(self, db):
        checker = ValidityChecker(db, use_cache=True)
        session = db.connect(user_id="11").session
        query = parse_query("select * from Grades where course_id = 'CS101'")
        first = checker.check(query, session)
        assert first.validity is Validity.CONDITIONAL
        assert checker.check(query, session).from_cache
        db.execute("delete from Registered where student_id = '11' and course_id = 'CS101'")
        refreshed = checker.check(query, session)
        assert not refreshed.from_cache
        assert not refreshed.valid  # no longer registered

    def test_prepared_statement_pattern(self, db):
        """§5.6: same skeleton re-checked cheaply when only the user-id
        literal changes with the session."""
        checker = ValidityChecker(db, use_cache=True)
        s11 = db.connect(user_id="11").session
        q11 = parse_query("select grade from Grades where student_id = '11'")
        assert checker.check(q11, s11).valid
        # Same user, same skeleton, same binding: from cache.
        assert checker.check(q11, s11).from_cache


class TestPruningBehavior:
    def test_pruning_does_not_change_decisions(self, db):
        session = db.connect(user_id="11").session
        queries = [
            "select grade from Grades where student_id = '11'",
            "select * from Grades where course_id = 'CS101'",
            "select * from Grades",
        ]
        for sql in queries:
            query = parse_query(sql)
            pruned = ValidityChecker(db, use_pruning=True).check(query, session)
            full = ValidityChecker(db, use_pruning=False).check(query, session)
            assert pruned.validity == full.validity, sql

    def test_pruning_counter(self, db):
        db.execute("create authorization view Unrelated as select * from Courses")
        db.grant_public("Unrelated")
        checker = ValidityChecker(db, use_pruning=True)
        session = db.connect(user_id="11").session
        checker.check(
            parse_query("select grade from Grades where student_id = '11'"),
            session,
        )
        assert checker.views_pruned >= 1


class TestDecisionMetadata:
    def test_trace_names_rules(self, conn):
        decision = conn.check_validity(
            "select grade from Grades where student_id = '11'"
        )
        assert decision.trace
        assert {step.rule for step in decision.trace} <= {
            "U1", "U2", "U3a", "U3b", "U3c", "C1", "C2", "C3a", "C3b", "AP",
        }

    def test_views_used_reported(self, conn):
        decision = conn.check_validity(
            "select grade from Grades where student_id = '11'"
        )
        assert "MyGrades" in decision.views_used

    def test_describe_is_readable(self, conn):
        text = conn.check_validity(
            "select grade from Grades where student_id = '11'"
        ).describe()
        assert "unconditional" in text

    def test_rejection_reason_for_unbound_table(self, conn):
        decision = conn.check_validity("select * from NoSuchTable")
        assert not decision.valid
        assert "bind" in decision.reason

    def test_nested_subquery_in_where_rejected_cleanly(self, conn):
        # The fragment excludes WHERE-clause subqueries (paper §5);
        # the parser itself refuses them.
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            conn.query(
                "select * from Grades where student_id in "
                "(select student_id from Registered)"
            )
