"""Tests for the implemented future-work extensions:

* overlapping view covers (§5.6.2: "Given the set of views V = {A ⋈ B,
  B ⋈ C}, it is possible that a query of the form A ⋈ B ⋈ C can be
  rewritten completely using the views only if we decompose the query
  as (A ⋈ B) ⋈ (B ⋈ C) ... topic of future work");
* re-aggregation over finer-grained aggregate views.
"""

import pytest

from repro.db import Database


@pytest.fixture
def overlap_db():
    db = Database()
    db.execute_script(
        """
        create table A(id int primary key, b_id int, x int);
        create table B(id int primary key, y int);
        create table C(id int primary key, b_id int, z int);
        insert into B values (1, 10), (2, 20);
        insert into A values (1,1,100), (2,1,101), (3,2,102);
        insert into C values (1,1,200), (2,2,201);
        create authorization view AB as
            select A.id as a_id, A.x, B.id as b_id, B.y
            from A, B where A.b_id = B.id;
        create authorization view BC as
            select B.id as b_id, B.y, C.id as c_id, C.z
            from B, C where C.b_id = B.id;
        """
    )
    db.grant_public("AB")
    db.grant_public("BC")
    return db


class TestOverlappingCovers:
    QUERY = (
        "select A.x, B.y, C.z from A, B, C "
        "where A.b_id = B.id and C.b_id = B.id"
    )

    def test_abc_from_ab_and_bc(self, overlap_db):
        conn = overlap_db.connect(user_id="u", mode="non-truman")
        decision = conn.check_validity(self.QUERY)
        assert decision.unconditional, decision.describe()
        assert any("overlapping cover" in step.detail for step in decision.trace)
        truth = overlap_db.execute(self.QUERY)
        witness = overlap_db.run_plan(decision.witness, conn.session)
        assert sorted(truth.rows) == sorted(witness.rows)

    def test_duplicates_preserved(self, overlap_db):
        # two A rows share b_id=1: multiplicities must survive the overlap
        overlap_db.execute("insert into C values (3, 1, 202)")
        conn = overlap_db.connect(user_id="u", mode="non-truman")
        decision = conn.check_validity(self.QUERY)
        assert decision.valid
        truth = overlap_db.execute(self.QUERY)
        witness = overlap_db.run_plan(decision.witness, conn.session)
        assert sorted(truth.rows) == sorted(witness.rows)

    def test_requires_key_on_shared_relation(self):
        db = Database()
        db.execute_script(
            """
            create table A(id int, b_id int);
            create table B(id int, y int);
            create table C(id int, b_id int);
            insert into B values (1, 10);
            insert into A values (1, 1);
            insert into C values (1, 1);
            create authorization view AB as
                select A.id as a_id, B.id as b_id from A, B where A.b_id = B.id;
            create authorization view BC as
                select B.id as b_id2, C.id as c_id from B, C where C.b_id = B.id;
            """
        )
        db.grant_public("AB")
        db.grant_public("BC")
        conn = db.connect(user_id="u", mode="non-truman")
        decision = conn.check_validity(
            "select A.id, C.id from A, B, C "
            "where A.b_id = B.id and C.b_id = B.id"
        )
        # B has no key: joining the views could square B's multiplicity
        assert not decision.valid

    def test_key_must_be_exposed_by_both_views(self, overlap_db):
        db = Database()
        db.execute_script(
            """
            create table A(id int primary key, b_id int);
            create table B(id int primary key, y int);
            create table C(id int primary key, b_id int);
            insert into B values (1, 10);
            insert into A values (1, 1);
            insert into C values (1, 1);
            create authorization view AB as
                select A.id as a_id, B.y from A, B where A.b_id = B.id;
            create authorization view BC as
                select B.id as b_id, C.id as c_id from B, C where C.b_id = B.id;
            """
        )
        db.grant_public("AB")
        db.grant_public("BC")
        conn = db.connect(user_id="u", mode="non-truman")
        decision = conn.check_validity(
            "select A.id, C.id from A, B, C "
            "where A.b_id = B.id and C.b_id = B.id"
        )
        assert not decision.valid  # AB hides B.id -> no joint key


@pytest.fixture
def stats_db():
    db = Database()
    db.execute_script(
        """
        create table Grades(student_id varchar(10), course_id varchar(10),
            grade float, primary key (student_id, course_id));
        insert into Grades values
            ('11','CS101',3.0), ('12','CS101',4.0), ('11','CS102',2.0),
            ('13','CS102',null);
        create authorization view CourseStats as
            select course_id, sum(grade) as total, count(grade) as graded,
                   count(*) as entries, min(grade) as lo, max(grade) as hi
            from Grades group by course_id;
        """
    )
    db.grant_public("CourseStats")
    return db


class TestReaggregation:
    def check(self, db, sql, expected_validity="unconditional"):
        conn = db.connect(user_id="u", mode="non-truman")
        decision = conn.check_validity(sql)
        assert decision.valid, decision.describe()
        truth = db.execute(sql)
        witness = db.run_plan(decision.witness, conn.session)
        assert sorted(map(repr, truth.rows)) == sorted(map(repr, witness.rows)), sql
        return decision

    def test_global_count_star(self, stats_db):
        decision = self.check(stats_db, "select count(*) from Grades")
        assert decision.unconditional
        assert any("re-aggregated" in step.detail for step in decision.trace)

    def test_global_sum(self, stats_db):
        self.check(stats_db, "select sum(grade) from Grades")

    def test_global_min_max(self, stats_db):
        self.check(stats_db, "select min(grade), max(grade) from Grades")

    def test_global_avg_from_sum_and_count(self, stats_db):
        decision = self.check(stats_db, "select avg(grade) from Grades")
        assert decision.unconditional

    def test_null_grades_handled(self, stats_db):
        # count(grade) skips the NULL; count(*) includes it — both exact
        assert stats_db.execute("select count(*) from Grades").scalar() == 4
        self.check(stats_db, "select count(*) from Grades")

    def test_empty_table_scalar_semantics(self, stats_db):
        stats_db.execute("delete from Grades")
        for sql in (
            "select count(*) from Grades",
            "select sum(grade) from Grades",
            "select avg(grade) from Grades",
        ):
            self.check(stats_db, sql)

    def test_avg_not_derivable_without_count(self):
        db = Database()
        db.execute_script(
            """
            create table G(sid varchar(5), cid varchar(5), grade float,
                primary key (sid, cid));
            insert into G values ('1','a',3.0);
            create authorization view OnlyAvg as
                select cid, avg(grade) as avg_grade from G group by cid;
            """
        )
        db.grant_public("OnlyAvg")
        conn = db.connect(user_id="u", mode="non-truman")
        decision = conn.check_validity("select avg(grade) from G")
        assert not decision.valid  # avg of avgs would be wrong

    def test_view_with_having_not_reaggregated(self):
        db = Database()
        db.execute_script(
            """
            create table G(sid varchar(5), cid varchar(5), grade float,
                primary key (sid, cid));
            insert into G values ('1','a',3.0), ('2','a',4.0), ('1','b',1.0);
            create authorization view BigCourses as
                select cid, count(*) as n from G group by cid having count(*) >= 2;
            """
        )
        db.grant_public("BigCourses")
        conn = db.connect(user_id="u", mode="non-truman")
        decision = conn.check_validity("select count(*) from G")
        # summing the filtered counts would drop course 'b': must reject
        assert not decision.valid

    def test_distinct_aggregate_not_reaggregated(self, stats_db):
        conn = stats_db.connect(user_id="u", mode="non-truman")
        decision = conn.check_validity("select count(distinct grade) from Grades")
        assert not decision.valid
