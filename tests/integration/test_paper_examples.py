"""Every worked example in the paper, as an executable test.

Each test states the example it reproduces.  Where the checker accepts,
we additionally execute the produced witness rewriting and assert it
returns the same multiset as the original query — the operational form
of Theorems 5.1/5.2 (soundness).
"""

import pytest

from repro.db import Database
from repro.errors import QueryRejectedError
from repro.catalog.constraints import TotalParticipation
from repro.sql.parser import Parser

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


def fresh_db() -> Database:
    db = Database()
    db.execute_script(UNIVERSITY_SCHEMA)
    db.execute_script(UNIVERSITY_DATA)
    return db


def assert_witness_matches(db, conn, sql, decision):
    original = db.execute(sql)  # ground truth, unrestricted
    witness = db.run_plan(decision.witness, conn.session)
    assert sorted(map(repr, original.rows)) == sorted(map(repr, witness.rows)), (
        f"witness diverges for {sql}:\n{original.rows}\nvs\n{witness.rows}"
    )


class TestSection1MyGrades:
    """Section 1's MyGrades view: a student sees only her own grades."""

    def setup_method(self):
        self.db = fresh_db()
        self.db.execute(
            "create authorization view MyGrades as "
            "select * from Grades where student_id = $user_id"
        )
        self.db.grant_public("MyGrades")
        self.conn = self.db.connect(user_id="11", mode="non-truman")

    def test_own_rows_valid(self):
        sql = "select * from Grades where student_id = '11'"
        decision = self.conn.check_validity(sql)
        assert decision.unconditional
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_projection_valid(self):
        """§5.2: 'select grade from Grades where student_id = 11' via U2."""
        sql = "select grade from Grades where student_id = '11'"
        decision = self.conn.check_validity(sql)
        assert decision.unconditional
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_selection_plus_projection_valid(self):
        """§5.2: σ(grade='A')-style selection then projection."""
        sql = (
            "select course_id from Grades "
            "where student_id = '11' and grade >= 3.9"
        )
        decision = self.conn.check_validity(sql)
        assert decision.unconditional
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_other_students_rows_rejected(self):
        with pytest.raises(QueryRejectedError):
            self.conn.query("select * from Grades where student_id = '12'")

    def test_all_grades_rejected(self):
        with pytest.raises(QueryRejectedError):
            self.conn.query("select * from Grades")


class TestExample41:
    """Example 4.1: aggregates over MyGrades and the AvgGrades view."""

    def setup_method(self):
        self.db = fresh_db()
        self.db.execute_script(
            """
            create authorization view MyGrades as
                select * from Grades where student_id = $user_id;
            create authorization view AvgGrades as
                select course_id, avg(grade) as avg_grade
                from Grades group by course_id;
            """
        )
        self.db.grant_public("MyGrades")
        self.db.grant_public("AvgGrades")
        self.conn = self.db.connect(user_id="11", mode="non-truman")

    def test_avg_of_own_grades_unconditional(self):
        sql = "select avg(grade) from Grades where student_id = '11'"
        decision = self.conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_q1_course_average_valid(self):
        """q1: avg for one course, answerable from AvgGrades.

        The paper calls q1 unconditionally valid; this implementation
        classifies it *conditionally* valid (group-existence probe)
        because on states where CS101 has no grades the scalar query
        returns a NULL row while any view rewriting returns none —
        see DESIGN.md §5.  Either way the query is accepted.
        """
        sql = "select avg(grade) from Grades where course_id = 'CS101'"
        decision = self.conn.check_validity(sql)
        assert decision.valid, decision.describe()
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_q1_empty_group_still_valid_with_constant_witness(self):
        sql = "select avg(grade) from Grades where course_id = 'CS103'"
        decision = self.conn.check_validity(sql)
        assert decision.valid
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_exact_grouping_unconditional(self):
        sql = "select course_id, avg(grade) from Grades group by course_id"
        decision = self.conn.check_validity(sql)
        assert decision.unconditional
        assert_witness_matches(self.db, self.conn, sql, decision)


class TestExample42:
    """Example 4.2: LCAvgGrades (HAVING enrollment threshold) — validity
    depends on the database state."""

    def setup_method(self):
        self.db = fresh_db()
        self.db.execute(
            "create authorization view LCAvgGrades as "
            "select course_id, avg(grade) as avg_grade from Grades "
            "group by course_id having count(*) >= 2"
        )
        self.db.grant_public("LCAvgGrades")
        self.conn = self.db.connect(user_id="11", mode="non-truman")

    def test_large_course_conditionally_valid(self):
        sql = "select avg(grade) from Grades where course_id = 'CS101'"
        decision = self.conn.check_validity(sql)
        assert decision.conditional, decision.describe()
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_small_course_rejected(self):
        # CS103 has no grades -> below the threshold -> not derivable
        decision = self.conn.check_validity(
            "select avg(grade) from Grades where course_id = 'CS103'"
        )
        assert not decision.valid

    def test_validity_changes_with_database_state(self):
        sql = "select avg(grade) from Grades where course_id = 'CS103'"
        assert not self.conn.check_validity(sql).valid
        self.db.execute("insert into Registered values ('12','CS103')")
        self.db.execute("insert into Grades values ('11','CS103',3.0)")
        self.db.execute("insert into Grades values ('12','CS103',2.0)")
        decision = self.conn.check_validity(sql)
        assert decision.conditional  # now 2 grades -> above threshold


class TestExamples43And44:
    """Examples 4.3/4.4: Co-studentGrades and conditional validity."""

    def make_db(self, with_registration_view: bool) -> Database:
        db = fresh_db()
        db.execute(
            "create authorization view CoStudentGrades as "
            "select Grades.student_id, Grades.course_id, Grades.grade "
            "from Grades, Registered "
            "where Registered.student_id = $user_id "
            "and Grades.course_id = Registered.course_id"
        )
        db.grant_public("CoStudentGrades")
        if with_registration_view:
            db.execute(
                "create authorization view MyRegistrations as "
                "select * from Registered where student_id = $user_id"
            )
            db.grant_public("MyRegistrations")
        return db

    def test_registered_course_conditionally_valid(self):
        """Example 4.4: registered for CS101 + authorized to know it."""
        db = self.make_db(with_registration_view=True)
        conn = db.connect(user_id="11", mode="non-truman")
        sql = "select * from Grades where course_id = 'CS101'"
        decision = conn.check_validity(sql)
        assert decision.conditional, decision.describe()
        assert decision.probes_executed >= 1
        assert_witness_matches(db, conn, sql, decision)

    def test_unregistered_course_rejected(self):
        db = self.make_db(with_registration_view=True)
        conn = db.connect(user_id="11", mode="non-truman")
        decision = conn.check_validity(
            "select * from Grades where course_id = 'CS103'"
        )
        assert not decision.valid

    def test_leak_prevention_without_registration_view(self):
        """Example 4.3: accepting would reveal the registration status,
        so without an authorization view over Registered the query must
        be rejected even though the student IS registered."""
        db = self.make_db(with_registration_view=False)
        conn = db.connect(user_id="11", mode="non-truman")
        decision = conn.check_validity(
            "select * from Grades where course_id = 'CS101'"
        )
        assert not decision.valid, decision.describe()

    def test_example44_registration_probe_query_itself(self):
        """The probe query of Example 4.4 is itself conditionally valid."""
        db = self.make_db(with_registration_view=True)
        conn = db.connect(user_id="11", mode="non-truman")
        sql = (
            "select 1 from Registered "
            "where student_id = '11' and course_id = 'CS101'"
        )
        decision = conn.check_validity(sql)
        assert decision.valid
        assert_witness_matches(db, conn, sql, decision)


class TestExample51To52:
    """Examples 5.1/5.2: RegStudents + 'every student registers' IC."""

    def setup_method(self):
        self.db = fresh_db()
        self.db.execute(
            "create authorization view RegStudents as "
            "select Registered.course_id, Students.name, Students.type "
            "from Registered, Students "
            "where Students.student_id = Registered.student_id"
        )
        self.db.grant_public("RegStudents")
        self.db.add_participation_constraint(
            TotalParticipation(
                core_table="Students",
                remainder_table="Registered",
                join_pairs=(("student_id", "student_id"),),
                name="every_student_registered",
            )
        )
        self.conn = self.db.connect(user_id="11", mode="non-truman")

    def test_distinct_projection_valid_u3(self):
        sql = "select distinct name, type from Students"
        decision = self.conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        assert any(step.rule.startswith("U3") for step in decision.trace)
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_non_distinct_rejected_multiset_semantics(self):
        """Example 5.1's discussion: without DISTINCT the multiplicities
        (n copies vs n*m copies) are not derivable from the view."""
        decision = self.conn.check_validity("select name, type from Students")
        assert not decision.valid

    def test_without_constraint_rejected(self):
        db = fresh_db()
        db.execute(
            "create authorization view RegStudents as "
            "select Registered.course_id, Students.name, Students.type "
            "from Registered, Students "
            "where Students.student_id = Registered.student_id"
        )
        db.grant_public("RegStudents")
        conn = db.connect(user_id="11", mode="non-truman")
        decision = conn.check_validity("select distinct name, type from Students")
        assert not decision.valid

    def test_constraint_not_visible_to_user_rejected(self):
        """§4.2: ICs the user may not see must not drive inference."""
        db = fresh_db()
        db.execute(
            "create authorization view RegStudents as "
            "select Registered.course_id, Students.name, Students.type "
            "from Registered, Students "
            "where Students.student_id = Registered.student_id"
        )
        db.grant_public("RegStudents")
        db.add_participation_constraint(
            TotalParticipation(
                core_table="Students",
                remainder_table="Registered",
                join_pairs=(("student_id", "student_id"),),
                visible_to=frozenset({"dba"}),
                name="hidden_constraint",
            )
        )
        conn = db.connect(user_id="11", mode="non-truman")
        assert not conn.check_validity(
            "select distinct name, type from Students"
        ).valid
        dba = db.connect(user_id="dba", mode="non-truman")
        assert dba.check_validity(
            "select distinct name, type from Students"
        ).valid


class TestExample53:
    """Example 5.3: full-time students must register."""

    def setup_method(self):
        self.db = fresh_db()
        self.db.execute(
            "create authorization view RegStudents as "
            "select Registered.course_id, Students.name, Students.type "
            "from Registered, Students "
            "where Students.student_id = Registered.student_id"
        )
        self.db.grant_public("RegStudents")
        self.db.add_participation_constraint(
            TotalParticipation(
                core_table="Students",
                remainder_table="Registered",
                join_pairs=(("student_id", "student_id"),),
                core_pred=Parser("type = 'FullTime'").parse_expr(),
                name="fulltime_registered",
            )
        )
        self.conn = self.db.connect(user_id="11", mode="non-truman")

    def test_fulltime_names_valid(self):
        sql = "select distinct name from Students where Students.type = 'FullTime'"
        decision = self.conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_all_names_rejected_outside_constraint_scope(self):
        decision = self.conn.check_validity("select distinct name from Students")
        assert not decision.valid


class TestExample54:
    """Example 5.4: FeesPaid join, constraint anchored transitively."""

    def setup_method(self):
        self.db = fresh_db()
        self.db.execute_script(
            """
            create authorization view RegStudents as
                select Registered.course_id, Students.student_id,
                       Students.name, Students.type
                from Registered, Students
                where Students.student_id = Registered.student_id;
            create authorization view FeesPaidView as
                select * from FeesPaid;
            """
        )
        self.db.grant_public("RegStudents")
        self.db.grant_public("FeesPaidView")
        self.db.add_participation_constraint(
            TotalParticipation(
                core_table="FeesPaid",
                remainder_table="Registered",
                join_pairs=(("student_id", "student_id"),),
                name="feespaid_registered",
            )
        )
        self.conn = self.db.connect(user_id="11", mode="non-truman")

    def test_qj_valid(self):
        sql = (
            "select distinct name from Students, FeesPaid "
            "where Students.student_id = FeesPaid.student_id"
        )
        decision = self.conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_without_feespaid_constraint_rejected(self):
        db = fresh_db()
        db.execute_script(
            """
            create authorization view RegStudents as
                select Registered.course_id, Students.student_id,
                       Students.name, Students.type
                from Registered, Students
                where Students.student_id = Registered.student_id;
            create authorization view FeesPaidView as select * from FeesPaid;
            """
        )
        db.grant_public("RegStudents")
        db.grant_public("FeesPaidView")
        conn = db.connect(user_id="11", mode="non-truman")
        decision = conn.check_validity(
            "select distinct name from Students, FeesPaid "
            "where Students.student_id = FeesPaid.student_id"
        )
        assert not decision.valid


class TestExample55:
    """Example 5.5 / rule C3b: the distinct keyword can be dropped when
    the output carries a key (Grades has a primary key)."""

    def setup_method(self):
        self.db = fresh_db()
        self.db.execute_script(
            """
            create authorization view CoStudentGrades as
                select Grades.student_id, Grades.course_id, Grades.grade
                from Grades, Registered
                where Registered.student_id = $user_id
                  and Grades.course_id = Registered.course_id;
            create authorization view MyRegistrations as
                select * from Registered where student_id = $user_id;
            """
        )
        self.db.grant_public("CoStudentGrades")
        self.db.grant_public("MyRegistrations")
        self.conn = self.db.connect(user_id="11", mode="non-truman")

    def test_no_distinct_needed_with_key(self):
        sql = "select * from Grades where course_id = 'CS101'"
        decision = self.conn.check_validity(sql)
        assert decision.conditional
        # C3b: the remainder (Registered) is pinned on its full key, so
        # multiplicities are exact and no DISTINCT wrapper is needed.
        assert any(step.rule == "C3b" for step in decision.trace), [
            str(s) for s in decision.trace
        ]
        assert_witness_matches(self.db, self.conn, sql, decision)


class TestSection6AccessPatterns:
    """Section 6: SingleGrade ($$), instantiation and dependent joins."""

    def setup_method(self):
        self.db = fresh_db()
        self.db.execute_script(
            """
            create authorization view SingleGrade as
                select * from Grades where student_id = $$1;
            create authorization view AllStudents as
                select * from Students;
            """
        )
        self.db.grant_public("SingleGrade")
        self.db.grant_public("AllStudents")
        self.conn = self.db.connect(user_id="secretary", mode="non-truman")

    def test_pinned_student_valid(self):
        sql = "select grade from Grades where student_id = '12'"
        decision = self.conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        assert_witness_matches(self.db, self.conn, sql, decision)

    def test_unbounded_scan_rejected(self):
        """'Prevents her from getting a list of all students' grades'."""
        assert not self.conn.check_validity("select grade from Grades").valid

    def test_dependent_join_valid(self):
        sql = (
            "select s.name, g.grade from Students s, Grades g "
            "where s.student_id = g.student_id"
        )
        decision = self.conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        assert any(step.rule == "AP" for step in decision.trace)
        assert_witness_matches(self.db, self.conn, sql, decision)
