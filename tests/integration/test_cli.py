"""Tests for the interactive shell (repro.cli)."""

import io

import pytest

from repro.cli import Shell, build_database
from repro.db import Database

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


def run_shell(db, script: str) -> str:
    out = io.StringIO()
    shell = Shell(db, out=out)
    shell.run(io.StringIO(script))
    return out.getvalue()


@pytest.fixture
def db():
    database = Database()
    database.execute_script(UNIVERSITY_SCHEMA)
    database.execute_script(UNIVERSITY_DATA)
    database.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    database.grant_public("MyGrades")
    return database


class TestMetaCommands:
    def test_user_switch_and_query(self, db):
        output = run_shell(db, "\\user 11\nselect grade from Grades where student_id = '11';\n")
        assert "connected as '11'" in output
        assert "2 row(s)" in output

    def test_mode_switch(self, db):
        output = run_shell(db, "\\mode open\nselect count(*) from Grades;\n")
        assert "access-control mode: open" in output
        assert "4" in output

    def test_invalid_mode(self, db):
        output = run_shell(db, "\\mode bogus\n")
        assert "modes:" in output

    def test_invalid_mode_keeps_session_consistent(self, db):
        """\\mode with an unknown mode errors cleanly and the session
        stays in the previous, working mode."""
        output = run_shell(
            db,
            "\\user 11\n\\mode bogus\n"
            "select grade from Grades where student_id = '11';\n",
        )
        assert "error: unknown mode 'bogus'" in output
        assert "staying in 'non-truman'" in output
        # the shell still enforces non-truman (query is valid → rows)
        assert "2 row(s)" in output
        # prompt still shows the old mode, not a broken one
        assert "11@non-truman>" in output

    def test_meta_command_mid_buffer_is_rejected_cleanly(self, db):
        """\\user typed mid-statement must not be swallowed into the SQL
        buffer (which silently corrupted both the statement and the
        session) — it errors and leaves the buffer intact."""
        output = run_shell(
            db,
            "\\mode open\nselect count(*)\n\\user 12\nfrom Grades;\n",
        )
        assert "error: cannot run meta-command \\user" in output
        assert "1 buffered line(s)" in output
        # the statement completes afterwards with the original session
        assert "4" in output
        assert "connected as" not in output

    def test_reset_discards_buffer(self, db):
        output = run_shell(
            db,
            "\\mode open\nselect count(*)\n\\reset\n"
            "select count(*) from Courses;\n",
        )
        assert "input buffer cleared (1 line(s) discarded)" in output
        assert "3" in output

    def test_stats_meta_command(self, db):
        output = run_shell(
            db,
            "\\user 11\nselect grade from Grades where student_id = '11';\n"
            "\\stats\n",
        )
        assert "shell-gateway" in output
        assert "requests_ok" in output
        assert "cache_hit_rate" in output

    def test_audit_meta_command(self, db):
        output = run_shell(
            db,
            "\\user 11\nselect grade from Grades where student_id = '11';\n"
            "select * from Grades;\n\\audit 5\n",
        )
        assert "status=ok" in output
        assert "status=rejected" in output
        # audit signatures are literal-stripped
        assert "$_lit" in output.lower() or "student_id =" in output

    def test_views_listing_marks_availability(self, db):
        output = run_shell(db, "\\user 11\n\\views\n")
        assert "* MyGrades" in output

    def test_check_prints_trace_and_witness(self, db):
        output = run_shell(
            db, "\\user 11\n\\check select grade from Grades where student_id = '11'\n"
        )
        assert "unconditional" in output
        assert "witness plan" in output
        assert "ViewRel(MyGrades" in output

    def test_check_invalid_query(self, db):
        output = run_shell(db, "\\user 11\n\\check select * from Grades\n")
        assert "invalid" in output

    def test_explain(self, db):
        output = run_shell(db, "\\mode open\n\\explain select grade from Grades\n")
        assert "Project" in output and "Rel(Grades" in output

    def test_grant(self, db):
        db.execute(
            "create authorization view V2 as select * from Courses"
        )
        output = run_shell(db, "\\grant V2 public\n")
        assert "granted V2 to public" in output
        assert db.grants.is_granted("V2", "anyone")

    def test_tables(self, db):
        output = run_shell(db, "\\tables\n")
        assert "Students" in output and "Grades" in output

    def test_help_and_quit(self, db):
        output = run_shell(db, "\\help\n\\quit\nselect 1;\n")
        assert "meta-commands" in output.lower() or "\\mode" in output
        # nothing executed after \quit
        assert "col1" not in output

    def test_unknown_meta(self, db):
        output = run_shell(db, "\\frobnicate\n")
        assert "unknown meta-command" in output


class TestSqlExecution:
    def test_multiline_statement(self, db):
        output = run_shell(
            db, "\\mode open\nselect count(*)\nfrom Grades\nwhere grade > 3;\n"
        )
        assert "2" in output

    def test_rejection_surfaces_as_error(self, db):
        output = run_shell(db, "\\user 11\nselect * from Grades;\n")
        assert "error:" in output and "rejected" in output

    def test_dml_row_count(self, db):
        output = run_shell(
            db,
            "\\mode open\ninsert into Students values ('99','Zed','PartTime');\n",
        )
        assert "1 row(s) affected" in output

    def test_parse_error_reported(self, db):
        output = run_shell(db, "selekt nonsense;\n")
        assert "error:" in output

    def test_motro_annotations_shown(self, db):
        output = run_shell(
            db, "\\user 11\n\\mode motro\nselect grade from Grades;\n"
        )
        assert "note:" in output and "student_id = '11'" in output


class TestBuildDatabase:
    def test_university_workload(self):
        db = build_database("university", None)
        assert db.catalog.has_table("Students")

    def test_bank_workload(self):
        db = build_database("bank", None)
        assert db.catalog.has_table("Accounts")
        assert db.grants.is_granted("TellerBalances", "teller")

    def test_script_loading(self, tmp_path):
        script = tmp_path / "schema.sql"
        script.write_text("create table T(a int primary key); insert into T values (1);")
        db = build_database(None, str(script))
        assert db.execute("select count(*) from T").scalar() == 1


class TestDurabilityMetaCommands:
    def test_save_checkpoint_walstats_open(self, db, tmp_path):
        data_dir = str(tmp_path / "cli-data")
        output = run_shell(
            db,
            "\\mode open\n"
            f"\\save {data_dir}\n"
            "insert into Students values ('99', 'Zoe', null);\n"
            "\\wal-stats\n"
            "\\checkpoint\n",
        )
        assert f"durable at {data_dir!r}" in output
        assert "1 row(s) affected" in output
        assert "wal_records" in output
        assert "sync_policy" in output
        assert "checkpoint complete at LSN" in output

        # a fresh shell re-opens the directory and sees the insert
        out2 = run_shell(
            Database(),
            f"\\open {data_dir}\n"
            "\\mode open\n"
            "select name from Students where student_id = '99';\n",
        )
        assert f"opened {data_dir!r}" in out2
        assert "Zoe" in out2

    def test_save_requires_argument(self, db):
        output = run_shell(db, "\\save\n")
        assert "usage: \\save <directory>" in output

    def test_open_requires_argument(self, db):
        output = run_shell(db, "\\open\n")
        assert "usage: \\open <directory>" in output

    def test_checkpoint_in_memory_errors(self, db):
        output = run_shell(db, "\\checkpoint\n")
        assert "error:" in output

    def test_wal_stats_in_memory_hint(self, db):
        output = run_shell(db, "\\wal-stats\n")
        assert "in-memory" in output

    def test_save_over_existing_data_reports_error(self, db, tmp_path):
        data_dir = str(tmp_path / "occupied")
        Database.open(data_dir).close()
        output = run_shell(db, f"\\save {data_dir}\n")
        assert "error:" in output
        assert "already holds durable data" in output

    def test_open_replays_wal_tail(self, db, tmp_path):
        data_dir = str(tmp_path / "tail")
        durable = Database.open(data_dir)
        durable.execute("create table T(id int primary key)")
        durable.execute("insert into T values (7)")
        durable.close(checkpoint=False)  # leave records in the WAL
        output = run_shell(Database(), f"\\open {data_dir}\n")
        assert "WAL record(s) replayed" in output


class TestDataDirFlag:
    def test_build_database_initializes_then_reopens(self, tmp_path):
        data_dir = str(tmp_path / "flagged")
        first = build_database("bank", None, data_dir)
        accounts = len(first.table("Accounts"))
        assert first.durability is not None
        first.execute(
            "insert into Customers values ('C999', 'New', '1 Elm St')"
        )
        first.close()
        # second invocation ignores --workload and opens the saved state
        second = build_database(None, None, data_dir)
        assert len(second.table("Accounts")) == accounts
        result = second.execute(
            "select name from Customers where cust_id = 'C999'"
        )
        assert result.rows == [("New",)]
        second.close()

    def test_build_database_without_data_dir_is_in_memory(self):
        db = build_database(None, None)
        assert db.durability is None


class TestRemoteShell:
    """The shell's remote mode: a REPL over a live network service."""

    def run_remote(self, db, script: str) -> str:
        from repro.cli import RemoteShell
        from repro.net import NetworkService, ReproClient
        from repro.service import EnforcementGateway

        gateway = EnforcementGateway(db, workers=2, name="cli-remote")
        out = io.StringIO()
        try:
            with NetworkService(gateway, name="cli-remote") as network:
                host, port = network.address
                client = ReproClient(host, port)
                RemoteShell(client, out=out).run(io.StringIO(script))
        finally:
            gateway.shutdown(drain=False)
        return out.getvalue()

    def test_connect_banner_and_prompt(self, db):
        output = self.run_remote(db, "\\quit\n")
        assert "connected to 'cli-remote'" in output
        assert "remote>" in output
        assert "bye" in output

    def test_user_switch_and_query(self, db):
        output = self.run_remote(
            db,
            "\\user 11\n"
            "select grade from Grades where student_id = '11';\n",
        )
        assert "connected as '11'" in output
        assert "3.5" in output and "4" in output
        assert "2 row(s)" in output

    def test_access_denied_prints_like_in_process(self, db):
        output = self.run_remote(
            db,
            "\\user 11\nselect * from Grades;\n",
        )
        assert "error:" in output
        assert "rejected" in output

    def test_mode_switch(self, db):
        output = self.run_remote(
            db,
            "\\mode open\nselect count(*) from Grades;\n",
        )
        assert "connected as None in mode 'open'" in output
        assert "4" in output

    def test_bad_mode_keeps_session(self, db):
        output = self.run_remote(db, "\\mode sideways\n\\quit\n")
        assert "unknown mode 'sideways'" in output
        assert "bye" in output

    def test_stats_fetches_remote_snapshot(self, db):
        output = self.run_remote(
            db,
            "\\user 11\n"
            "select grade from Grades where student_id = '11';\n"
            "\\stats\n",
        )
        assert "-- remote gateway --" in output
        assert "net_queries" in output
        assert "connections_open" in output
        assert "requests_ok" in output

    def test_dml_rowcount(self, db):
        output = self.run_remote(
            db,
            "\\mode open\n"
            "insert into Students values ('77','Pat','PartTime');\n",
        )
        assert "1 row(s) affected" in output

    def test_local_only_meta_command_rejected(self, db):
        output = self.run_remote(db, "\\views\n\\quit\n")
        assert "not available in remote mode" in output

    def test_reset_discards_buffer(self, db):
        output = self.run_remote(
            db,
            "\\mode open\nselect grade\n\\reset\n"
            "select count(*) from Students;\n",
        )
        assert "input buffer cleared (1 line(s) discarded)" in output
        assert "4" in output
