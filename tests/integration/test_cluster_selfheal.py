"""Self-healing replication: quarantine, catch-up, anti-entropy, restart.

The contract under test:

* a replica that stops responding is **quarantined** and instantly
  removed from read routing — the gateway falls back to the primary
  with a typed :class:`~repro.errors.ReplicaUnavailable`, never a stale
  answer;
* **catch-up streaming** rejoins a killed replica without any manual
  ``sync_replicas``: bootstrap from a snapshot when the log has moved
  on, then stream the WAL tail in bounded chunks with retry/backoff,
  rejoining routing only once lag, epoch, and digests all clear;
* the **anti-entropy** pass detects silent divergence (corrupted rows,
  digest faults) and heals it by automatic re-bootstrap, with the
  ``replica_divergence`` metric returning to 0;
* ``ClusterCoordinator.open`` restores a crashed durable cluster —
  under a matrix of injected crash points — byte-identical to a
  never-crashed oracle, on both execution engines.
"""

import io
import threading
import time

import pytest

from repro.authviews.session import SessionContext
from repro.cluster import ClusterCoordinator
from repro.cluster.health import (
    CATCHING_UP,
    HEALTHY,
    QUARANTINED,
    SUSPECT,
    content_digests,
)
from repro.db import Database
from repro.durability.faults import InjectedCrash
from repro.errors import ReplicaUnavailable, ReproError
from repro.service import ChaosInjector, EnforcementGateway, QueryRequest
from repro.service.clock import ManualClock


def S(user):
    return SessionContext(user_id=user)


def cluster_db(replicas=1, **kwargs):
    kwargs.setdefault("shards", 4)
    kwargs.setdefault("ship_batch", 1)
    db = ClusterCoordinator(replicas=replicas, **kwargs)
    db.execute(
        "create table Grades (student_id varchar(10), course varchar(10), "
        "grade float)"
    )
    for i in range(20):
        db.execute(
            f"insert into Grades values ('{10 + i}', 'CS10{i % 4}', "
            f"{round(1.0 + (i % 30) * 0.1, 1)})"
        )
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant("MyGrades", "11")
    db.sync_replicas()
    return db


def manual_cluster(replicas=1, **kwargs):
    """A cluster whose failure detector runs on a ManualClock."""
    clock = ManualClock()
    kwargs.setdefault("suspect_after", 5.0)
    kwargs.setdefault("quarantine_after", 15.0)
    db = cluster_db(replicas=replicas, clock=clock, **kwargs)
    return db, clock


def run_one(db, sql, user, mode, engine):
    try:
        result = db.execute_query(
            sql, session=S(user), mode=mode, engine=engine
        )
    except ReproError as exc:
        return ("err", type(exc).__name__, str(exc))
    return ("ok", tuple(result.columns), tuple(sorted(result.rows)))


class TestFailureDetection:
    def test_partitioned_replica_quarantined_and_unrouted(self):
        db, clock = manual_cluster(replicas=1)
        shipper = db.durability.shippers[0]
        assert db.route_read() is db.replicas[0]
        shipper.paused = True  # partition: no liveness evidence
        clock.advance(6.0)
        db.tick()
        assert db.health.state_of("r0") == SUSPECT
        assert db.route_read() is None  # suspects are not routable
        clock.advance(10.0)
        db.tick()
        assert db.health.state_of("r0") == QUARANTINED
        assert db.route_read() is None

    def test_healthy_idle_cluster_never_drifts(self):
        """An un-paused shipper is positive evidence: silence alone
        (no writes for a long time) must not quarantine anything."""
        db, clock = manual_cluster(replicas=2)
        for _ in range(10):
            clock.advance(60.0)
            db.tick()
        assert db.health.state_of("r0") == HEALTHY
        assert db.health.state_of("r1") == HEALTHY

    def test_consecutive_ship_failures_quarantine(self):
        db, _ = manual_cluster(replicas=1, failure_threshold=3)
        shipper = db.durability.shippers[0]
        shipper.fail_next_ships = 3
        for i in range(3):
            # each commit's ship fails; the write itself succeeds
            db.execute(f"insert into Grades values ('9{i}', 'CS1', 1.0)")
        assert db.health.state_of("r0") == QUARANTINED
        assert db.table("Grades") is not None  # primary kept accepting

    def test_quarantined_replica_not_shipped_at_commit(self):
        """Commit-time shipping skips quarantined replicas — the
        catch-up path owns their cursor exclusively."""
        db, _ = manual_cluster(replicas=1)
        shipper = db.durability.shippers[0]
        db.health.quarantine("r0", "test")
        ships_before = shipper.ships
        db.execute("insert into Grades values ('95', 'CS1', 1.0)")
        assert shipper.ships == ships_before
        assert shipper.lag() > 0

    def test_gateway_falls_back_to_primary_on_unavailable(self):
        """Routing picked a replica, the detector quarantined it before
        execution: the read answers from the primary (typed fallback),
        and the fallback is counted."""
        db, _ = manual_cluster(replicas=1)
        replica = db.replicas[0]
        db.route_read = lambda: replica  # pin routing to the replica
        db.health.quarantine("r0", "raced")
        gateway = EnforcementGateway(db, workers=1)
        try:
            response = gateway.execute(
                QueryRequest(
                    user="11", sql="select grade from MyGrades",
                    mode="non-truman",
                )
            )
            assert response.ok
            assert response.replica is None  # served by the primary
            assert sorted(response.result.rows) == [(1.1,)]
            stats = gateway.stats()
            assert stats["replica_fallbacks"] == 1
            assert stats["replica_reads"] == 0
        finally:
            gateway.shutdown(drain=False)

    def test_verify_replica_serving_is_typed(self):
        db, _ = manual_cluster(replicas=1)
        replica = db.replicas[0]
        db.verify_replica_serving(replica)  # healthy: no raise
        db.health.quarantine("r0", "test")
        with pytest.raises(ReplicaUnavailable):
            db.verify_replica_serving(replica)


class TestCatchUpStreaming:
    def test_rejoins_killed_replica_without_sync_replicas(self):
        """The acceptance path: a replica killed mid-ship is streamed
        back through catch_up alone — no manual sync_replicas."""
        db, clock = manual_cluster(replicas=1, catchup_chunk=4)
        shipper = db.durability.shippers[0]
        shipper.paused = True
        for i in range(10):
            db.execute(f"insert into Grades values ('8{i}', 'CS2', 2.0)")
        clock.advance(20.0)
        db.tick()
        assert db.health.state_of("r0") == QUARANTINED
        shipper.paused = False  # the "process" came back
        (report,) = db.catch_up("r0")
        assert report["records_streamed"] == 10
        assert report["chunks"] >= 3  # bounded chunks, not one blast
        assert report["divergences"] == 0
        assert db.health.state_of("r0") == HEALTHY
        assert shipper.lag() == 0
        assert db.route_read() is db.replicas[0]
        assert content_digests(db) == content_digests(
            db.replicas[0].database
        )

    def test_truncated_ship_stream_retries_and_converges(self):
        db, _ = manual_cluster(
            replicas=1, catchup_backoff=0.0001, catchup_backoff_cap=0.001
        )
        shipper = db.durability.shippers[0]
        shipper.paused = True
        for i in range(6):
            db.execute(f"insert into Grades values ('7{i}', 'CS3', 3.0)")
        shipper.paused = False
        shipper.truncate_next_ships = 2  # first two chunks cut in half
        (report,) = db.catch_up("r0")
        assert report["retries"] >= 1
        assert db.health.state_of("r0") == HEALTHY
        assert shipper.lag() == 0
        assert content_digests(db) == content_digests(
            db.replicas[0].database
        )

    def test_retry_exhaustion_requarantines(self):
        db, _ = manual_cluster(
            replicas=1, catchup_retries=2,
            catchup_backoff=0.0001, catchup_backoff_cap=0.001,
        )
        shipper = db.durability.shippers[0]
        shipper.paused = True
        db.execute("insert into Grades values ('70', 'CS3', 3.0)")
        shipper.paused = False
        shipper.truncate_next_ships = 10**6  # every attempt truncates
        with pytest.raises(ReplicaUnavailable):
            db.catch_up("r0")
        shipper.truncate_next_ships = 0
        assert db.health.state_of("r0") == QUARANTINED
        assert db.route_read() is None
        # the replica heals once the fault clears
        (report,) = db.catch_up("r0")
        assert db.health.state_of("r0") == HEALTHY
        assert report["retries"] == 0

    def test_paused_replica_catch_up_aborts(self):
        db, _ = manual_cluster(replicas=1)
        shipper = db.durability.shippers[0]
        shipper.paused = True
        with pytest.raises(ReplicaUnavailable):
            db.catch_up("r0")
        assert db.health.state_of("r0") == QUARANTINED

    def test_new_replica_bootstraps_over_truncated_history(self, tmp_path):
        """After a checkpoint truncated the replication log, a new
        replica cannot stream from LSN 0 — it must snapshot-bootstrap,
        then serve the exact same rows."""
        db = cluster_db(replicas=0, shards=2, data_dir=str(tmp_path))
        db.checkpoint()
        assert db.durability.log.base_lsn > 0
        replica = db.add_replica("late")
        assert replica.bootstraps == 1
        assert db.health.state_of("late") == HEALTHY
        assert content_digests(db) == content_digests(replica.database)
        result = replica.database.execute_query(
            "select grade from MyGrades", session=S("11"), mode="non-truman"
        )
        assert result.rows == [(1.1,)]
        db.close()

    def test_auto_catchup_heals_on_tick(self):
        db, clock = manual_cluster(replicas=1, auto_catchup=True)
        shipper = db.durability.shippers[0]
        shipper.paused = True
        db.execute("insert into Grades values ('60', 'CS0', 2.5)")
        clock.advance(20.0)
        db.tick()
        assert db.health.state_of("r0") == QUARANTINED
        shipper.paused = False
        clock.advance(1.0)
        db.tick()  # the detector pass itself triggers catch-up
        assert db.health.state_of("r0") == HEALTHY
        assert shipper.lag() == 0


class TestAntiEntropy:
    def test_clean_pass(self):
        db, _ = manual_cluster(replicas=2)
        assert db.run_anti_entropy() == {"r0": "clean", "r1": "clean"}
        assert db.cluster_health()["replica_divergence"] == 0

    def test_corrupted_replica_detected_and_healed(self):
        db, _ = manual_cluster(replicas=2)
        replica = db.replicas[0]
        # silent corruption: flip a row on the replica behind the WAL's back
        rid, row = next(iter(replica.database.table("Grades").rows_with_ids()))
        replica.database.table("Grades").update_row(rid, (row[0], row[1], 99.9))
        outcomes = db.run_anti_entropy()
        assert outcomes == {"r0": "rebootstrapped", "r1": "clean"}
        health = db.cluster_health()
        assert health["replica_divergence"] == 0  # resolved by re-bootstrap
        r0 = next(r for r in health["replicas"] if r["name"] == "r0")
        assert r0["divergences"] == 1  # but the event is on the record
        assert r0["state"] == HEALTHY
        assert content_digests(db) == content_digests(replica.database)

    def test_lost_revoke_on_replica_detected(self):
        """A replica that silently resurrects a revoked grant can never
        digest clean — the policy digest covers the grant registry."""
        db, _ = manual_cluster(replicas=1)
        db.grants.revoke("MyGrades", "11")
        db.sync_replicas()
        replica = db.replicas[0]
        replica.database.grants.grant("MyGrades", "11", grantor=None)
        outcomes = db.run_anti_entropy()
        assert outcomes == {"r0": "rebootstrapped"}
        with pytest.raises(ReproError):
            replica.database.execute_query(
                "select grade from MyGrades", session=S("11"),
                mode="non-truman",
            )

    def test_digest_fault_reads_as_divergence(self):
        """Corruption of the digest channel itself must fail safe: the
        replica re-bootstraps rather than trusting an unverifiable state."""
        chaos = ChaosInjector(seed=5)
        db, _ = manual_cluster(replicas=1, chaos=chaos)
        chaos.inject("cluster.digest", "io-error", times=1)
        outcomes = db.run_anti_entropy()
        assert outcomes == {"r0": "rebootstrapped"}
        assert db.health.state_of("r0") == HEALTHY
        assert db.cluster_health()["replica_divergence"] == 0

    def test_rejoin_verifies_digests(self):
        """Catch-up's rejoin gate runs the same digest comparison: a
        replica corrupted while quarantined re-bootstraps on rejoin."""
        db, clock = manual_cluster(replicas=1)
        shipper = db.durability.shippers[0]
        shipper.paused = True
        db.execute("insert into Grades values ('50', 'CS1', 1.5)")
        clock.advance(20.0)
        db.tick()
        replica = db.replicas[0]
        rid, row = next(iter(replica.database.table("Grades").rows_with_ids()))
        replica.database.table("Grades").update_row(rid, (row[0], row[1], 0.0))
        shipper.paused = False
        (report,) = db.catch_up("r0")
        assert report["divergences"] == 1
        assert report["bootstrapped"] is True
        assert db.health.state_of("r0") == HEALTHY
        assert content_digests(db) == content_digests(replica.database)


class TestFlappingStorm:
    def test_seeded_flapping_storm_holds_all_invariants(self):
        """Replicas cycling HEALTHY → SUSPECT/QUARANTINED → CATCHING_UP
        → HEALTHY under grant/revoke churn, pause flaps, and truncated
        ship streams: 0 stale-policy answers, 0 unauthorized rows,
        0 hangs, 0 unresolved divergences."""
        db = cluster_db(
            replicas=2,
            suspect_after=0.01,
            quarantine_after=0.03,
            health_tick_interval=0.001,
            failure_threshold=2,
            catchup_backoff=0.0005,
            catchup_backoff_cap=0.005,
            catchup_seed=42,
        )
        gateway = EnforcementGateway(db, workers=4)
        state_lock = threading.Lock()
        state = [0, True]  # (flip counter, currently granted)
        stale, unauthorized = [], []
        stop = threading.Event()

        def snapshot():
            with state_lock:
                return state[0], state[1]

        def churn():
            while not stop.is_set():
                with state_lock:
                    db.grants.revoke("MyGrades", "11")
                    state[0] += 1
                    state[1] = False
                time.sleep(0.0005)
                with state_lock:
                    db.grant("MyGrades", "11")
                    state[0] += 1
                    state[1] = True
                time.sleep(0.0005)

        def flap():
            # partitions long enough to quarantine, plus stream faults
            n = 0
            while not stop.is_set():
                shipper = db.durability.shippers[n % 2]
                shipper.paused = True
                time.sleep(0.001 + (n % 5) * 0.012)
                shipper.paused = False
                if n % 3 == 0:
                    shipper.truncate_next_ships = 1
                n += 1

        def heal():
            while not stop.is_set():
                try:
                    db.catch_up()
                except ReplicaUnavailable:
                    pass  # still partitioned; a later pass retries
                time.sleep(0.002)

        threads = [
            threading.Thread(target=fn, daemon=True)
            for fn in (churn, flap, heal)
        ]

        def quarantines_seen():
            return sum(
                h["quarantines"] + h["suspects"]
                for h in db.health.snapshot().values()
            )

        try:
            for thread in threads:
                thread.start()
            deadline = time.time() + 8.0
            i = 0
            while i < 150 or (
                time.time() < deadline and quarantines_seen() == 0
            ):
                flips_before, granted_before = snapshot()
                response = gateway.execute(
                    QueryRequest(
                        user="11",
                        sql="select grade from MyGrades",
                        mode="non-truman",
                        tag=f"storm-{i}",
                    )
                )
                flips_after, _ = snapshot()
                if response.ok:
                    # authorization leak: '11' may only ever see 1.1
                    if any(row != (1.1,) for row in response.result.rows):
                        unauthorized.append((i, response.result.rows))
                    # sound staleness witness: revoked for the entire
                    # request, yet the answer came back OK
                    if not granted_before and flips_after == flips_before:
                        stale.append((i, response.replica))
                i += 1
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
            hung = [t for t in threads if t.is_alive()]
            for shipper in db.durability.shippers:
                shipper.paused = False
                shipper.truncate_next_ships = 0
            gateway.shutdown(drain=False)
        assert stale == []
        assert unauthorized == []
        assert hung == []  # 0 hangs
        assert quarantines_seen() > 0  # the storm actually flapped
        # convergence: every replica heals and digests clean
        db.catch_up()
        assert db.run_anti_entropy() == {"r0": "clean", "r1": "clean"}
        health = db.cluster_health()
        assert health["replica_divergence"] == 0
        for rep in health["replicas"]:
            assert rep["state"] == HEALTHY and rep["lag"] == 0
        for replica in db.replicas:
            assert content_digests(db) == content_digests(replica.database)


# -- cluster-wide crash recovery ---------------------------------------------

SEED_OPS = [
    lambda db: db.execute(
        "create table Grades (student_id varchar(10), course varchar(10), "
        "grade float)"
    ),
    lambda db: db.execute("insert into Grades values ('11', 'CS101', 3.5)"),
    lambda db: db.execute("insert into Grades values ('12', 'CS101', 2.0)"),
    lambda db: db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    ),
    lambda db: db.grant("MyGrades", "11"),
    lambda db: db.grant("MyGrades", "12"),
]

TAIL_OPS = [
    lambda db: db.execute("insert into Grades values ('13', 'CS102', 3.0)"),
    lambda db: db.grants.revoke("MyGrades", "12"),
    lambda db: db.execute("insert into Grades values ('14', 'CS102', 1.5)"),
]

DIFF_QUERIES = [
    ("select * from Grades", None, "open"),
    ("select count(*), min(grade), max(grade) from Grades", None, "open"),
    ("select grade from MyGrades", "11", "non-truman"),
    ("select grade from MyGrades", "12", "non-truman"),  # revoked
    ("select course, grade from Grades where grade > 2.0", None, "open"),
]


def oracle_cluster():
    """The never-crashed reference: same ops, no durability, no faults."""
    db = ClusterCoordinator(shards=2, replicas=1, ship_batch=1)
    for op in SEED_OPS + TAIL_OPS:
        op(db)
    db.sync_replicas()
    return db


def assert_identical(oracle, recovered):
    assert recovered.policy_epoch == oracle.policy_epoch
    assert content_digests(recovered) == content_digests(oracle)
    mismatches = []
    for engine in ("row", "vectorized"):
        for sql, user, mode in DIFF_QUERIES:
            expected = run_one(oracle, sql, user, mode, engine)
            actual = run_one(recovered, sql, user, mode, engine)
            if expected != actual:
                mismatches.append(("primary", engine, sql, expected, actual))
            for replica in recovered.replicas:
                on_replica = run_one(
                    replica.database, sql, user, mode, engine
                )
                if expected != on_replica:
                    mismatches.append(
                        (replica.name, engine, sql, expected, on_replica)
                    )
    assert mismatches == []


class TestClusterRestart:
    def test_clean_restart_resurrects_replicas(self, tmp_path):
        db = ClusterCoordinator(
            shards=2, replicas=1, ship_batch=1, data_dir=str(tmp_path)
        )
        for op in SEED_OPS + TAIL_OPS:
            op(db)
        db.sync_replicas()
        db.close()
        reopened = ClusterCoordinator.open(str(tmp_path), shards=2, replicas=1)
        assert reopened.recovery_report is not None
        assert_identical(oracle_cluster(), reopened)
        health = reopened.cluster_health()
        assert all(r["state"] == HEALTHY for r in health["replicas"])
        assert all(r["lag"] == 0 for r in health["replicas"])
        assert all(r["bootstraps"] == 1 for r in health["replicas"])
        reopened.close()

    @pytest.mark.parametrize(
        "point",
        [
            "wal.torn_append",
            "checkpoint.mid_snapshot",
            "cluster.catchup",
            "cluster.ship_stream",
            "cluster.bootstrap",
        ],
    )
    def test_crash_matrix_differential(self, tmp_path, point):
        """Kill the cluster at each fire point (append, checkpoint,
        catch-up start, mid-stream, mid-bootstrap); reopen; the
        recovered cluster must be byte-identical to the oracle."""
        chaos = ChaosInjector(seed=3)
        db = ClusterCoordinator(
            shards=2, replicas=1, ship_batch=1,
            data_dir=str(tmp_path), chaos=chaos,
        )
        for op in SEED_OPS:
            op(db)
        db.sync_replicas()
        shipper = db.durability.shippers[0]
        if point == "wal.torn_append":
            for op in TAIL_OPS[:-1]:
                op(db)
            chaos.arm(point)
            with pytest.raises(InjectedCrash):
                TAIL_OPS[-1](db)
            # the torn record was not durably committed: re-run it on
            # the oracle side by reopening *then* applying the lost op
        elif point == "checkpoint.mid_snapshot":
            for op in TAIL_OPS:
                op(db)
            chaos.arm(point)
            with pytest.raises(InjectedCrash):
                db.checkpoint()
        else:
            # crash somewhere inside catch-up streaming of the tail
            shipper.paused = True
            for op in TAIL_OPS:
                op(db)
            shipper.paused = False
            chaos.arm(point)
            with pytest.raises(InjectedCrash):
                if point == "cluster.bootstrap":
                    db.catch_up("r0", force_bootstrap=True)
                else:
                    db.catch_up("r0")
        # simulated process death: the object is abandoned un-closed
        reopened = ClusterCoordinator.open(str(tmp_path), shards=2, replicas=1)
        assert reopened.recovery_report is not None
        if point == "wal.torn_append":
            assert reopened.recovery_report["torn_truncated"] is True
            TAIL_OPS[-1](reopened)  # the op the crash swallowed
            reopened.sync_replicas()
        assert_identical(oracle_cluster(), reopened)
        reopened.close()

    def test_double_crash_then_recover(self, tmp_path):
        """Crash during recovery-era catch-up, then crash at the next
        checkpoint, then finally recover clean."""
        chaos = ChaosInjector(seed=9)
        db = ClusterCoordinator(
            shards=2, replicas=1, ship_batch=1,
            data_dir=str(tmp_path), chaos=chaos,
        )
        for op in SEED_OPS + TAIL_OPS:
            op(db)
        chaos.arm("checkpoint.mid_snapshot")
        with pytest.raises(InjectedCrash):
            db.checkpoint()
        second = ClusterCoordinator.open(
            str(tmp_path), shards=2, replicas=1, chaos=chaos
        )
        chaos.arm("cluster.catchup")
        with pytest.raises(InjectedCrash):
            second.catch_up("r0", force_bootstrap=True)
        final = ClusterCoordinator.open(str(tmp_path), shards=2, replicas=1)
        assert_identical(oracle_cluster(), final)
        final.close()


class TestWireHealth:
    @pytest.fixture
    def service(self):
        from repro.net import NetworkService

        db = cluster_db(replicas=2, shards=2)
        gateway = EnforcementGateway(db, workers=2, name="selfheal-net")
        network = NetworkService(gateway)
        host, port = network.start()
        yield db, gateway, host, port
        network.stop()
        gateway.shutdown(drain=False)

    def test_welcome_topology_and_health_frame(self, service):
        from repro.net import ReproClient

        db, _, host, port = service
        with ReproClient(host, port, user="11") as client:
            topology = client.server_info.get("topology")
            assert topology is not None and len(topology) == 2
            assert {t["name"] for t in topology} == {"r0", "r1"}
            assert all(t["quarantined"] is False for t in topology)
            health = client.health()
            assert health["shards"] == 2
            assert health["replica_divergence"] == 0
            assert {r["name"] for r in health["replicas"]} == {"r0", "r1"}

    def test_quarantine_visible_over_the_wire(self, service):
        from repro.net import ReproClient

        db, _, host, port = service
        db.health.quarantine("r0", "wire test")
        with ReproClient(host, port, user="11") as client:
            flagged = {
                t["name"]: t["quarantined"]
                for t in client.server_info["topology"]
            }
            assert flagged == {"r0": True, "r1": False}
            health = client.health()
            states = {r["name"]: r["state"] for r in health["replicas"]}
            assert states["r0"] == QUARANTINED
            assert states["r1"] == HEALTHY

    def test_health_none_on_single_node_server(self):
        from repro.net import NetworkService, ReproClient

        db = Database()
        db.execute("create table T (a int primary key)")
        gateway = EnforcementGateway(db, workers=1)
        network = NetworkService(gateway)
        host, port = network.start()
        try:
            with ReproClient(host, port) as client:
                assert "topology" not in client.server_info
                assert client.health() is None
        finally:
            network.stop()
            gateway.shutdown(drain=False)

    def test_async_client_health(self, service):
        import asyncio

        from repro.net import AsyncReproClient

        _, _, host, port = service

        async def check():
            client = await AsyncReproClient.connect(host, port, user="11")
            try:
                health = await client.health()
                assert health["shards"] == 2
            finally:
                await client.close()

        asyncio.run(check())

    def test_remote_shell_replicas_command(self, service):
        from repro.cli import RemoteShell
        from repro.net import ReproClient

        db, _, host, port = service
        db.health.quarantine("r1", "shell test")
        client = ReproClient(host, port, user="11")
        out = io.StringIO()
        shell = RemoteShell(client, out=out)
        try:
            shell._meta("\\replicas")
        finally:
            client.close()
        text = out.getvalue()
        assert "policy epoch" in text
        assert "r0: state=healthy" in text
        assert "r1: state=quarantined" in text
        assert "QUARANTINED" in text


class TestLocalShellReplicas:
    def test_replicas_meta_command(self):
        from repro.cli import Shell

        db = cluster_db(replicas=1, shards=2)
        out = io.StringIO()
        shell = Shell(db, out=out)
        try:
            shell._meta("\\replicas")
        finally:
            shell.close()
        text = out.getvalue()
        assert "r0: state=healthy" in text
        assert "unresolved divergences 0" in text

    def test_replicas_on_single_node(self):
        from repro.cli import Shell

        out = io.StringIO()
        shell = Shell(Database(), out=out)
        try:
            shell._meta("\\replicas")
        finally:
            shell.close()
        assert "not a sharded cluster" in out.getvalue()

    def test_stats_includes_replica_health(self):
        from repro.cli import Shell

        db = cluster_db(replicas=1, shards=2)
        out = io.StringIO()
        shell = Shell(db, out=out)
        try:
            shell._meta("\\stats")
        finally:
            shell.close()
        text = out.getvalue()
        assert "replica_divergence" in text
        assert "replica_r0_state" in text
