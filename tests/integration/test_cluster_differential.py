"""Cross-node differential: cluster answers byte-identical to single-node.

The cluster's contract is that sharding + replication are *invisible*:
for every query, mode, and engine, a 4-shard coordinator (with a read
replica serving what it can) produces exactly the rows, rejection
messages, and audit records a single-node database would — while the
checker and prepared pipeline run once per query on the coordinator,
never once per shard.
"""

import pytest

from repro.authviews.session import SessionContext
from repro.cluster import ClusterCoordinator
from repro.db import Database, _QueryContext
from repro.engine import make_executor
from repro.errors import ReproError
from repro.instrument import COUNTERS
from repro.service import EnforcementGateway, QueryRequest
from repro.sql.parser import parse_query
from repro.workloads.university import (
    UniversityConfig,
    build_university,
    student_ids,
)

CONFIG = UniversityConfig(students=30, courses=8, seed=77)


def build_pair(replicas=1):
    single = build_university(CONFIG)
    cluster = build_university(
        CONFIG, db=ClusterCoordinator(shards=4, replicas=replicas)
    )
    cluster.sync_replicas()
    return single, cluster


@pytest.fixture(scope="module")
def pair():
    return build_pair()


def corpus(db):
    """Queries spanning scans, point reads, aggregates, joins, groups,
    auth views — accepted and rejected alike."""
    users = student_ids(db)[:4]
    queries = [
        ("select * from Students", None, "open"),
        ("select * from Grades", None, "open"),
        (
            f"select name from Students where student_id = '{users[0]}'",
            None,
            "open",
        ),
        ("select count(*) from Registered", None, "open"),
        (
            "select count(*), min(grade), max(grade) from Grades",
            None,
            "open",
        ),
        ("select avg(grade), sum(grade) from Grades", None, "open"),
        (
            "select course_id, count(*) from Registered group by course_id",
            None,
            "open",
        ),
        (
            "select s.name, r.course_id from Students s, Registered r "
            "where s.student_id = r.student_id and s.type = 'FullTime'",
            None,
            "open",
        ),
        ("select distinct type from Students", None, "open"),
    ]
    for user in users[:2]:
        queries.append(
            (
                f"select grade from Grades where student_id = '{user}'",
                user,
                "non-truman",
            )
        )
        queries.append(("select * from Grades", user, "non-truman"))
        queries.append(
            (
                "select course_id, grade from Grades "
                f"where student_id = '{user}' and grade > 2.0",
                user,
                "non-truman",
            )
        )
    return queries


def run_one(db, sql, user, mode, engine):
    try:
        result = db.execute_query(
            sql,
            session=SessionContext(user_id=user),
            mode=mode,
            engine=engine,
        )
    except ReproError as exc:
        return ("err", type(exc).__name__, str(exc))
    return ("ok", tuple(result.columns), tuple(result.rows))


class TestLibraryDifferential:
    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_every_query_byte_identical(self, pair, engine):
        single, cluster = pair
        mismatches = []
        for sql, user, mode in corpus(single):
            expected = run_one(single, sql, user, mode, engine)
            actual = run_one(cluster, sql, user, mode, engine)
            if expected != actual:
                mismatches.append((engine, sql, expected, actual))
        assert mismatches == []

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_replica_byte_identical(self, pair, engine):
        single, cluster = pair
        replica = cluster.replicas[0]
        mismatches = []
        for sql, user, mode in corpus(single):
            expected = run_one(single, sql, user, mode, engine)
            actual = run_one(replica.database, sql, user, mode, engine)
            if expected != actual:
                mismatches.append((engine, sql, expected, actual))
        assert mismatches == []

    def test_plan_built_once_not_per_shard(self, pair):
        _, cluster = pair
        session = SessionContext(user_id=None)
        before = COUNTERS.snapshot().get("plan.build", 0)
        cluster.execute_query(
            "select count(*) from Grades", session=session, mode="open"
        )
        after = COUNTERS.snapshot().get("plan.build", 0)
        assert after - before == 1  # one plan for 4 shards

    def test_scatter_aggregate_engaged_for_count(self, pair):
        _, cluster = pair
        session = SessionContext(user_id=None)
        before = COUNTERS.snapshot().get("cluster.scatter", 0)
        result = cluster.execute_query(
            "select count(*) from Registered", session=session, mode="open"
        )
        after = COUNTERS.snapshot().get("cluster.scatter", 0)
        assert after == before + 1
        single_count = sum(
            node.tables["registered"].row_count for node in cluster.nodes
        )
        assert result.rows == [(single_count,)]

    def test_float_aggregate_bypasses_scatter(self, pair):
        """Float sums are order-sensitive; they must use the merged
        rid-ordered scan, not per-shard partials."""
        _, cluster = pair
        session = SessionContext(user_id=None)
        before = COUNTERS.snapshot().get("cluster.scatter", 0)
        cluster.execute_query(
            "select sum(grade) from Grades", session=session, mode="open"
        )
        assert COUNTERS.snapshot().get("cluster.scatter", 0) == before

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_point_read_prunes_to_one_shard(self, pair, engine):
        _, cluster = pair
        user = student_ids(cluster)[0]
        plan = cluster.plan_query(
            parse_query(
                f"select name from Students where student_id = '{user}'"
            ),
            SessionContext(user_id=None),
        )
        executor = make_executor(
            engine, _QueryContext(cluster, SessionContext(), None)
        )
        rows = executor.execute(plan)
        assert len(rows) == 1
        assert executor.pruned_scans >= 1


class TestGatewayDifferential:
    def test_gateway_responses_and_audit_match(self):
        single, cluster = build_pair()
        gw_single = EnforcementGateway(single, workers=1, name="single")
        gw_cluster = EnforcementGateway(cluster, workers=1, name="cluster")
        try:
            replica_served = 0
            for sql, user, mode in corpus(single):
                a = gw_single.execute(
                    QueryRequest(user=user, sql=sql, mode=mode)
                )
                b = gw_cluster.execute(
                    QueryRequest(user=user, sql=sql, mode=mode)
                )
                assert a.status == b.status, (sql, a.error, b.error)
                assert a.rows == b.rows, sql
                assert a.error == b.error, sql
                if b.replica is not None:
                    replica_served += 1
            # reads were actually routed, not silently all-primary
            assert replica_served > 0
            audit_single = [
                (r.user, r.mode, r.signature, r.status, r.decision)
                for r in gw_single.audit.tail(10**6)
            ]
            audit_cluster = [
                (r.user, r.mode, r.signature, r.status, r.decision)
                for r in gw_cluster.audit.tail(10**6)
            ]
            assert audit_single == audit_cluster
        finally:
            gw_single.shutdown()
            gw_cluster.shutdown()

    def test_writes_apply_once_and_ship(self):
        single, cluster = build_pair()
        gw_single = EnforcementGateway(single, workers=1)
        gw_cluster = EnforcementGateway(cluster, workers=1)
        try:
            stmt = "insert into Students values ('999', 'Zo', 'FullTime')"
            a = gw_single.execute(QueryRequest(user=None, sql=stmt, mode="open"))
            b = gw_cluster.execute(QueryRequest(user=None, sql=stmt, mode="open"))
            assert a.status == b.status and a.rowcount == b.rowcount
            cluster.sync_replicas()
            probe = "select * from Students where student_id = '999'"
            expected = run_one(single, probe, None, "open", "row")
            assert run_one(cluster, probe, None, "open", "row") == expected
            assert (
                run_one(
                    cluster.replicas[0].database, probe, None, "open", "row"
                )
                == expected
            )
        finally:
            gw_single.shutdown()
            gw_cluster.shutdown()

    def test_revoke_never_served_stale_through_gateway(self):
        single, cluster = build_pair()
        # pin a user-specific grant we can revoke (public views are
        # granted to everyone in the workload; add a private one)
        for db in (single, cluster):
            db.execute(
                "create authorization view AuditGrades as "
                "select * from Grades"
            )
            db.grant("AuditGrades", "auditor")
        cluster.sync_replicas()
        gw = EnforcementGateway(cluster, workers=1)
        try:
            ok = gw.execute(
                QueryRequest(
                    user="auditor",
                    sql="select * from AuditGrades",
                    mode="non-truman",
                )
            )
            assert ok.ok
            # pause shipping so the replica is provably behind, then
            # revoke: the epoch gate must force primary-side rejection
            for shipper in cluster.durability.shippers:
                shipper.paused = True
            cluster.grants.revoke("AuditGrades", "auditor")
            denied = gw.execute(
                QueryRequest(
                    user="auditor",
                    sql="select * from AuditGrades",
                    mode="non-truman",
                )
            )
            assert denied.status.name == "REJECTED"
            assert denied.replica is None  # not served by the stale replica
        finally:
            for shipper in cluster.durability.shippers:
                shipper.paused = False
            gw.shutdown()
