"""Integration tests for the Database facade: DDL, DML, constraints,
grants, and update authorization (§4.4)."""

import pytest

from repro.db import Database
from repro.errors import (
    GrantError,
    IntegrityError,
    QueryRejectedError,
    UnknownTableError,
    UpdateRejectedError,
)

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


@pytest.fixture
def db():
    database = Database()
    database.execute_script(UNIVERSITY_SCHEMA)
    database.execute_script(UNIVERSITY_DATA)
    return database


class TestDDL:
    def test_create_and_drop_table(self):
        db = Database()
        db.execute("create table T(a int primary key)")
        db.execute("insert into T values (1)")
        db.execute("drop table T")
        with pytest.raises(UnknownTableError):
            db.execute("select * from T")

    def test_create_view_and_query(self, db):
        db.execute("create view GoodGrades as select * from Grades where grade >= 3.0")
        result = db.execute("select count(*) from GoodGrades")
        assert result.scalar() == 3

    def test_view_with_column_renames(self, db):
        db.execute(
            "create view Renamed (sid, cid) as "
            "select student_id, course_id from Registered"
        )
        result = db.execute("select sid from Renamed where cid = 'CS101'")
        assert sorted(result.column("sid")) == ["11", "12"]

    def test_grant_unknown_view(self, db):
        with pytest.raises(GrantError):
            db.grant("Nope", to_user="alice")


class TestConstraints:
    def test_pk_uniqueness(self, db):
        with pytest.raises(IntegrityError):
            db.execute("insert into Students values ('11','Dup','FullTime')")

    def test_fk_on_insert(self, db):
        with pytest.raises(IntegrityError):
            db.execute("insert into Registered values ('999','CS101')")

    def test_fk_restrict_on_delete(self, db):
        with pytest.raises(IntegrityError):
            db.execute("delete from Students where student_id = '11'")

    def test_delete_unreferenced_ok(self, db):
        db.execute("insert into Students values ('99','Zoe','PartTime')")
        assert db.execute("delete from Students where student_id = '99'") == 1

    def test_not_null(self, db):
        with pytest.raises(IntegrityError):
            db.execute("insert into Students values ('98', null, 'FullTime')")

    def test_check_constraint(self):
        db = Database()
        db.execute("create table T(a int primary key, check (a > 0))")
        db.execute("insert into T values (1)")
        with pytest.raises(IntegrityError):
            db.execute("insert into T values (-1)")

    def test_check_with_null_is_not_violation(self):
        db = Database()
        db.execute("create table T(a int primary key, b int, check (b > 0))")
        db.execute("insert into T values (1, null)")  # UNKNOWN passes

    def test_fk_checked_on_update(self, db):
        with pytest.raises(IntegrityError):
            db.execute(
                "update Registered set course_id = 'NOPE' where student_id = '11'"
            )


class TestDML:
    def test_insert_select(self, db):
        db.execute("create table Archive(student_id varchar(10), course_id varchar(10))")
        count = db.execute(
            "insert into Archive select student_id, course_id from Registered"
        )
        assert count == 5

    def test_insert_partial_columns(self, db):
        db.execute("insert into Students (student_id, name) values ('77','Pat')")
        row = db.execute(
            "select type from Students where student_id = '77'"
        ).scalar()
        assert row is None

    def test_update_with_expression(self, db):
        db.execute("update Grades set grade = grade + 0.5 where student_id = '12'")
        assert db.execute(
            "select grade from Grades where student_id = '12'"
        ).scalar() == 3.0

    def test_update_count(self, db):
        assert db.execute("update Students set type = 'X'") == 4

    def test_delete_with_predicate(self, db):
        assert db.execute("delete from FeesPaid where student_id = '11'") == 1
        assert db.execute("select count(*) from FeesPaid").scalar() == 1


class TestUpdateAuthorization:
    """Paper §4.4: AUTHORIZE predicates on DML."""

    def setup_policies(self, db):
        db.execute(
            "authorize insert on Registered "
            "where Registered.student_id = $user_id"
        )
        db.execute(
            "authorize update on Students(name) "
            "where old(Students.student_id) = $user_id"
        )
        db.execute(
            "authorize delete on Registered "
            "where Registered.student_id = $user_id"
        )

    def test_insert_own_registration(self, db):
        self.setup_policies(db)
        conn = db.connect(user_id="11", mode="non-truman")
        assert conn.execute("insert into Registered values ('11','CS103')") == 1

    def test_insert_other_rejected(self, db):
        self.setup_policies(db)
        conn = db.connect(user_id="11", mode="non-truman")
        with pytest.raises(UpdateRejectedError):
            conn.execute("insert into Registered values ('12','CS103')")

    def test_update_own_name(self, db):
        self.setup_policies(db)
        conn = db.connect(user_id="11", mode="non-truman")
        assert conn.execute(
            "update Students set name = 'Alicia' where student_id = '11'"
        ) == 1

    def test_update_uncovered_column_rejected(self, db):
        self.setup_policies(db)
        conn = db.connect(user_id="11", mode="non-truman")
        with pytest.raises(UpdateRejectedError):
            conn.execute("update Students set type = 'X' where student_id = '11'")

    def test_update_other_row_rejected(self, db):
        self.setup_policies(db)
        conn = db.connect(user_id="11", mode="non-truman")
        with pytest.raises(UpdateRejectedError):
            conn.execute("update Students set name = 'X' where student_id = '12'")

    def test_delete_own_registration(self, db):
        self.setup_policies(db)
        conn = db.connect(user_id="11", mode="non-truman")
        assert conn.execute(
            "delete from Registered where student_id = '11' and course_id = 'CS102'"
        ) == 1

    def test_no_policy_means_deny(self, db):
        conn = db.connect(user_id="11", mode="non-truman")
        with pytest.raises(UpdateRejectedError):
            conn.execute("insert into FeesPaid values ('12')")

    def test_open_mode_skips_policies(self, db):
        self.setup_policies(db)
        # open mode: no enforcement
        assert db.execute("insert into Registered values ('12','CS103')") == 1

    def test_statement_rejected_midway_leaves_prior_rows(self, db):
        """Checks are per-tuple: an UPDATE touching both an authorized
        and an unauthorized row fails at the unauthorized one."""
        self.setup_policies(db)
        conn = db.connect(user_id="11", mode="non-truman")
        with pytest.raises(UpdateRejectedError):
            conn.execute("update Students set name = 'X'")


class TestGrantsAndSessions:
    def test_grants_scope_view_visibility(self, db):
        db.execute(
            "create authorization view MyGrades as "
            "select * from Grades where student_id = $user_id"
        )
        db.grant("MyGrades", to_user="11")
        granted = db.connect(user_id="11", mode="non-truman")
        ungranted = db.connect(user_id="12", mode="non-truman")
        sql = "select * from MyGrades"
        assert len(granted.query(sql)) == 2
        with pytest.raises(QueryRejectedError):
            ungranted.query(sql)

    def test_available_views_reflect_grants(self, db):
        db.execute(
            "create authorization view MyGrades as "
            "select * from Grades where student_id = $user_id"
        )
        db.grant("MyGrades", to_user="11")
        assert [
            v.name for v in db.available_views(db.connect(user_id="11").session)
        ] == ["MyGrades"]
        assert db.available_views(db.connect(user_id="12").session) == []

    def test_grant_via_sql(self, db):
        db.execute(
            "create authorization view MyGrades as "
            "select * from Grades where student_id = $user_id"
        )
        db.execute("grant select on MyGrades to u11")
        assert db.grants.is_granted("MyGrades", "u11")

    def test_session_extra_params(self, db):
        db.execute(
            "create authorization view RoleView as "
            "select * from Students where type = $role"
        )
        db.grant_public("RoleView")
        conn = db.connect(user_id="x", role="FullTime")
        assert len(conn.query("select * from RoleView")) == 3
