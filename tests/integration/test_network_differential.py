"""Differential test: the wire protocol against the in-process gateway.

For the paper's worked examples (Sections 1–6 of the reproduction's
test suite), a query submitted over TCP must come back *byte-identical*
to the same request executed through ``gateway.execute`` in-process:
same status, same rows in the same order, same decision (validity,
reason, rules fired, views used), same rejection message.  The network
layer is a transport — it must never change an answer.
"""

import pytest

from repro.db import Database
from repro.errors import QueryRejectedError, ReproError
from repro.net import NetworkService, ReproClient
from repro.net.protocol import decision_to_wire
from repro.service import EnforcementGateway, QueryRequest, RequestStatus

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


def base_db() -> Database:
    db = Database()
    db.execute_script(UNIVERSITY_SCHEMA)
    db.execute_script(UNIVERSITY_DATA)
    return db


def mygrades_db() -> Database:
    """Section 1's MyGrades policy."""
    db = base_db()
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant_public("MyGrades")
    return db


def avggrades_db() -> Database:
    """Example 4.1: MyGrades + the AvgGrades aggregate view."""
    db = mygrades_db()
    db.execute(
        "create authorization view AvgGrades as "
        "select course_id, avg(grade) as avg_grade "
        "from Grades group by course_id"
    )
    db.grant_public("AvgGrades")
    return db


def truman_db() -> Database:
    """Section 3's Truman policy: Grades silently becomes MyGrades."""
    db = mygrades_db()
    db.set_truman_view("Grades", "MyGrades")
    return db


def costudent_db() -> Database:
    """Examples 4.4/5.5: CoStudentGrades + MyRegistrations."""
    db = base_db()
    db.execute_script(
        """
        create authorization view CoStudentGrades as
            select Grades.student_id, Grades.course_id, Grades.grade
            from Grades, Registered
            where Registered.student_id = $user_id
              and Grades.course_id = Registered.course_id;
        create authorization view MyRegistrations as
            select * from Registered where student_id = $user_id;
        """
    )
    db.grant_public("CoStudentGrades")
    db.grant_public("MyRegistrations")
    return db


def singlegrade_db() -> Database:
    """Section 6: the $$-parameterized SingleGrade access pattern."""
    db = base_db()
    db.execute_script(
        """
        create authorization view SingleGrade as
            select * from Grades where student_id = $$1;
        create authorization view AllStudents as
            select * from Students;
        """
    )
    db.grant_public("SingleGrade")
    db.grant_public("AllStudents")
    return db


#: (case id, db builder, user, mode, sql, expected terminal status)
CASES = [
    (
        "s1-own-rows-valid",
        mygrades_db, "11", "non-truman",
        "select * from Grades where student_id = '11'",
        RequestStatus.OK,
    ),
    (
        "s52-projection-valid",
        mygrades_db, "11", "non-truman",
        "select grade from Grades where student_id = '11'",
        RequestStatus.OK,
    ),
    (
        "s52-selection-projection-valid",
        mygrades_db, "11", "non-truman",
        "select course_id from Grades "
        "where student_id = '11' and grade >= 3.9",
        RequestStatus.OK,
    ),
    (
        "s1-other-student-rejected",
        mygrades_db, "11", "non-truman",
        "select * from Grades where student_id = '12'",
        RequestStatus.REJECTED,
    ),
    (
        "s1-all-grades-rejected",
        mygrades_db, "11", "non-truman",
        "select * from Grades",
        RequestStatus.REJECTED,
    ),
    (
        "e41-own-average-valid",
        avggrades_db, "11", "non-truman",
        "select avg(grade) from Grades where student_id = '11'",
        RequestStatus.OK,
    ),
    (
        "e41-course-average-valid",
        avggrades_db, "11", "non-truman",
        "select avg(grade) from Grades where course_id = 'CS101'",
        RequestStatus.OK,
    ),
    (
        "e41-exact-grouping-valid",
        avggrades_db, "11", "non-truman",
        "select course_id, avg(grade) from Grades group by course_id",
        RequestStatus.OK,
    ),
    (
        "e44-registered-course-conditional",
        costudent_db, "11", "non-truman",
        "select * from Grades where course_id = 'CS101'",
        RequestStatus.OK,
    ),
    (
        "e44-unregistered-course-rejected",
        costudent_db, "11", "non-truman",
        "select * from Grades where course_id = 'CS103'",
        RequestStatus.REJECTED,
    ),
    (
        "s6-pinned-student-valid",
        singlegrade_db, "secretary", "non-truman",
        "select grade from Grades where student_id = '12'",
        RequestStatus.OK,
    ),
    (
        "s6-unbounded-scan-rejected",
        singlegrade_db, "secretary", "non-truman",
        "select grade from Grades",
        RequestStatus.REJECTED,
    ),
    (
        "truman-own-grades-filtered",
        truman_db, "11", "truman",
        "select * from Grades",
        RequestStatus.OK,
    ),
    (
        "truman-other-student-empty",
        truman_db, "12", "truman",
        "select grade from Grades where student_id = '11'",
        RequestStatus.OK,
    ),
    (
        "open-mode-unrestricted",
        mygrades_db, "11", "open",
        "select count(*) from Grades",
        RequestStatus.OK,
    ),
]


def run_differential(builder, user, mode, sql, expected_status):
    # two gateways over *identical* databases (deterministic builders),
    # both cold: one answers in-process, one over the wire.  Sharing a
    # gateway would let the second path hit the decision cache, whose
    # entries legitimately drop the rule trace — that is cache
    # behaviour, not transport behaviour, and is tested separately.
    reference_gateway = EnforcementGateway(builder(), workers=1, name="ref")
    wire_gateway = EnforcementGateway(builder(), workers=1, name="wire")
    network = NetworkService(wire_gateway)
    host, port = network.start()
    try:
        reference = reference_gateway.execute(
            QueryRequest(user=user, sql=sql, mode=mode)
        )
        assert reference.status is expected_status, (
            f"in-process baseline disagrees with the test's expectation: "
            f"{reference.status} (error: {reference.error})"
        )
        with ReproClient(host, port, user=user, mode=mode) as client:
            if expected_status is RequestStatus.OK:
                wire = client.query(sql)
                compare_ok(reference, wire)
            else:
                with pytest.raises(ReproError) as info:
                    client.query(sql)
                compare_rejection(reference, info.value)
    finally:
        network.stop()
        wire_gateway.shutdown(drain=False)
        reference_gateway.shutdown(drain=False)


def compare_ok(reference, wire) -> None:
    assert reference.result is not None
    # byte-identical rows: same values, same types, same order
    assert list(map(repr, wire.rows)) == list(map(repr, reference.result.rows))
    assert wire.columns == tuple(reference.result.columns)
    # the decision travels unchanged (modulo cache provenance)
    expected_decision = decision_to_wire(reference.decision)
    if expected_decision is None:
        assert wire.decision is None
    else:
        for key in ("validity", "reason", "rules", "views_used"):
            assert wire.decision[key] == expected_decision[key], (
                f"decision field {key!r} diverges over the wire"
            )


def compare_rejection(reference, exc) -> None:
    assert isinstance(exc, QueryRejectedError)
    assert str(exc) == reference.error, "rejection message diverges"
    expected_decision = decision_to_wire(reference.decision)
    if expected_decision is not None:
        assert exc.decision["validity"] == expected_decision["validity"]
        assert exc.decision["reason"] == expected_decision["reason"]


@pytest.mark.parametrize(
    "builder,user,mode,sql,expected_status",
    [case[1:] for case in CASES],
    ids=[case[0] for case in CASES],
)
def test_wire_matches_in_process(builder, user, mode, sql, expected_status):
    run_differential(builder, user, mode, sql, expected_status)


class TestTrumanRowsFiltered:
    """Sanity on the truman cases: the wire answer is the *filtered*
    table, exactly as in-process — not the unrestricted one."""

    def test_truman_filters_to_own_rows_over_wire(self):
        db = mygrades_db()
        db.set_truman_view("Grades", "MyGrades")
        gateway = EnforcementGateway(db, workers=1)
        network = NetworkService(gateway)
        host, port = network.start()
        try:
            with ReproClient(host, port, user="11", mode="truman") as client:
                result = client.query("select * from Grades")
            assert sorted(result.rows) == [
                ("11", "CS101", 3.5), ("11", "CS102", 4.0),
            ]
        finally:
            network.stop()
            gateway.shutdown(drain=False)


class TestDecisionCacheTransparency:
    """A cached decision must produce the same wire answer as a fresh
    one — caching is invisible to the client beyond the flag."""

    def test_cached_and_fresh_answers_identical(self):
        db = mygrades_db()
        gateway = EnforcementGateway(db, workers=1)
        network = NetworkService(gateway)
        host, port = network.start()
        sql = "select * from Grades where student_id = '11'"
        try:
            with ReproClient(host, port, user="11") as client:
                fresh = client.query(sql)
                cached = client.query(sql)
            assert cached.cache_hit and not fresh.cache_hit
            assert cached.rows == fresh.rows
            assert cached.columns == fresh.columns
            # cache entries keep (validity, reason); the rule trace is
            # recomputation detail and is legitimately absent on a hit
            assert cached.decision["validity"] == fresh.decision["validity"]
            assert cached.decision["from_cache"] is True
        finally:
            network.stop()
            gateway.shutdown(drain=False)
