"""Cluster chaos: revoke storms, replication faults, degraded failover.

The guarantees under fire:

* **0 stale-policy answers** — a revoke-during-read storm never lets a
  revoked user read through a replica (or the primary), no matter how
  shipping is delayed;
* replication commit failures trip the gateway's circuit breaker into
  degraded read-only mode — the cluster's failover posture: writes are
  refused *before* any shard mutates, reads keep serving;
* ship faults (pauses, injected failures) delay replicas but never
  corrupt them: re-shipping converges to the primary's exact state.
"""

import threading
import time

import pytest

from repro.authviews.session import SessionContext
from repro.cluster import ClusterCoordinator
from repro.errors import DurabilityError
from repro.service import EnforcementGateway, QueryRequest
from repro.service.request import RequestStatus


def cluster_db(replicas=2, ship_batch=1):
    db = ClusterCoordinator(shards=4, replicas=replicas, ship_batch=ship_batch)
    db.execute(
        "create table Grades (student_id varchar(10), course varchar(10), "
        "grade float)"
    )
    for i in range(20):
        db.execute(
            f"insert into Grades values ('{10 + i}', 'CS10{i % 4}', "
            f"{round(1.0 + (i % 30) * 0.1, 1)})"
        )
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.sync_replicas()
    return db


class TestRevokeStorm:
    def test_revoke_during_read_storm_zero_stale(self):
        """Grant/revoke churn racing reads: every OK answer for the
        churned user must have been legitimate at serving time."""
        db = cluster_db(replicas=2)
        db.grant("MyGrades", "11")
        db.sync_replicas()
        gateway = EnforcementGateway(db, workers=4)
        state_lock = threading.Lock()
        #: (flip counter, currently granted) — every grant/revoke flips
        state = [0, True]
        stale = []
        stop = threading.Event()

        def snapshot():
            with state_lock:
                return state[0], state[1]

        def churn():
            while not stop.is_set():
                with state_lock:
                    db.grants.revoke("MyGrades", "11")
                    state[0] += 1
                    state[1] = False
                time.sleep(0.0005)
                with state_lock:
                    db.grant("MyGrades", "11")
                    state[0] += 1
                    state[1] = True
                time.sleep(0.0005)

        def pause_wiggle():
            # stall shipping at random to widen staleness windows
            while not stop.is_set():
                for shipper in db.durability.shippers:
                    shipper.paused = not shipper.paused
                time.sleep(0.002)

        churner = threading.Thread(target=churn, daemon=True)
        wiggler = threading.Thread(target=pause_wiggle, daemon=True)
        try:
            churner.start()
            wiggler.start()
            for i in range(200):
                flips_before, granted_before = snapshot()
                response = gateway.execute(
                    QueryRequest(
                        user="11",
                        sql="select grade from MyGrades",
                        mode="non-truman",
                        tag=f"storm-{i}",
                    )
                )
                flips_after, _ = snapshot()
                # sound staleness witness: the user was revoked for the
                # *entire* request (revoked before it started, and no
                # grant/revoke flip happened until after it finished) —
                # an OK can then only come from stale policy state
                if (
                    response.ok
                    and not granted_before
                    and flips_after == flips_before
                ):
                    stale.append((i, response.replica))
        finally:
            stop.set()
            churner.join(timeout=10)
            wiggler.join(timeout=10)
            for shipper in db.durability.shippers:
                shipper.paused = False
            gateway.shutdown(drain=False)
        assert stale == []

    def test_revoked_user_rejected_while_replicas_stale(self):
        db = cluster_db(replicas=2)
        db.grant("MyGrades", "11")
        db.sync_replicas()
        gateway = EnforcementGateway(db, workers=2)
        try:
            for shipper in db.durability.shippers:
                shipper.paused = True
            db.grants.revoke("MyGrades", "11")
            for i in range(20):
                response = gateway.execute(
                    QueryRequest(
                        user="11",
                        sql="select grade from MyGrades",
                        mode="non-truman",
                    )
                )
                assert response.status is RequestStatus.REJECTED
                assert response.replica is None
        finally:
            for shipper in db.durability.shippers:
                shipper.paused = False
            gateway.shutdown(drain=False)


class TestReplicationFailover:
    def test_commit_faults_trip_breaker_reads_keep_serving(self):
        db = cluster_db(replicas=1)
        db.grant("MyGrades", "11")
        db.sync_replicas()
        gateway = EnforcementGateway(
            db, workers=2, breaker_threshold=2, breaker_cooldown=30.0
        )
        try:
            db.durability.fail_next_commits = 2
            for i in range(2):
                response = gateway.execute(
                    QueryRequest(
                        user=None,
                        sql=f"insert into Grades values ('9{i}', 'CS1', 1.0)",
                        mode="open",
                    )
                )
                assert response.status is RequestStatus.DEGRADED
            assert gateway.breaker.state == "open"
            # degraded read-only mode: writes refused up front...
            refused = gateway.execute(
                QueryRequest(
                    user=None,
                    sql="insert into Grades values ('99', 'CS1', 1.0)",
                    mode="open",
                )
            )
            assert refused.status is RequestStatus.DEGRADED
            # ...reads (including replica-served) keep answering
            read = gateway.execute(
                QueryRequest(
                    user="11", sql="select grade from MyGrades",
                    mode="non-truman",
                )
            )
            assert read.ok
        finally:
            gateway.shutdown(drain=False)

    def test_ship_fault_surfaces_as_durability_error_then_converges(self):
        db = cluster_db(replicas=1, ship_batch=1)
        shipper = db.durability.shippers[0]
        shipper.paused = True
        db.execute("insert into Grades values ('77', 'CS9', 4.0)")
        shipper.paused = False
        shipper.fail_next_ships = 1
        with pytest.raises(DurabilityError):
            db.sync_replicas()
        db.sync_replicas()
        replica = db.replicas[0]
        assert replica.applied_lsn == db.durability.log.last_lsn
        primary = db.execute_query(
            "select * from Grades", session=SessionContext(), mode="open"
        )
        shipped = replica.database.execute_query(
            "select * from Grades", session=SessionContext(), mode="open"
        )
        assert primary.rows == shipped.rows

    def test_one_dead_replica_does_not_block_the_other(self):
        db = cluster_db(replicas=2, ship_batch=1)
        dead, live = db.durability.shippers
        dead.paused = True  # silent forever
        db.execute("insert into Grades values ('88', 'CS9', 3.0)")
        assert live.lag() == 0
        assert dead.lag() > 0
        # routing only offers the caught-up replica
        routed = {db.route_read().name for _ in range(10)}
        assert routed == {live.replica.name}

    def test_bounded_staleness_under_write_load(self):
        db = cluster_db(replicas=1, ship_batch=4)
        for i in range(25):
            db.execute(
                f"insert into Grades values ('s{i}', 'CS0', 2.0)"
            )
            # eager batch shipping keeps lag below the batch size
            assert db.replica_lag() < 4 + 1
