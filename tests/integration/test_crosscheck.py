"""Cross-check the two validity-checker backends.

The repository deliberately implements the basic inference rules twice:

* the block matcher (:mod:`repro.nontruman.matching`) — the full engine;
* the AND-OR DAG marking of §5.6.2 (:mod:`repro.optimizer.marking`).

On the fragment the DAG backend covers (exact/subsumed SPJ rewritings
with the basic rules), the two must agree; the DAG backend must never
accept what the block matcher rejects (it implements a *subset* of the
rules).
"""

import pytest

from repro.db import Database
from repro.sql import parse_query
from repro.algebra.translate import Translator
from repro.authviews.views import AuthorizationView
from repro.nontruman.checker import ValidityChecker
from repro.optimizer import VolcanoOptimizer

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


@pytest.fixture
def db():
    database = Database()
    database.execute_script(UNIVERSITY_SCHEMA)
    database.execute_script(UNIVERSITY_DATA)
    database.execute_script(
        """
        create authorization view MyGrades as
            select * from Grades where student_id = $user_id;
        create authorization view MyRegistrations as
            select * from Registered where student_id = $user_id;
        create authorization view AllCourses as
            select * from Courses;
        """
    )
    for name in ("MyGrades", "MyRegistrations", "AllCourses"):
        database.grant_public(name)
    return database


def dag_check(db, session, sql) -> bool:
    query_plan = db.plan_query(parse_query(sql), session)
    view_plans = []
    for view_def in db.catalog.views():
        if not view_def.authorization:
            continue
        instantiated = AuthorizationView.from_def(view_def).instantiate(session)
        view_plans.append(Translator(db.catalog).translate(instantiated.query))
    optimizer = VolcanoOptimizer(lambda t: db.table(t).row_count)
    return optimizer.check_validity(query_plan, view_plans).valid


def block_check(db, session, sql) -> bool:
    return ValidityChecker(db).check(parse_query(sql), session).valid


#: (sql, expected_by_block_matcher, expected_by_dag)
CASES = [
    # exact view matches: both backends accept
    ("select * from Grades where student_id = '11'", True, True),
    ("select * from Courses", True, True),
    # projections/selections over a view: both accept
    ("select grade from Grades where student_id = '11'", True, True),
    ("select course_id from Grades where student_id = '11' and grade > 3", True, True),
    # joins of two covered tables: both accept
    (
        "select g.grade, c.name from Grades g, Courses c "
        "where g.student_id = '11' and g.course_id = c.course_id",
        True,
        True,
    ),
    # clearly unauthorized: both reject
    ("select * from Grades", False, False),
    ("select * from Grades where student_id = '12'", False, False),
    ("select * from Students", False, False),
    # aggregation over a valid input: both accept (rule U2 — the
    # aggregate operation node's child equivalence node is valid)
    ("select avg(grade) from Grades where student_id = '11'", True, True),
]


@pytest.mark.parametrize("sql,block_expected,dag_expected", CASES)
def test_backends_agree(db, sql, block_expected, dag_expected):
    session = db.connect(user_id="11").session
    assert block_check(db, session, sql) is block_expected, f"block: {sql}"
    assert dag_check(db, session, sql) is dag_expected, f"dag: {sql}"


def test_dag_never_accepts_what_block_rejects(db):
    """Safety direction of the cross-check, over a query battery."""
    session = db.connect(user_id="11").session
    battery = [sql for sql, _, _ in CASES] + [
        "select student_id from Grades where grade > 3.9",
        "select name from Students where student_id = '11'",
        "select course_id from Registered where student_id = '11'",
        "select g.grade from Grades g where g.student_id = '11' and g.course_id = 'CS101'",
    ]
    for sql in battery:
        if dag_check(db, session, sql):
            assert block_check(db, session, sql), (
                f"DAG accepted but block matcher rejected: {sql}"
            )
