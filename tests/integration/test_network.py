"""Integration tests for the network front end (repro.net).

A live asyncio server over a real gateway, exercised through both
client libraries: handshake/auth, query round-trips, typed errors
(timeout, cancel, overload, access denied), chunked result streaming
with the max-frame guard, network metrics, and the
cancellation-on-disconnect contract.
"""

import asyncio
import socket
import time

import pytest

from repro.db import Database
from repro.errors import (
    ConnectionDropped,
    QueryCancelled,
    QueryRejectedError,
    QueryTimeout,
    ReproError,
    ServiceOverloaded,
)
from repro.net import AsyncReproClient, NetworkService, ReproClient
from repro.net.protocol import HEADER, FrameDecoder, encode_frame
from repro.service import ChaosInjector, EnforcementGateway

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA

BIG_JOIN_SQL = (
    "select count(*) from L, R where a < b"
)


def university_db() -> Database:
    db = Database()
    db.execute_script(UNIVERSITY_SCHEMA)
    db.execute_script(UNIVERSITY_DATA)
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant_public("MyGrades")
    return db


def join_db(rows: int = 700) -> Database:
    db = Database()
    db.execute("create table L(a int primary key)")
    db.execute("create table R(b int primary key)")
    values = ", ".join(f"({i})" for i in range(rows))
    db.execute(f"insert into L values {values}")
    db.execute(f"insert into R values {values}")
    return db


@pytest.fixture
def service():
    """(gateway, host, port) over the university database."""
    db = university_db()
    gateway = EnforcementGateway(db, workers=2, name="net-test")
    network = NetworkService(gateway)
    host, port = network.start()
    yield gateway, host, port
    network.stop()
    gateway.shutdown(drain=False)


class RawConn:
    """A bare socket speaking frames — for pre-handshake protocol tests."""

    def __init__(self, host, port):
        self.sock = socket.create_connection((host, port), 5.0)
        self.decoder = FrameDecoder()
        self.inbox = []

    def send(self, message: dict) -> None:
        self.sock.sendall(encode_frame(message))

    def send_raw(self, data: bytes) -> None:
        self.sock.sendall(data)

    def recv(self, timeout: float = 10.0) -> dict:
        self.sock.settimeout(timeout)
        while not self.inbox:
            data = self.sock.recv(65536)
            if not data:
                raise ConnectionDropped("server closed")
            self.inbox.extend(self.decoder.feed(data))
        return self.inbox.pop(0)

    def close(self) -> None:
        self.sock.close()


class TestHandshake:
    def test_welcome_frame(self, service):
        _, host, port = service
        with ReproClient(host, port, user="11", mode="truman") as client:
            info = client.server_info
            assert info["protocol"] == 1
            assert info["server"] == "repro-net"
            assert info["user"] == "11"
            assert info["mode"] == "truman"
            assert isinstance(info["session"], int)

    def test_sessions_get_distinct_ids(self, service):
        _, host, port = service
        with ReproClient(host, port) as a, ReproClient(host, port) as b:
            assert a.server_info["session"] != b.server_info["session"]

    def test_query_before_hello_denied(self, service):
        _, host, port = service
        conn = RawConn(host, port)
        try:
            conn.send({"type": "query", "id": 1, "sql": "select 1"})
            message = conn.recv()
            assert message["type"] == "error"
            assert message["code"] == "auth"
            assert message["id"] == 1
        finally:
            conn.close()

    def test_bad_mode_in_hello(self, service):
        _, host, port = service
        conn = RawConn(host, port)
        try:
            conn.send({"type": "hello", "user": "11", "mode": "bogus"})
            message = conn.recv()
            assert message["type"] == "error"
            assert message["code"] == "protocol"
            assert "bogus" in message["message"]
        finally:
            conn.close()

    def test_unknown_frame_type(self, service):
        _, host, port = service
        conn = RawConn(host, port)
        try:
            conn.send({"type": "frobnicate", "id": 9})
            message = conn.recv()
            assert message["code"] == "protocol"
        finally:
            conn.close()

    def test_rehello_switches_user(self, service):
        """The session layer maps the connection to the gateway user:
        after re-authenticating as another student, the same connection
        is judged under the new identity."""
        _, host, port = service
        with ReproClient(host, port, user="11") as client:
            mine = client.query("select * from Grades where student_id = '11'")
            assert len(mine.rows) == 2
            client.hello(user="12")
            with pytest.raises(QueryRejectedError):
                client.query("select * from Grades where student_id = '11'")
            theirs = client.query("select * from Grades where student_id = '12'")
            assert len(theirs.rows) == 1


class TestQueries:
    def test_rows_match_in_process(self, service):
        gateway, host, port = service
        expected = gateway.db.execute_query(
            "select * from Grades where student_id = '11'",
            session=gateway.db.connect(user_id="11", mode="non-truman").session,
            mode="non-truman",
        )
        with ReproClient(host, port, user="11") as client:
            result = client.query("select * from Grades where student_id = '11'")
        assert result.columns == expected.columns
        assert result.rows == expected.rows  # types survive JSON transit

    def test_decision_travels(self, service):
        _, host, port = service
        with ReproClient(host, port, user="11") as client:
            result = client.query("select grade from Grades where student_id = '11'")
        assert result.decision["validity"] == "unconditional"
        assert result.decision["rules"]
        assert result.decision["views_used"] == ["MyGrades"]

    def test_access_denied_is_typed(self, service):
        _, host, port = service
        with ReproClient(host, port, user="11") as client:
            with pytest.raises(QueryRejectedError) as info:
                client.query("select * from Grades")
        assert info.value.decision["validity"] == "invalid"

    def test_per_request_mode_override(self, service):
        _, host, port = service
        with ReproClient(host, port, user="11") as client:
            # non-truman session, but this one request runs open
            result = client.query("select count(*) from Grades", mode="open")
            assert result.rows == [(4,)]

    def test_dml_over_the_wire(self, service):
        _, host, port = service
        with ReproClient(host, port, mode="open") as client:
            outcome = client.query(
                "insert into Students values ('99','Zoe','FullTime')"
            )
            assert outcome.rowcount == 1
            check = client.query(
                "select name from Students where student_id = '99'"
            )
            assert check.rows == [("Zoe",)]

    def test_library_error_is_typed(self, service):
        _, host, port = service
        with ReproClient(host, port, mode="open") as client:
            with pytest.raises(ReproError):
                client.query("select * from NoSuchTable")
            # the connection survives an error frame
            assert client.query("select count(*) from Grades").rows == [(4,)]

    def test_engine_selection(self, service):
        _, host, port = service
        with ReproClient(host, port, mode="open") as client:
            row = client.query("select count(*) from Grades", engine="row")
            vec = client.query("select count(*) from Grades", engine="vectorized")
        assert row.rows == vec.rows == [(4,)]

    def test_cache_hit_flag(self, service):
        _, host, port = service
        with ReproClient(host, port, user="11") as client:
            first = client.query("select * from Grades where student_id = '11'")
            second = client.query("select * from Grades where student_id = '11'")
        assert not first.cache_hit
        assert second.cache_hit


class TestDeadlinesAndCancellation:
    def test_wire_deadline_times_out(self):
        db = join_db()
        gateway = EnforcementGateway(db, workers=1)
        with NetworkService(gateway) as network:
            host, port = network.address
            with ReproClient(host, port, mode="open") as client:
                start = time.perf_counter()
                with pytest.raises(QueryTimeout):
                    client.query(BIG_JOIN_SQL, deadline=0.05)
                elapsed = time.perf_counter() - start
                # the deadline propagated into the QueryContext: the
                # scan died cooperatively, far before it could finish
                assert elapsed < 10.0
        gateway.shutdown(drain=False)

    def test_cancel_frame_kills_in_flight_query(self):
        db = join_db()
        gateway = EnforcementGateway(db, workers=1)
        network = NetworkService(gateway)
        host, port = network.start()

        async def scenario():
            client = await AsyncReproClient.connect(host, port, mode="open")
            try:
                request_id, future = await client.submit(BIG_JOIN_SQL)
                await asyncio.sleep(0.2)  # let it get mid-scan
                await client.cancel(request_id)
                with pytest.raises(QueryCancelled):
                    await asyncio.wait_for(future, timeout=30.0)
            finally:
                await client.close()

        try:
            asyncio.run(scenario())
            assert (
                gateway.metrics.counter("requests_cancelled_inflight").value == 1
            )
        finally:
            network.stop()
            gateway.shutdown(drain=False)

    def test_overload_shed_with_typed_error(self):
        """A full admission queue answers 'overloaded' frames while the
        connection stays usable — backpressure, not collapse."""
        db = university_db()
        chaos = ChaosInjector(seed=1)
        chaos.inject("gateway.before_execute", "delay", delay_s=0.15)
        gateway = EnforcementGateway(
            db, workers=1, queue_size=2, chaos=chaos, name="tiny"
        )
        network = NetworkService(gateway)
        host, port = network.start()

        async def scenario():
            client = await AsyncReproClient.connect(host, port, mode="open")
            try:
                futures = [
                    (await client.submit("select count(*) from Grades"))[1]
                    for _ in range(12)
                ]
                outcomes = await asyncio.gather(
                    *futures, return_exceptions=True
                )
            finally:
                await client.close()
            return outcomes

        try:
            outcomes = asyncio.run(scenario())
            shed = [o for o in outcomes if isinstance(o, ServiceOverloaded)]
            served = [o for o in outcomes if not isinstance(o, Exception)]
            assert shed, "queue of 2 with 12 pipelined queries must shed"
            assert served, "admitted queries must still be answered"
            assert len(shed) + len(served) == 12
        finally:
            network.stop()
            gateway.shutdown(drain=False)


class TestStreaming:
    def test_100k_row_select_chunks_into_frames(self):
        """Regression: large answers must stream as bounded frames, not
        one unbounded payload."""
        db = Database()
        db.execute("create table Big(v int primary key)")
        table = db.table("Big")
        for i in range(100_000):
            table.insert((i,))
        gateway = EnforcementGateway(db, workers=1)
        network = NetworkService(gateway, max_frame_size=32 * 1024)
        host, port = network.start()
        try:
            with ReproClient(
                host, port, mode="open", max_frame_size=32 * 1024
            ) as client:
                result = client.query("select v from Big")
            assert len(result.rows) == 100_000
            assert result.rows[0] == (0,)
            assert result.rows[-1] == (99_999,)
            assert sorted(result.rows) == [(i,) for i in range(100_000)]
            # the guard actually chunked: far more than one frame
            assert result.row_frames > 10
        finally:
            network.stop()
            gateway.shutdown(drain=False)

    def test_incoming_oversized_frame_closes_connection(self):
        db = university_db()
        gateway = EnforcementGateway(db, workers=1)
        network = NetworkService(gateway, max_frame_size=4096)
        host, port = network.start()
        try:
            conn = RawConn(host, port)
            try:
                # announce a frame far beyond the server's limit; the
                # server must refuse before buffering any payload
                conn.send_raw(HEADER.pack(1 << 28))
                message = conn.recv()
                assert message["type"] == "error"
                assert message["code"] == "protocol"
                with pytest.raises(ConnectionDropped):
                    conn.recv()
            finally:
                conn.close()
            assert gateway.metrics.counter("net_protocol_errors").value == 1
        finally:
            network.stop()
            gateway.shutdown(drain=False)


class TestNetworkMetrics:
    def test_counters_track_traffic(self, service):
        gateway, host, port = service
        with ReproClient(host, port, user="11") as client:
            client.query("select * from Grades where student_id = '11'")
            wire_stats = client.stats()
        stats = gateway.stats()
        for key in (
            "connections_open",
            "sessions_authenticated",
            "frames_sent",
            "frames_received",
            "disconnect_cancels",
            "net_queries",
            "net_rows_streamed",
        ):
            assert key in stats, f"{key} missing from gateway stats"
            assert key in wire_stats, f"{key} missing from wire stats"
        assert stats["sessions_authenticated"] == 1
        assert stats["net_queries"] == 1
        assert stats["net_rows_streamed"] == 2
        assert stats["frames_sent"] >= 3  # welcome, row_batch, result, stats
        assert stats["frames_received"] >= 3  # hello, query, stats
        assert stats["disconnect_cancels"] == 0

    def test_connections_open_gauge(self, service):
        gateway, host, port = service
        assert gateway.metrics.gauge("connections_open").value == 0
        client = ReproClient(host, port)
        try:
            assert gateway.metrics.gauge("connections_open").value == 1
        finally:
            client.close()
        deadline = time.time() + 10
        while time.time() < deadline:
            if gateway.metrics.gauge("connections_open").value == 0:
                break
            time.sleep(0.01)
        assert gateway.metrics.gauge("connections_open").value == 0

    def test_render_stats_shows_network_instruments(self, service):
        """The \\stats meta-command body includes the wire counters."""
        gateway, host, port = service
        with ReproClient(host, port):
            pass
        text = gateway.render_stats()
        for key in ("connections_open", "sessions_authenticated",
                    "frames_sent", "frames_received", "disconnect_cancels"):
            assert key in text


class TestCancellationOnDisconnect:
    def test_client_drop_cancels_in_flight_query(self):
        """Client vanishes mid-query: the in-flight QueryContext is
        cancelled, nothing partial escapes, and the request is audited
        exactly once."""
        db = join_db()
        gateway = EnforcementGateway(db, workers=1)
        network = NetworkService(gateway)
        host, port = network.start()
        try:
            client = ReproClient(host, port, mode="open")
            client.start_query(BIG_JOIN_SQL, tag="dropped-query")
            time.sleep(0.25)  # give the worker time to get mid-scan
            client.drop()  # abrupt close, no goodbye

            deadline = time.time() + 30
            records = []
            while time.time() < deadline:
                records = [
                    r for r in gateway.audit.tail(100)
                    if r.tag == "dropped-query"
                ]
                if records:
                    break
                time.sleep(0.02)
            assert len(records) == 1, "exactly-once audit for dropped client"
            assert records[0].status == "cancelled"
            assert gateway.metrics.counter("disconnect_cancels").value == 1
            assert (
                gateway.metrics.counter("requests_cancelled_inflight").value == 1
            )

            # no partial state: the worker is free and correct afterwards
            with ReproClient(host, port, mode="open") as again:
                result = again.query("select count(*) from L")
                assert result.rows == [(700,)]
        finally:
            network.stop()
            gateway.shutdown(drain=False)

    def test_drop_with_idle_session_cancels_nothing(self, service):
        gateway, host, port = service
        client = ReproClient(host, port, user="11")
        client.query("select * from Grades where student_id = '11'")
        client.drop()
        deadline = time.time() + 10
        while time.time() < deadline:
            if gateway.metrics.gauge("connections_open").value == 0:
                break
            time.sleep(0.01)
        assert gateway.metrics.counter("disconnect_cancels").value == 0

    def test_multiple_inflight_all_cancelled_on_drop(self):
        db = join_db()
        gateway = EnforcementGateway(db, workers=2)
        network = NetworkService(gateway)
        host, port = network.start()

        async def scenario():
            client = await AsyncReproClient.connect(host, port, mode="open")
            for _ in range(2):
                await client.submit(BIG_JOIN_SQL, tag="multi-drop")
            await asyncio.sleep(0.25)
            # abrupt close: cancel the reader and kill the transport
            client._reader_task.cancel()
            client._writer.transport.abort()

        try:
            asyncio.run(scenario())
            deadline = time.time() + 30
            while time.time() < deadline:
                records = [
                    r for r in gateway.audit.tail(100) if r.tag == "multi-drop"
                ]
                if len(records) == 2:
                    break
                time.sleep(0.02)
            assert len(records) == 2
            assert all(r.status == "cancelled" for r in records)
            assert gateway.metrics.counter("disconnect_cancels").value == 2
        finally:
            network.stop()
            gateway.shutdown(drain=False)


class TestReconnect:
    """`ConnectionLostError` + the opt-in single reconnect-and-retry
    for idempotent reads (cluster PR satellite): an established
    connection dying under a SELECT is retried transparently once,
    re-authenticating the session; writes never retry."""

    def test_lost_connection_raises_typed_error(self, service):
        from repro.errors import ConnectionLostError

        _, host, port = service
        with ReproClient(host, port, user="11") as client:
            client._sock.close()  # the connection dies under us
            with pytest.raises(ConnectionLostError) as excinfo:
                client.query("select grade from MyGrades")
            # typed as a connection error end to end
            assert isinstance(excinfo.value, ConnectionDropped)
            assert client.reconnects == 0

    def test_idempotent_read_retries_once_with_session(self, service):
        _, host, port = service
        with ReproClient(host, port, user="11", reconnect=True) as client:
            before = client.query("select grade from MyGrades")
            client._sock.close()
            after = client.query("select grade from MyGrades")
            assert client.reconnects == 1
            # the re-hello restored the same authenticated session:
            # the auth view still resolves against user 11
            assert after.rows == before.rows

    def test_write_never_retries(self, service):
        from repro.errors import ConnectionLostError

        _, host, port = service
        with ReproClient(
            host, port, user=None, mode="open", reconnect=True
        ) as client:
            client._sock.close()
            with pytest.raises(ConnectionLostError):
                client.query(
                    "insert into Grades values ('11', 'CS999', 1.0)"
                )
            assert client.reconnects == 0

    def test_stats_fetch_retries(self, service):
        _, host, port = service
        with ReproClient(host, port, user="11", reconnect=True) as client:
            client._sock.close()
            stats = client.stats()
            assert client.reconnects == 1
            assert "breaker_state" in stats


class TestPreparedWire:
    """The ``prepare``/``execute`` message pair: explicit server-side
    statement handles with positional literal rebinding (paper §5.6 on
    the wire)."""

    SQL = "select grade from Grades where student_id = '11'"

    def test_prepare_execute_roundtrip(self, service):
        gateway, host, port = service
        with ReproClient(host, port, user="11") as client:
            stmt = client.prepare(self.SQL)
            assert stmt.n_params == 1
            assert "_lit1" in stmt.signature
            cold = stmt.execute("11")
            hot = stmt.execute("11")
            assert sorted(cold.rows) == sorted(hot.rows)
            assert sorted(r[0] for r in hot.rows) == [3.5, 4.0]
        assert gateway.metrics.counter("net_prepares").value == 1
        assert gateway.metrics.counter("net_executes").value == 2
        assert gateway.metrics.counter("prepared_requests").value >= 1

    def test_rebinding_foreign_literal_is_rejected(self, service):
        """Rebinding the user-id literal to someone else's id must be
        re-decided per the §5.6 carry-over rule — and rejected, since
        the literal no longer matches the session user."""
        _, host, port = service
        with ReproClient(host, port, user="11") as client:
            stmt = client.prepare(self.SQL)
            assert sorted(r[0] for r in stmt.execute("11").rows) == [3.5, 4.0]
            with pytest.raises(QueryRejectedError):
                stmt.execute("12")
            # the statement handle survives the rejection
            assert sorted(r[0] for r in stmt.execute("11").rows) == [3.5, 4.0]

    def test_wire_answers_match_plain_queries(self, service):
        """Differential: executing a prepared handle with literal L is
        byte-identical to sending the bound SQL as a plain query."""
        _, host, port = service
        queries = [
            self.SQL,
            "select course_id, grade from Grades "
            "where student_id = '11' and grade > 3.6",
        ]
        with ReproClient(host, port, user="11") as client:
            for sql in queries:
                plain = client.query(sql)
                stmt = client.prepare(sql)
                for _ in range(2):  # cold + hot
                    prepared = stmt.execute(*client_literals(sql))
                    assert prepared.columns == plain.columns
                    assert prepared.rows == plain.rows

    def test_prepare_non_query_is_typed_error(self, service):
        _, host, port = service
        with ReproClient(host, port, user="11") as client:
            with pytest.raises(ReproError, match="cannot prepare"):
                client.prepare("insert into Grades values ('11','CS9',1.0)")
            # session remains usable
            assert client.query(self.SQL).rows

    def test_execute_arity_mismatch_is_typed_error(self, service):
        _, host, port = service
        with ReproClient(host, port, user="11") as client:
            stmt = client.prepare(self.SQL)
            with pytest.raises(ReproError, match="takes 1 argument"):
                stmt.execute("11", "extra")

    def test_unknown_handle_is_typed_error(self, service):
        _, host, port = service
        with ReproClient(host, port, user="11") as client:
            stmt = client.prepare(self.SQL)
            stmt.statement_id = 999  # forge a handle
            with pytest.raises(ReproError, match="unknown prepared statement"):
                stmt.execute("11")

    def test_async_prepare_execute(self, service):
        _, host, port = service

        async def scenario():
            client = await AsyncReproClient.connect(host, port, user="11")
            try:
                stmt = await client.prepare(self.SQL)
                assert stmt.n_params == 1
                results = await asyncio.gather(
                    stmt.execute("11"), stmt.execute("11")
                )
                for result in results:
                    assert sorted(r[0] for r in result.rows) == [3.5, 4.0]
            finally:
                await client.close()

        asyncio.run(scenario())


def client_literals(sql: str) -> tuple:
    """The positional literals `prepare` strips from ``sql``, in order —
    recomputed client-side so the differential test binds exactly what
    the plain query contained."""
    from repro.nontruman.cache import query_signature
    from repro.sql import parse_query

    _, literals = query_signature(parse_query(sql))
    return literals


class TestAsyncClientPipelining:
    def test_interleaved_queries_one_connection(self, service):
        _, host, port = service

        async def scenario():
            client = await AsyncReproClient.connect(host, port, user="11")
            try:
                results = await asyncio.gather(
                    *[
                        client.query(
                            "select * from Grades where student_id = '11'"
                        )
                        for _ in range(16)
                    ]
                )
            finally:
                await client.close()
            return results

        results = asyncio.run(scenario())
        assert len(results) == 16
        for result in results:
            assert sorted(result.rows) == [
                ("11", "CS101", 3.5), ("11", "CS102", 4.0),
            ]

    def test_async_stats(self, service):
        _, host, port = service

        async def scenario():
            async with await AsyncReproClient.connect(host, port) as client:
                return await client.stats()

        stats = asyncio.run(scenario())
        assert "net_queries" in stats
