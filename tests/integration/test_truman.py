"""Integration tests for the Truman model and VPD (paper Section 3),
including the §3.3 pitfalls the Non-Truman model exists to avoid."""

import pytest

from repro.db import Database
from repro.errors import QueryRejectedError

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


def fresh_db() -> Database:
    db = Database()
    db.execute_script(UNIVERSITY_SCHEMA)
    db.execute_script(UNIVERSITY_DATA)
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant_public("MyGrades")
    return db


class TestTrumanViewSubstitution:
    def test_restricted_scan(self):
        db = fresh_db()
        db.set_truman_view("Grades", "MyGrades")
        conn = db.connect(user_id="11", mode="truman")
        result = conn.query("select * from Grades")
        assert all(row[0] == "11" for row in result.rows)
        assert len(result) == 2

    def test_misleading_average(self):
        """§3.3 pitfall 1: avg(grade) silently becomes the user's own
        average — reproduced exactly."""
        db = fresh_db()
        db.set_truman_view("Grades", "MyGrades")
        conn = db.connect(user_id="11", mode="truman")
        truman_avg = conn.query("select avg(grade) from Grades").scalar()
        true_avg = db.execute("select avg(grade) from Grades").scalar()
        own_avg = db.execute(
            "select avg(grade) from Grades where student_id = '11'"
        ).scalar()
        assert truman_avg == own_avg == 3.75
        assert truman_avg != true_avg  # the misleading answer

    def test_nontruman_rejects_the_same_query(self):
        """§3.3: the Non-Truman model rejects instead of misleading."""
        db = fresh_db()
        conn = db.connect(user_id="11", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query("select avg(grade) from Grades")

    def test_joins_still_work_under_substitution(self):
        db = fresh_db()
        db.set_truman_view("Grades", "MyGrades")
        conn = db.connect(user_id="11", mode="truman")
        result = conn.query(
            "select c.name, g.grade from Grades g, Courses c "
            "where g.course_id = c.course_id"
        )
        assert len(result) == 2

    def test_redundant_join_introduced(self):
        """§3.3 pitfall 3: substituting a join view into a query that
        already performs the same test yields redundant work."""
        db = fresh_db()
        db.execute(
            "create authorization view CoGrades as "
            "select Grades.student_id, Grades.course_id, Grades.grade "
            "from Grades, Registered "
            "where Registered.student_id = $user_id "
            "and Grades.course_id = Registered.course_id"
        )
        db.grant_public("CoGrades")
        db.set_truman_view("Grades", "CoGrades")
        conn_open = db.connect(user_id="11", mode="open")
        conn_truman = db.connect(user_id="11", mode="truman")
        from repro.truman.rewrite import truman_rewrite
        from repro.sql import parse_query
        from repro.algebra import ops

        original = parse_query(
            "select g.grade from Grades g, Registered r "
            "where r.student_id = '11' and g.course_id = r.course_id"
        )
        rewritten = truman_rewrite(db, original, conn_truman.session)
        plan_orig = db.plan_query(original, conn_open.session)
        plan_truman = db.plan_query(rewritten, conn_truman.session)
        count = lambda p: len(ops.base_relations(p))
        assert count(plan_truman) > count(plan_orig)  # redundant join

    def test_unpoliced_tables_untouched(self):
        db = fresh_db()
        db.set_truman_view("Grades", "MyGrades")
        conn = db.connect(user_id="11", mode="truman")
        assert len(conn.query("select * from Students")) == 4


class TestVpd:
    def test_predicate_policy_string(self):
        db = fresh_db()
        db.vpd_policies.add_policy("Grades", "student_id = $user_id")
        conn = db.connect(user_id="12", mode="truman")
        result = conn.query("select * from Grades")
        assert [row[0] for row in result.rows] == ["12"]

    def test_policy_function_callable(self):
        db = fresh_db()
        from repro.sql.parser import Parser

        def policy(session):
            if session.user == "dba":
                return None  # unrestricted
            return Parser(f"student_id = '{session.user}'").parse_expr()

        db.vpd_policies.add_policy("Grades", policy)
        student = db.connect(user_id="11", mode="truman")
        dba = db.connect(user_id="dba", mode="truman")
        assert len(student.query("select * from Grades")) == 2
        assert len(dba.query("select * from Grades")) == 4

    def test_policy_applies_inside_joins(self):
        db = fresh_db()
        db.vpd_policies.add_policy("Grades", "student_id = $user_id")
        conn = db.connect(user_id="11", mode="truman")
        result = conn.query(
            "select g.grade from Grades g join Courses c "
            "on g.course_id = c.course_id"
        )
        assert len(result) == 2

    def test_policy_applies_in_subqueries(self):
        db = fresh_db()
        db.vpd_policies.add_policy("Grades", "student_id = $user_id")
        conn = db.connect(user_id="11", mode="truman")
        result = conn.query(
            "select s.g from (select grade as g from Grades) as s"
        )
        assert len(result) == 2

    def test_multiple_policies_conjoined(self):
        db = fresh_db()
        db.vpd_policies.add_policy("Grades", "student_id = $user_id")
        db.vpd_policies.add_policy("Grades", "grade >= 3.6")
        conn = db.connect(user_id="11", mode="truman")
        result = conn.query("select * from Grades")
        assert len(result) == 1  # only the 4.0 in CS102

    def test_misleading_count_under_vpd(self):
        db = fresh_db()
        db.vpd_policies.add_policy("Grades", "student_id = $user_id")
        conn = db.connect(user_id="13", mode="truman")
        assert conn.query("select count(*) from Grades").scalar() == 1
        assert db.execute("select count(*) from Grades").scalar() == 4
