"""Serving-layer chaos harness (robustness tentpole).

Randomized fault-injection sweeps over the enforcement gateway assert
the end-to-end resilience contract:

* every admitted request ends in **exactly one** terminal state —
  a correct full answer or a clean typed error — never a hang, a
  partial result, or an unauthorized row;
* every request (including overload rejections and worker crashes) is
  audited **exactly once**;
* cooperative cancellation interrupts work *mid-inference* (the
  Non-Truman matcher's enumeration loops) and *mid-scan* (both
  engines), not just between phases;
* WAL commit faults trip the circuit breaker into degraded read-only
  mode — reads keep serving, writes get a typed error — and the
  half-open probe recovers automatically.
"""

import threading
import time

import pytest

from repro.db import Database
from repro.errors import (
    PendingTimeout,
    QueryRejectedError,
    ReproError,
    ServiceOverloaded,
)
from repro.service import (
    ChaosInjector,
    EnforcementGateway,
    QueryRequest,
    RequestStatus,
)

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA

TERMINAL = {
    RequestStatus.OK,
    RequestStatus.REJECTED,
    RequestStatus.TIMEOUT,
    RequestStatus.ERROR,
    RequestStatus.CANCELLED,
    RequestStatus.DEGRADED,
}

#: generous reap bound — any individual request exceeding this counts
#: as a hang and fails the sweep
REAP_TIMEOUT_S = 60.0


def install_university(db: Database) -> None:
    db.execute_script(UNIVERSITY_SCHEMA)
    db.execute_script(UNIVERSITY_DATA)
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.execute(
        "create authorization view MyRegistrations as "
        "select * from Registered where student_id = $user_id"
    )
    db.grant_public("MyGrades")
    db.grant_public("MyRegistrations")


def serial_outcome(db: Database, request: QueryRequest):
    """(status, row multiset) of running one request with no service."""
    session = db.connect(user_id=request.user, mode=request.mode).session
    try:
        result = db.execute_query(request.sql, session=session, mode=request.mode)
    except QueryRejectedError:
        return ("rejected", None)
    except ReproError:
        return ("error", None)
    return ("ok", result.as_multiset())


class TestChaosSweep:
    """The randomized sweep of the acceptance criteria: 200+ requests,
    faults at every serving-path point, full-invariant checking."""

    SEED = 20260806

    # read templates (mode, sql builder) — oracle answers are stable
    # because the sweep's writes only touch the separate Ledger table
    READ_TEMPLATES = [
        ("non-truman", lambda u: f"select grade from Grades where student_id = '{u}'"),
        ("non-truman", lambda u: "select * from MyGrades"),
        ("non-truman", lambda u: "select * from Grades"),  # rejected
        ("non-truman", lambda u: f"select course_id from Registered where student_id = '{u}'"),
        ("open", lambda u: "select count(*) from Courses"),
        ("open", lambda u: "select s.name, g.grade from Students s, Grades g "
                           "where s.student_id = g.student_id"),
        ("truman", lambda u: "select * from Grades"),
        ("open", lambda u: "selekt broken syntax"),  # parse error
    ]

    def build(self, tmp_path):
        chaos = ChaosInjector(seed=self.SEED)
        db = Database.open(str(tmp_path / "chaos-data"), injector=chaos)
        install_university(db)
        db.execute("create table Ledger(id int primary key, v int)")
        # Truman mode needs a policy for Grades
        db.truman_policy["grades"] = "MyGrades"
        return db, chaos

    def make_requests(self, rng, count):
        import random

        assert isinstance(rng, random.Random)
        users = ("11", "12", "13", "14")
        requests = []
        for i in range(count):
            tag = f"sweep-{i}"
            if rng.random() < 0.2:  # write to the isolated Ledger table
                requests.append(
                    QueryRequest(
                        user=None, mode="open", tag=tag,
                        sql=f"insert into Ledger values ({i}, {i})",
                    )
                )
                continue
            mode, build = self.READ_TEMPLATES[
                rng.randrange(len(self.READ_TEMPLATES))
            ]
            user = users[rng.randrange(len(users))]
            deadline = None
            row_budget = None
            roll = rng.random()
            if roll < 0.10:
                deadline = 0.001  # deadline storm: expires while queued
            elif roll < 0.15:
                row_budget = 3  # budget storm
            requests.append(
                QueryRequest(
                    user=user, mode=mode, sql=build(user), tag=tag,
                    deadline=deadline, row_budget=row_budget,
                )
            )
        return requests

    def test_randomized_sweep_no_hangs_no_partials_all_audited(self, tmp_path):
        import random

        db, chaos = self.build(tmp_path)
        rng = random.Random(self.SEED)
        requests = self.make_requests(rng, 220)

        # oracle outcomes for the reads, before any chaos is armed
        oracle = {}
        for request in requests:
            if request.sql.lstrip().lower().startswith("insert"):
                continue
            oracle[request.tag] = serial_outcome(db, request)

        gateway = EnforcementGateway(
            db,
            workers=4,
            queue_size=256,
            audit_capacity=4096,
            default_deadline=REAP_TIMEOUT_S / 2,
            retry_attempts=2,
            retry_backoff=0.001,
            breaker_threshold=3,
            breaker_cooldown=0.05,
            chaos=chaos,
            retry_seed=self.SEED,
        )
        # six serving-path fault points (plus the deadline/budget storms
        # and client-driven cancellation below)
        chaos.inject("gateway.dequeue", "delay", probability=0.2, delay_s=0.002)
        chaos.inject("gateway.before_check", "transient", probability=0.15)
        chaos.inject("gateway.before_execute", "worker-crash", probability=0.05)
        chaos.inject("gateway.before_commit", "io-error", probability=0.25)
        chaos.inject("wal.before_fsync", "io-error", probability=0.15)
        chaos.inject("wal.before_append", "delay", probability=0.1, delay_s=0.001)

        submitted = []
        overloaded = 0
        cancellers = []
        try:
            for request in requests:
                try:
                    pending = gateway.submit(request)
                except ServiceOverloaded:
                    overloaded += 1
                    continue
                submitted.append((request, pending))
                if rng.random() < 0.08:  # client-driven cancellation
                    canceller = threading.Timer(
                        rng.random() * 0.01, pending.cancel
                    )
                    canceller.daemon = True
                    canceller.start()
                    cancellers.append(canceller)

            responses = []
            for request, pending in submitted:
                try:
                    response = pending.result(timeout=REAP_TIMEOUT_S)
                except PendingTimeout:
                    pytest.fail(f"request {request.tag} hung: {request.sql}")
                responses.append((request, response))
        finally:
            for canceller in cancellers:
                canceller.cancel()
            gateway.shutdown(drain=False)

        assert len(responses) == len(submitted)
        assert chaos.stats(), "the sweep injected no faults at all"
        assert len(chaos.stats()) >= 4, chaos.stats()

        # -- invariant 1: exactly one clean terminal state each ----------
        for request, response in responses:
            assert response.status in TERMINAL, (request.tag, response.status)
            if response.status is not RequestStatus.OK:
                assert response.error, (request.tag, response.status)

        # -- invariant 2: answers are full and authorized ----------------
        for request, response in responses:
            if request.tag not in oracle:
                continue
            status, rows = oracle[request.tag]
            if response.status is RequestStatus.OK:
                assert status == "ok", (
                    f"{request.tag}: oracle says {status} but gateway "
                    f"answered OK — unauthorized or spurious answer"
                )
                assert response.result.as_multiset() == rows, (
                    f"{request.tag}: partial or wrong result"
                )
            elif response.status is RequestStatus.REJECTED:
                assert status == "rejected", request.tag

        # -- invariant 3: no partial DML state ---------------------------
        ledger = {row[0] for row in db.table("Ledger").rows()}
        for request, response in responses:
            if not request.sql.lstrip().lower().startswith("insert"):
                continue
            key = int(request.sql.split("(")[1].split(",")[0])
            if response.status is RequestStatus.OK:
                assert key in ledger, f"{request.tag}: lost acknowledged write"
            elif response.status is RequestStatus.DEGRADED:
                if "writes are refused" in (response.error or ""):
                    # refused up front by the open breaker: no state at all
                    assert key not in ledger, (
                        f"{request.tag}: refused write left partial state"
                    )
                else:
                    # commit fault: applied in memory, flagged as volatile
                    assert "durable commit failed" in response.error
                    assert key in ledger, request.tag

        # -- invariant 4: every request audited exactly once -------------
        seen = {}
        for record in gateway.audit.tail(4096):
            if record.tag and record.tag.startswith("sweep-"):
                seen[record.tag] = seen.get(record.tag, 0) + 1
        expected_tags = {r.tag for r, _ in responses} | {
            r.tag
            for r in requests
            if r.tag not in {req.tag for req, _ in responses}
        }
        assert set(seen) == expected_tags
        assert all(count == 1 for count in seen.values()), {
            tag: count for tag, count in seen.items() if count != 1
        }
        assert len(seen) == len(requests)
        assert (
            gateway.metrics.counter("requests_overloaded").value == overloaded
        )

    def test_sweep_is_reproducible(self):
        import random

        first = self.make_requests(random.Random(self.SEED), 50)
        second = self.make_requests(random.Random(self.SEED), 50)
        assert [(r.sql, r.deadline, r.row_budget) for r in first] == [
            (r.sql, r.deadline, r.row_budget) for r in second
        ]


@pytest.fixture
def big_join_db():
    """In-memory db with a join large enough to take seconds."""
    db = Database()
    db.execute("create table L(a int primary key)")
    db.execute("create table R(b int primary key)")
    values = ", ".join(f"({i})" for i in range(700))
    db.execute(f"insert into L values {values}")
    db.execute(f"insert into R values {values}")
    return db


BIG_JOIN_SQL = "select count(*) from L, R where L.a < R.b"  # 490k pairs


class TestMidScanCancellation:
    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_deadline_kills_query_mid_scan(self, big_join_db, engine):
        gateway = EnforcementGateway(big_join_db, workers=2)
        try:
            start = time.perf_counter()
            response = gateway.execute(
                QueryRequest(
                    user=None, mode="open", sql=BIG_JOIN_SQL,
                    engine=engine, deadline=0.15,
                )
            )
            elapsed = time.perf_counter() - start
            assert response.status is RequestStatus.TIMEOUT
            assert "deadline" in response.error
            assert response.result is None
            # killed cooperatively mid-join, far before completion
            assert elapsed < 5.0
            # worker is immediately reusable
            ok = gateway.execute(
                QueryRequest(user=None, mode="open",
                             sql="select count(*) from L", engine=engine)
            )
            assert ok.ok and ok.rows == [(700,)]
        finally:
            gateway.shutdown(drain=False)

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_client_cancel_interrupts_inflight_scan(self, big_join_db, engine):
        gateway = EnforcementGateway(big_join_db, workers=2)
        try:
            pending = gateway.submit(
                QueryRequest(user=None, mode="open", sql=BIG_JOIN_SQL,
                             engine=engine)
            )
            deadline = time.time() + 10
            while gateway.metrics.gauge("workers_busy").value < 1:
                assert time.time() < deadline, "worker never picked it up"
                time.sleep(0.001)
            time.sleep(0.05)  # let it get deep into the join
            assert pending.cancel()
            response = pending.result(timeout=REAP_TIMEOUT_S)
            assert response.status is RequestStatus.CANCELLED
            assert response.result is None
            assert (
                gateway.metrics.counter("requests_cancelled_inflight").value
                >= 1
            )
        finally:
            gateway.shutdown(drain=False)

    def test_row_budget_kills_scan(self, big_join_db):
        gateway = EnforcementGateway(big_join_db, workers=1)
        try:
            response = gateway.execute(
                QueryRequest(user=None, mode="open", sql=BIG_JOIN_SQL,
                             row_budget=10_000)
            )
            assert response.status is RequestStatus.ERROR
            assert "row budget" in response.error
            assert (
                gateway.metrics.counter("requests_budget_exceeded").value == 1
            )
        finally:
            gateway.shutdown(drain=False)

    def test_memory_budget_kills_materialization(self, big_join_db):
        gateway = EnforcementGateway(big_join_db, workers=1)
        try:
            response = gateway.execute(
                QueryRequest(user=None, mode="open",
                             sql="select * from L, R",  # 490k wide rows
                             memory_budget=64 * 1024)
            )
            assert response.status is RequestStatus.ERROR
            assert "memory budget" in response.error
        finally:
            gateway.shutdown(drain=False)


def build_pathological_db() -> Database:
    """Granted views that self-join Grades six ways: the Non-Truman
    matcher's application enumeration is a cartesian product over
    (query instances + 1) per view table, so an eight-instance query
    explodes combinatorially.  With the node budget effectively
    disabled, only the cooperative deadline can stop the inference."""
    db = Database()
    db.execute(
        "create table Grades(student_id varchar(10), course_id varchar(10), "
        "grade float, primary key (student_id, course_id))"
    )
    db.execute("insert into Grades values ('11','CS101',3.5)")
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant_public("MyGrades")
    for i in range(4):
        tables = ", ".join(f"Grades g{j}" for j in range(1, 7))
        joins = " and ".join(
            f"g{j}.student_id = g{j + 1}.student_id" for j in range(1, 6)
        )
        db.execute(
            f"create authorization view Deep{i} as "
            f"select g1.student_id, g1.course_id, g1.grade from {tables} "
            f"where {joins} and g1.grade >= {i}"
        )
        db.grant_public(f"Deep{i}")
    db.checker_options = {"max_cover_nodes": 10**9}
    return db


PATHOLOGICAL_SQL = (
    "select q1.grade from "
    + ", ".join(f"Grades q{j}" for j in range(1, 9))
    + " where "
    + " and ".join(f"q{j}.student_id = q{j + 1}.student_id" for j in range(1, 8))
)


class TestPathologicalInference:
    def test_deadline_kills_validity_check_mid_inference(self):
        db = build_pathological_db()
        gateway = EnforcementGateway(db, workers=2)
        try:
            start = time.perf_counter()
            response = gateway.execute(
                QueryRequest(user="11", sql=PATHOLOGICAL_SQL, deadline=0.4)
            )
            elapsed = time.perf_counter() - start
            assert response.status is RequestStatus.TIMEOUT
            assert "deadline" in response.error
            assert elapsed < 10.0  # killed mid-inference, not at the end
            # the aborted check cached nothing: hits stay at zero
            assert gateway.cache.hits == 0
        finally:
            gateway.shutdown(drain=False)

    def test_other_sessions_keep_serving_during_pathological_check(self):
        db = build_pathological_db()
        gateway = EnforcementGateway(db, workers=3)
        try:
            poison = gateway.submit(
                QueryRequest(user="11", sql=PATHOLOGICAL_SQL, deadline=1.5)
            )
            deadline = time.time() + 10
            while gateway.metrics.gauge("workers_busy").value < 1:
                assert time.time() < deadline
                time.sleep(0.001)
            # healthy traffic on the remaining workers while the poison
            # query burns its deadline on another
            served = 0
            while not poison.done():
                response = gateway.execute(
                    QueryRequest(user="11", sql="select * from MyGrades",
                                 deadline=5.0)
                )
                assert response.ok, response.error
                served += 1
            assert served >= 3, "healthy sessions starved by poison query"
            assert poison.result(timeout=1).status is RequestStatus.TIMEOUT
        finally:
            gateway.shutdown(drain=False)


class TestBreakerDegradedMode:
    def build(self, tmp_path):
        chaos = ChaosInjector(seed=3)
        db = Database.open(str(tmp_path / "breaker-data"), injector=chaos)
        db.execute("create table Ledger(id int primary key, v int)")
        gateway = EnforcementGateway(
            db, workers=2, breaker_threshold=2, breaker_cooldown=0.05,
            chaos=chaos,
        )
        return db, chaos, gateway

    def test_wal_faults_trip_breaker_reads_keep_serving(self, tmp_path):
        db, chaos, gateway = self.build(tmp_path)
        try:
            assert gateway.execute(
                QueryRequest(user=None, mode="open",
                             sql="insert into Ledger values (1, 1)")
            ).ok
            chaos.inject("gateway.before_commit", "io-error", probability=1.0)

            first = gateway.execute(
                QueryRequest(user=None, mode="open",
                             sql="insert into Ledger values (2, 2)")
            )
            assert first.status is RequestStatus.DEGRADED
            assert "durable commit failed" in first.error
            second = gateway.execute(
                QueryRequest(user=None, mode="open",
                             sql="insert into Ledger values (3, 3)")
            )
            assert second.status is RequestStatus.DEGRADED
            assert gateway.breaker.state == "open"
            assert gateway.degraded

            # writes now refused up front: no partial state
            refused = gateway.execute(
                QueryRequest(user=None, mode="open",
                             sql="insert into Ledger values (4, 4)")
            )
            assert refused.status is RequestStatus.DEGRADED
            assert "read-only" in refused.error
            assert 4 not in {row[0] for row in db.table("Ledger").rows()}

            # reads keep serving while degraded
            read = gateway.execute(
                QueryRequest(user=None, mode="open",
                             sql="select count(*) from Ledger")
            )
            assert read.ok

            stats = gateway.stats()
            assert stats["breaker_state"] == "open"
            assert stats["breaker_trips"] == 1
            assert gateway.metrics.counter("requests_degraded").value >= 3
        finally:
            gateway.shutdown(drain=False)

    def test_half_open_probe_recovers(self, tmp_path):
        db, chaos, gateway = self.build(tmp_path)
        try:
            chaos.inject("gateway.before_commit", "io-error", probability=1.0)
            for key in (1, 2):
                gateway.execute(
                    QueryRequest(user=None, mode="open",
                                 sql=f"insert into Ledger values ({key}, 0)")
                )
            assert gateway.breaker.state == "open"

            chaos.clear("gateway.before_commit")  # the disk heals
            time.sleep(0.06)  # past the cooldown: next write is the probe

            probe = gateway.execute(
                QueryRequest(user=None, mode="open",
                             sql="insert into Ledger values (10, 10)")
            )
            assert probe.ok
            assert gateway.breaker.state == "closed"
            assert not gateway.degraded
            stats = gateway.stats()
            assert stats["breaker_recoveries"] == 1
            # the state metric tracked the full closed→open→half-open→closed arc
            assert stats["breaker_state"] == "closed"
            assert stats["breaker_state_transitions"] >= 3

            follow_up = gateway.execute(
                QueryRequest(user=None, mode="open",
                             sql="insert into Ledger values (11, 11)")
            )
            assert follow_up.ok
        finally:
            gateway.shutdown(drain=False)


class TestRetries:
    def test_transient_fault_retried_to_success(self):
        db = Database()
        install_university(db)
        chaos = ChaosInjector(seed=5)
        gateway = EnforcementGateway(
            db, workers=1, retry_attempts=2, retry_backoff=0.001, chaos=chaos,
        )
        try:
            chaos.inject("gateway.before_check", "transient", times=1)
            response = gateway.execute(
                QueryRequest(user="11", sql="select * from MyGrades")
            )
            assert response.ok, response.error
            assert response.retries == 1
            assert gateway.metrics.counter("requests_retried").value == 1
            assert gateway.metrics.counter("retries_total").value >= 1
        finally:
            gateway.shutdown(drain=False)

    def test_persistent_transient_fault_becomes_typed_error(self):
        db = Database()
        install_university(db)
        chaos = ChaosInjector(seed=5)
        gateway = EnforcementGateway(
            db, workers=1, retry_attempts=2, retry_backoff=0.001, chaos=chaos,
        )
        try:
            chaos.inject("gateway.before_check", "transient", probability=1.0)
            response = gateway.execute(
                QueryRequest(user="11", sql="select * from MyGrades")
            )
            assert response.status is RequestStatus.ERROR
            assert "transient fault persisted" in response.error
            assert response.retries == 2
        finally:
            gateway.shutdown(drain=False)


class TestWorkerCrashAccounting:
    def test_crash_is_typed_audited_and_survivable(self):
        db = Database()
        install_university(db)
        chaos = ChaosInjector(seed=7)
        gateway = EnforcementGateway(db, workers=1, chaos=chaos)
        try:
            chaos.inject("gateway.dequeue", "worker-crash", times=1)
            crashed = gateway.execute(
                QueryRequest(user="11", sql="select * from MyGrades",
                             tag="crash-1")
            )
            assert crashed.status is RequestStatus.ERROR
            assert "internal gateway error" in crashed.error
            assert gateway.metrics.counter("worker_faults").value == 1
            # audited exactly once despite the crash
            records = [
                r for r in gateway.audit.tail(100) if r.tag == "crash-1"
            ]
            assert len(records) == 1
            # the (single) worker survived and serves the next request
            assert gateway.execute(
                QueryRequest(user="11", sql="select * from MyGrades")
            ).ok
        finally:
            gateway.shutdown(drain=False)


class TestOverloadProperty:
    """Property: under random load, chaos, and cancellation, every
    submitted request is eventually resolved (answered, overloaded,
    timed out, or cancelled) and audited exactly once."""

    def test_every_request_resolved_and_audited_once(self):
        import random

        db = Database()
        install_university(db)
        chaos = ChaosInjector(seed=11)
        gateway = EnforcementGateway(
            db, workers=2, queue_size=8, audit_capacity=4096,
            default_deadline=REAP_TIMEOUT_S / 2, retry_backoff=0.001,
            chaos=chaos,
        )
        chaos.inject("gateway.dequeue", "delay", probability=0.3,
                     delay_s=0.002)
        chaos.inject("gateway.before_check", "transient", probability=0.1)
        rng = random.Random(11)
        total = 120
        outcomes = {}
        lock = threading.Lock()

        def client(worker_id, count):
            local_rng = random.Random(worker_id)
            for i in range(count):
                tag = f"load-{worker_id}-{i}"
                request = QueryRequest(
                    user="11", sql="select * from MyGrades", tag=tag,
                    deadline=None if local_rng.random() < 0.8 else 0.001,
                )
                try:
                    pending = gateway.submit(request)
                except ServiceOverloaded:
                    with lock:
                        outcomes[tag] = "overloaded"
                    continue
                if local_rng.random() < 0.15:
                    pending.cancel()
                response = pending.result(timeout=REAP_TIMEOUT_S)
                with lock:
                    outcomes[tag] = response.status.value

        threads = [
            threading.Thread(target=client, args=(w, total // 4))
            for w in range(4)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=REAP_TIMEOUT_S * 2)
                assert not t.is_alive(), "client thread hung"
        finally:
            gateway.shutdown(drain=False)

        assert len(outcomes) == total  # every request resolved
        allowed = {s.value for s in TERMINAL} | {"overloaded"}
        assert set(outcomes.values()) <= allowed

        audited = {}
        for record in gateway.audit.tail(4096):
            if record.tag and record.tag.startswith("load-"):
                audited[record.tag] = audited.get(record.tag, 0) + 1
        assert set(audited) == set(outcomes)
        assert all(count == 1 for count in audited.values())


class TestPendingHandleContract:
    """Satellite regressions: execute() can never hang, and a timed-out
    result() leaves a cancellable handle, not an orphaned request."""

    def test_result_timeout_carries_handle_and_reaps(self, big_join_db):
        gateway = EnforcementGateway(big_join_db, workers=1)
        try:
            pending = gateway.submit(
                QueryRequest(user=None, mode="open", sql=BIG_JOIN_SQL)
            )
            with pytest.raises(PendingTimeout) as excinfo:
                pending.result(timeout=0.02)
            assert excinfo.value.pending is pending
            # PendingTimeout is still a TimeoutError for legacy callers
            assert isinstance(excinfo.value, TimeoutError)
            assert pending.cancel()
            response = pending.result(timeout=REAP_TIMEOUT_S)
            assert response.status is RequestStatus.CANCELLED
            assert not pending.cancel()  # already terminal
        finally:
            gateway.shutdown(drain=False)

    def test_execute_applies_gateway_default_deadline(self, big_join_db):
        gateway = EnforcementGateway(
            big_join_db, workers=1, default_deadline=0.15
        )
        try:
            start = time.perf_counter()
            response = gateway.execute(
                QueryRequest(user=None, mode="open", sql=BIG_JOIN_SQL)
            )
            assert time.perf_counter() - start < 10.0
            assert response.status is RequestStatus.TIMEOUT
            assert "deadline" in response.error
        finally:
            gateway.shutdown(drain=False)

    def test_execute_reaps_after_cancelling_on_wait_timeout(self, big_join_db):
        gateway = EnforcementGateway(big_join_db, workers=1)
        gateway.result_grace = 0.0
        try:
            # explicit wait shorter than the query: execute() cancels the
            # in-flight work and reaps the CANCELLED response
            response = gateway.execute(
                QueryRequest(user=None, mode="open", sql=BIG_JOIN_SQL),
                timeout=0.05,
            )
            assert response.status is RequestStatus.CANCELLED
        finally:
            gateway.shutdown(drain=False)


class TestResilienceMetrics:
    def test_stats_expose_resilience_instruments(self):
        db = Database()
        install_university(db)
        gateway = EnforcementGateway(db, workers=1)
        try:
            stats = gateway.stats()
            for key in (
                "requests_cancelled_inflight",
                "requests_degraded",
                "requests_retried",
                "retries_total",
                "requests_budget_exceeded",
                "worker_faults",
                "breaker_state",
                "breaker_state_transitions",
                "breaker_trips",
                "breaker_recoveries",
                "default_deadline_s",
            ):
                assert key in stats, key
            assert stats["breaker_state"] == "closed"
            rendered = gateway.render_stats()
            assert "breaker_state" in rendered
            assert "requests_cancelled_inflight" in rendered
        finally:
            gateway.shutdown(drain=False)


class TestPreparedChaosStorm:
    """Faults at the prepared-statement fire points while the grant
    registry churns underneath.  A ``delay`` at ``prepared.bind``
    stretches the window between template lookup and execution — the
    window where a stale plan would be served — and a ``transient`` at
    ``prepared.hit`` forces retries through a cache whose entries are
    being invalidated mid-flight.  Zero stale-plan answers are allowed:

    * every OK answer carries exactly the requester's own rows;
    * a foreign user's probe (literal pinned to someone else's id)
      never answers, no matter which template is hot;
    * every rejection is the genuine Non-Truman message, and the only
      other legal outcome is the typed persisted-transient error.
    """

    SEED = 20260807
    SQL_11 = "select grade from Grades where student_id = '11'"
    ROWS_11 = {(3.5,), (4.0,)}
    SQL_12_OWN = "select grade from Grades where student_id = '12'"
    ROWS_12 = {(2.5,)}

    def test_storm_no_stale_plans_no_cross_user_rows(self):
        db = Database()
        db.execute_script(UNIVERSITY_SCHEMA)
        db.execute_script(UNIVERSITY_DATA)
        db.execute(
            "create authorization view MyGrades as "
            "select * from Grades where student_id = $user_id"
        )
        db.grant("MyGrades", "11")
        db.grant("MyGrades", "12")
        chaos = ChaosInjector(seed=self.SEED)
        gateway = EnforcementGateway(
            db, workers=4, queue_size=512, audit_capacity=8192,
            retry_attempts=3, retry_backoff=0.001, chaos=chaos,
            retry_seed=self.SEED,
        )
        chaos.inject("prepared.hit", "transient", probability=0.15)
        chaos.inject("prepared.bind", "delay", probability=0.4,
                     delay_s=0.002)

        stop = threading.Event()

        def churn():
            # revoke/grant user 11's only view as fast as possible;
            # each loop iteration ends re-granted
            while not stop.is_set():
                db.grants.revoke("MyGrades", "11")
                time.sleep(0.0005)
                db.grant("MyGrades", "11")
                time.sleep(0.0005)

        churner = threading.Thread(target=churn, daemon=True)
        responses = []
        try:
            churner.start()
            for i in range(150):
                responses.append(("11-own", gateway.execute(
                    QueryRequest(user="11", sql=self.SQL_11,
                                 tag=f"own-{i}")
                )))
                responses.append(("12-own", gateway.execute(
                    QueryRequest(user="12", sql=self.SQL_12_OWN,
                                 tag=f"other-{i}")
                )))
                responses.append(("12-probe", gateway.execute(
                    QueryRequest(user="12", sql=self.SQL_11,
                                 tag=f"probe-{i}")
                )))
        finally:
            stop.set()
            churner.join(timeout=10)
            gateway.shutdown(drain=False)
        assert not churner.is_alive()

        # the storm actually exercised the prepared path and its faults
        assert gateway.metrics.counter("prepared_requests").value > 0
        assert "prepared.bind:delay" in chaos.stats(), chaos.stats()
        assert "prepared.hit:transient" in chaos.stats(), chaos.stats()

        for kind, response in responses:
            assert response.status in TERMINAL, (kind, response.status)
            if response.status is RequestStatus.OK:
                assert kind != "12-probe", (
                    "cross-user answer: user 12 was served a template "
                    "pinned to user 11's literal"
                )
                expected = self.ROWS_11 if kind == "11-own" else self.ROWS_12
                assert set(response.rows) == expected, (kind, response.rows)
                assert len(response.rows) == len(expected), (
                    f"{kind}: duplicate/partial rows {response.rows}"
                )
            elif response.status is RequestStatus.REJECTED:
                # user 12's own query is always answerable: a rejection
                # there would mean a foreign decision was served
                assert kind in ("11-own", "12-probe"), (kind, response.error)
                assert "rejected by Non-Truman model" in response.error
            else:
                assert response.status is RequestStatus.ERROR, (
                    kind, response.status, response.error,
                )
                assert "transient fault persisted" in response.error

        # quiescent: with the grant held, the answer must come back
        if not db.grants.is_granted("MyGrades", "11"):
            db.grant("MyGrades", "11")
        session = db.connect(user_id="11", mode="non-truman").session
        result = db.execute_query(
            self.SQL_11, session=session, mode="non-truman", prepared=True
        )
        assert set(result.rows) == self.ROWS_11


class TestNetworkChaos:
    """Connection-drop fire points in the network front end: the server
    must survive injected drops at any ``net.*`` point, cancel the
    affected session's work, and keep serving everyone else."""

    def make_service(self, chaos=None, workers=1):
        from repro.net import NetworkService

        db = Database()
        install_university(db)
        gateway = EnforcementGateway(db, workers=workers, name="net-chaos")
        network = NetworkService(gateway, chaos=chaos)
        host, port = network.start()
        return gateway, network, host, port

    def test_disconnect_at_accept(self):
        from repro.errors import ConnectionDropped
        from repro.net import ReproClient
        from repro.service import ChaosInjector

        chaos = ChaosInjector(seed=7)
        chaos.inject("net.accept", "disconnect", times=1)
        gateway, network, host, port = self.make_service(chaos)
        try:
            with pytest.raises(ConnectionDropped):
                ReproClient(host, port, user="11")
            # the very next connection is served normally
            with ReproClient(host, port, user="11") as client:
                result = client.query(
                    "select * from Grades where student_id = '11'"
                )
                assert len(result.rows) == 2
            assert chaos.injected == [("net.accept", "disconnect")]
        finally:
            network.stop()
            gateway.shutdown(drain=False)

    def test_disconnect_before_send_drops_only_that_session(self):
        from repro.errors import ConnectionDropped
        from repro.net import ReproClient
        from repro.service import ChaosInjector

        chaos = ChaosInjector(seed=7)
        gateway, network, host, port = self.make_service(chaos)
        try:
            victim = ReproClient(host, port, user="11")
            bystander = ReproClient(host, port, user="12")
            # armed only now, so both hellos went through; the victim's
            # next response frame hits the drop
            chaos.inject("net.before_send", "disconnect", times=1)
            with pytest.raises(ConnectionDropped):
                victim.query("select * from Grades where student_id = '11'")
            victim.drop()
            # the bystander's session is untouched
            result = bystander.query(
                "select * from Grades where student_id = '12'"
            )
            assert result.rows == [("12", "CS101", 2.5)]
            bystander.close()
        finally:
            network.stop()
            gateway.shutdown(drain=False)

    def test_delay_before_send_answers_are_still_correct(self):
        from repro.net import ReproClient
        from repro.service import ChaosInjector

        chaos = ChaosInjector(seed=7)
        chaos.inject("net.before_send", "delay", delay_s=0.02)
        gateway, network, host, port = self.make_service(chaos)
        try:
            with ReproClient(host, port, user="11") as client:
                result = client.query(
                    "select * from Grades where student_id = '11'"
                )
            assert sorted(result.rows) == [
                ("11", "CS101", 3.5), ("11", "CS102", 4.0),
            ]
        finally:
            network.stop()
            gateway.shutdown(drain=False)

    def test_transient_fault_retries_travel_over_wire(self):
        from repro.net import ReproClient
        from repro.service import ChaosInjector

        chaos = ChaosInjector(seed=7)
        chaos.inject("gateway.before_execute", "transient", times=1)
        db = Database()
        install_university(db)
        gateway = EnforcementGateway(db, workers=1, chaos=chaos)
        from repro.net import NetworkService

        network = NetworkService(gateway)
        host, port = network.start()
        try:
            with ReproClient(host, port, user="11") as client:
                result = client.query(
                    "select * from Grades where student_id = '11'"
                )
            assert len(result.rows) == 2
            assert result.retries >= 1  # the retry count is reported
        finally:
            network.stop()
            gateway.shutdown(drain=False)

    def test_probabilistic_disconnect_sweep(self):
        """Mini-sweep: with a 30% drop chance on every outgoing frame,
        every query either answers correctly or fails with a clean
        ``ConnectionDropped`` — and the server ends with no connection
        or in-flight request leaked."""
        from repro.errors import ConnectionDropped
        from repro.net import ReproClient
        from repro.service import ChaosInjector

        chaos = ChaosInjector(seed=1234)
        gateway, network, host, port = self.make_service(chaos, workers=2)
        sql = "select * from Grades where student_id = '11'"
        expected = [("11", "CS101", 3.5), ("11", "CS102", 4.0)]
        served = dropped = 0
        try:
            chaos.inject("net.before_send", "disconnect", probability=0.3)
            for _ in range(40):
                try:
                    client = ReproClient(host, port, user="11")
                except ConnectionDropped:
                    dropped += 1  # welcome frame hit the drop
                    continue
                try:
                    result = client.query(sql)
                    assert sorted(result.rows) == expected
                    served += 1
                except ConnectionDropped:
                    dropped += 1
                finally:
                    client.drop()
            assert served and dropped, (served, dropped)
            chaos.clear()
            # quiesce: sessions unwind, nothing is left open or in flight
            deadline = time.time() + 10
            while time.time() < deadline:
                if gateway.metrics.gauge("connections_open").value == 0:
                    break
                time.sleep(0.02)
            assert gateway.metrics.gauge("connections_open").value == 0
            with ReproClient(host, port, user="11") as client:
                assert sorted(client.query(sql).rows) == expected
        finally:
            network.stop()
            gateway.shutdown(drain=False)
