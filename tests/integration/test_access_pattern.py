"""Integration tests for access-pattern views (§6) beyond the paper
examples: chained dependent joins, executor behavior, helpers."""

import pytest

from repro.db import Database
from repro.errors import ParameterError, QueryRejectedError
from repro.accesspattern import access_pattern_views, describe_access_pattern


@pytest.fixture
def db():
    database = Database()
    database.execute_script(
        """
        create table Regions(region_id int primary key, rname varchar(20));
        create table Stores(store_id int primary key, region_id int not null,
            foreign key (region_id) references Regions);
        create table Sales(sale_id int primary key, store_id int not null,
            amount float,
            foreign key (store_id) references Stores);
        insert into Regions values (1, 'north'), (2, 'south');
        insert into Stores values (10, 1), (11, 1), (12, 2);
        insert into Sales values (100, 10, 5.0), (101, 10, 7.0),
            (102, 11, 2.0), (103, 12, 9.0);
        create authorization view AllRegions as select * from Regions;
        create authorization view StoresByRegion as
            select * from Stores where region_id = $$r;
        create authorization view SalesByStore as
            select * from Sales where store_id = $$s;
        """
    )
    for name in ("AllRegions", "StoresByRegion", "SalesByStore"):
        database.grant_public(name)
    return database


class TestChainedDependentJoins:
    def test_two_level_chain(self, db):
        """Regions -> Stores (via $$r) -> Sales (via $$s): the second
        dependent join anchors on a column produced by the first."""
        conn = db.connect(user_id="analyst", mode="non-truman")
        sql = (
            "select r.rname, sa.amount "
            "from Regions r, Stores st, Sales sa "
            "where st.region_id = r.region_id and sa.store_id = st.store_id"
        )
        decision = conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        assert sum(1 for s in decision.trace if s.rule == "AP") == 2
        truth = db.execute(sql)
        witness = db.run_plan(decision.witness, conn.session)
        assert sorted(truth.rows) == sorted(witness.rows)

    def test_partial_chain_with_constant(self, db):
        conn = db.connect(user_id="analyst", mode="non-truman")
        sql = (
            "select st.store_id, sa.amount from Stores st, Sales sa "
            "where st.region_id = 1 and sa.store_id = st.store_id"
        )
        decision = conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        truth = db.execute(sql)
        witness = db.run_plan(decision.witness, conn.session)
        assert sorted(truth.rows) == sorted(witness.rows)

    def test_unanchored_table_rejected(self, db):
        conn = db.connect(user_id="analyst", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query("select * from Sales")

    def test_aggregate_over_dependent_join(self, db):
        conn = db.connect(user_id="analyst", mode="non-truman")
        sql = (
            "select r.rname, sum(sa.amount) as total "
            "from Regions r, Stores st, Sales sa "
            "where st.region_id = r.region_id and sa.store_id = st.store_id "
            "group by r.rname"
        )
        decision = conn.check_validity(sql)
        assert decision.valid, decision.describe()
        truth = db.execute(sql)
        witness = db.run_plan(decision.witness, conn.session)
        assert sorted(truth.rows) == sorted(witness.rows)


class TestDirectAccessParamQueries:
    def test_query_on_view_requires_binding(self, db):
        conn = db.connect(user_id="analyst", mode="non-truman")
        with pytest.raises(ParameterError):
            conn.query("select * from SalesByStore")

    def test_query_on_view_with_binding(self, db):
        conn = db.connect(user_id="analyst", mode="non-truman")
        result = conn.query(
            "select amount from SalesByStore", access_params={"s": 10}
        )
        assert sorted(result.column("amount")) == [5.0, 7.0]

    def test_pin_via_in_list_not_supported(self, db):
        """A $$ pin requires a single pinned value; IN lists with more
        than one candidate must be rejected (no single instantiation)."""
        conn = db.connect(user_id="analyst", mode="non-truman")
        decision = conn.check_validity(
            "select amount from Sales where store_id in (10, 11)"
        )
        assert not decision.valid


class TestHelpers:
    def test_access_pattern_views_listing(self, db):
        names = {v.name for v in access_pattern_views(db)}
        assert names == {"StoresByRegion", "SalesByStore"}

    def test_describe(self, db):
        view = next(
            v for v in access_pattern_views(db) if v.name == "SalesByStore"
        )
        text = describe_access_pattern(view)
        assert "$$s" in text and "SalesByStore" in text
