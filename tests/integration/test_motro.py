"""Motro's annotated-partial-answer model (§7), as a comparison baseline."""

import pytest

from repro.db import Database
from repro.errors import UnsupportedFeatureError

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


@pytest.fixture
def db():
    database = Database()
    database.execute_script(UNIVERSITY_SCHEMA)
    database.execute_script(UNIVERSITY_DATA)
    database.execute_script(
        """
        create authorization view MyGrades as
            select * from Grades where student_id = $user_id;
        create authorization view AllCourses as
            select * from Courses;
        """
    )
    database.grant_public("MyGrades")
    database.grant_public("AllCourses")
    return database


class TestPartialAnswers:
    def test_partial_rows_with_annotation(self, db):
        conn = db.connect(user_id="11", mode="motro")
        result = conn.query("select course_id, grade from Grades")
        assert len(result) == 2  # only Alice's grades
        assert result.is_partial
        assert any("student_id = '11'" in note for note in result.annotations)

    def test_unrestricted_table_annotated_as_full(self, db):
        conn = db.connect(user_id="11", mode="motro")
        result = conn.query("select * from Courses")
        assert len(result) == 3
        assert any("all rows" in note for note in result.annotations)

    def test_unauthorized_table_yields_empty_with_note(self, db):
        conn = db.connect(user_id="11", mode="motro")
        result = conn.query("select * from Students")
        assert result.rows == []
        assert any("no rows" in note for note in result.annotations)

    def test_join_combines_annotations(self, db):
        conn = db.connect(user_id="11", mode="motro")
        result = conn.query(
            "select g.grade, c.name from Grades g, Courses c "
            "where g.course_id = c.course_id"
        )
        assert len(result) == 2
        assert len(result.annotations) == 2

    def test_user_where_clause_composes(self, db):
        conn = db.connect(user_id="11", mode="motro")
        result = conn.query(
            "select course_id from Grades where grade >= 3.9"
        )
        assert result.column("course_id") == ["CS102"]

    def test_multiple_fragment_views_or_together(self, db):
        db.execute(
            "create authorization view TopGrades as "
            "select * from Grades where grade >= 3.9"
        )
        db.grant_public("TopGrades")
        conn = db.connect(user_id="12", mode="motro")
        result = conn.query("select student_id, grade from Grades")
        # Bob's own grade (2.5) plus everyone's >= 3.9 grades
        assert sorted(result.rows) == [("11", 4.0), ("12", 2.5)]
        assert any(" OR " in note for note in result.annotations)

    def test_different_users_different_fragments(self, db):
        carol = db.connect(user_id="13", mode="motro")
        result = carol.query("select course_id, grade from Grades")
        assert result.rows == [("CS102", 3.0)]


class TestRefusals:
    """§7: 'set difference and aggregation can turn a partial answer
    into an incorrect answer' — Motro's model must refuse them."""

    def test_aggregate_refused(self, db):
        conn = db.connect(user_id="11", mode="motro")
        with pytest.raises(UnsupportedFeatureError):
            conn.query("select avg(grade) from Grades")

    def test_group_by_refused(self, db):
        conn = db.connect(user_id="11", mode="motro")
        with pytest.raises(UnsupportedFeatureError):
            conn.query("select course_id, count(*) from Grades group by course_id")

    def test_set_difference_refused(self, db):
        conn = db.connect(user_id="11", mode="motro")
        with pytest.raises(UnsupportedFeatureError):
            conn.query(
                "select course_id from Courses except "
                "select course_id from Grades"
            )

    def test_subquery_refused(self, db):
        conn = db.connect(user_id="11", mode="motro")
        with pytest.raises(UnsupportedFeatureError):
            conn.query(
                "select * from Courses where course_id in "
                "(select course_id from Grades)"
            )


class TestThreeModelContrast:
    """The §3/§4/§7 comparison in one test: silent modification (Truman),
    annotated modification (Motro), no modification (Non-Truman)."""

    def test_same_query_three_ways(self, db):
        from repro.errors import QueryRejectedError

        db.set_truman_view("Grades", "MyGrades")
        sql = "select student_id, grade from Grades"
        truth = db.execute(sql)

        truman = db.connect(user_id="11", mode="truman").query(sql)
        assert len(truman) == 2 and len(truth) == 4  # silently partial

        motro = db.connect(user_id="11", mode="motro").query(sql)
        assert sorted(motro.rows) == sorted(truman.rows)  # same rows...
        assert motro.is_partial  # ...but it SAYS so

        with pytest.raises(QueryRejectedError):
            db.connect(user_id="11", mode="non-truman").query(sql)
