"""Integration tests for the enforcement gateway (repro.service)."""

import threading
import time

import pytest

from repro.db import Database
from repro.errors import QueryRejectedError, ServiceOverloaded, ServiceShutdown
from repro.service import (
    EnforcementGateway,
    QueryRequest,
    RequestStatus,
)

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


@pytest.fixture
def db():
    database = Database()
    database.execute_script(UNIVERSITY_SCHEMA)
    database.execute_script(UNIVERSITY_DATA)
    database.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    database.execute(
        "create authorization view MyRegistrations as "
        "select * from Registered where student_id = $user_id"
    )
    database.execute(
        "create authorization view CoStudentGrades as "
        "select Grades.student_id, Grades.course_id, Grades.grade "
        "from Grades, Registered "
        "where Registered.student_id = $user_id "
        "  and Grades.course_id = Registered.course_id"
    )
    database.grant_public("MyGrades")
    database.grant_public("MyRegistrations")
    database.grant_public("CoStudentGrades")
    return database


@pytest.fixture
def gateway(db):
    gw = EnforcementGateway(db, workers=4, queue_size=32)
    yield gw
    gw.shutdown(drain=False)


def serial_outcome(db, request: QueryRequest):
    """(status, multiset of rows) of running a request serially."""
    session = db.connect(user_id=request.user, mode=request.mode).session
    try:
        result = db.execute_query(
            request.sql, session=session, mode=request.mode
        )
    except QueryRejectedError:
        return ("rejected", None)
    return ("ok", result.as_multiset())


class TestConcurrentCorrectness:
    def test_decisions_match_serial_execution(self, db, gateway):
        requests = []
        for user in ("11", "12", "13"):
            requests += [
                QueryRequest(
                    user=user,
                    sql=f"select grade from Grades where student_id = '{user}'",
                ),
                QueryRequest(user=user, sql="select * from Grades"),
                QueryRequest(
                    user=user,
                    sql=f"select course_id from Registered "
                    f"where student_id = '{user}'",
                ),
                QueryRequest(
                    user=user, sql="select count(*) from Courses", mode="open"
                ),
            ]
        expected = [serial_outcome(db, r) for r in requests]
        responses = gateway.execute_many(requests)
        for request, response, (status, rows) in zip(
            requests, responses, expected
        ):
            assert response.status.value == status, request.sql
            if rows is not None:
                assert response.result.as_multiset() == rows, request.sql

    def test_many_threads_submitting(self, gateway):
        """Closed-loop clients on top of the gateway's own worker pool."""
        errors = []

        def client(user):
            try:
                for _ in range(10):
                    response = gateway.execute(
                        QueryRequest(
                            user=user,
                            sql=f"select grade from Grades "
                            f"where student_id = '{user}'",
                        )
                    )
                    assert response.ok, response.error
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(user,))
            for user in ("11", "12", "13", "11", "12")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # repeats of the same (user, skeleton) must hit the shared cache
        assert gateway.cache.hits > 0


class TestDecisionsAndAudit:
    def test_rejected_query_carries_decision(self, gateway):
        response = gateway.execute(
            QueryRequest(user="11", sql="select * from Grades")
        )
        assert response.status is RequestStatus.REJECTED
        assert response.decision is not None
        assert not response.decision.valid
        assert "rejected" in response.error

    def test_accepted_query_records_rules_in_audit(self, gateway):
        response = gateway.execute(
            QueryRequest(
                user="11",
                sql="select grade from Grades where student_id = '11'",
            )
        )
        assert response.ok
        assert response.decision is not None and response.decision.valid
        record = gateway.audit.tail(1)[0]
        assert record.user == "11"
        assert record.status == "ok"
        assert record.decision in ("unconditional", "conditional")
        assert record.rules  # at least one inference rule fired
        assert record.latency_ms > 0
        # the audit signature is literal-stripped: the user id constant
        # must not appear verbatim
        assert "'11'" not in record.signature

    def test_timing_breakdown_reported(self, gateway):
        response = gateway.execute(
            QueryRequest(
                user="11",
                sql="select grade from Grades where student_id = '11'",
            )
        )
        timing = response.timing
        assert timing.total_s > 0
        assert timing.check_s > 0
        assert timing.execute_s > 0
        assert timing.total_s >= timing.check_s + timing.execute_s

    def test_stats_merge_all_layers(self, gateway):
        gateway.execute(
            QueryRequest(
                user="11",
                sql="select grade from Grades where student_id = '11'",
            )
        )
        stats = gateway.stats()
        for key in (
            "requests_ok",
            "cache_hit_rate",
            "pool_connections_created",
            "latency_ms_p95",
            "queue_capacity",
        ):
            assert key in stats
        assert "latency_ms_p95" in gateway.render_stats() or "latency_ms" in gateway.render_stats()


class TestCacheInvalidation:
    def test_conditional_decision_rechecked_after_dml(self, db, gateway):
        """Service-level version of the §5.6 safety property: a cached
        conditional decision must be re-checked once DML moves the data
        version — through the gateway's own DML path."""
        course = db.execute(
            "select course_id from Registered where student_id = '11' "
            "order by course_id limit 1"
        ).scalar()
        query = f"select * from Grades where course_id = '{course}'"

        first = gateway.execute(QueryRequest(user="11", sql=query))
        assert first.ok and first.decision.conditional

        # the registration that justified the decision disappears
        dml = gateway.execute(
            QueryRequest(
                user=None,
                mode="open",
                sql=f"delete from Registered where student_id = '11' "
                f"and course_id = '{course}'",
            )
        )
        assert dml.ok

        second = gateway.execute(QueryRequest(user="11", sql=query))
        assert second.status is RequestStatus.REJECTED
        assert not second.cache_hit  # stale entry was not served

        # restoring the registration restores (conditional) validity
        gateway.execute(
            QueryRequest(
                user=None,
                mode="open",
                sql=f"insert into Registered values ('11', '{course}')",
            )
        )
        third = gateway.execute(QueryRequest(user="11", sql=query))
        assert third.ok and third.decision.conditional

    def test_unconditional_decision_survives_dml(self, gateway):
        query = "select grade from Grades where student_id = '11'"
        first = gateway.execute(QueryRequest(user="11", sql=query))
        assert first.ok and first.decision.unconditional
        gateway.execute(
            QueryRequest(
                user=None,
                mode="open",
                sql="insert into Students values ('99', 'Zed', 'PartTime')",
            )
        )
        again = gateway.execute(QueryRequest(user="11", sql=query))
        assert again.ok and again.cache_hit

    def test_policy_change_invalidates_even_unconditional(self, db, gateway):
        """A \\grant (or CREATE VIEW) moves the policy epoch: decisions
        cached before it — including rejections — must be re-derived."""
        query = "select name from Students where student_id = '12'"
        before = gateway.execute(QueryRequest(user="11", sql=query))
        assert before.status is RequestStatus.REJECTED

        db.execute(
            "create authorization view AllStudents as select * from Students"
        )
        db.grant_public("AllStudents")

        after = gateway.execute(QueryRequest(user="11", sql=query))
        assert after.ok, after.error
        assert not after.cache_hit
        assert gateway.cache.policy_invalidations >= 1

    def test_revoke_invalidates_cached_acceptance(self, db, gateway):
        db.execute(
            "create authorization view AllCourses as select * from Courses"
        )
        db.grants.grant("AllCourses", "11")
        query = "select * from Courses"
        assert gateway.execute(QueryRequest(user="11", sql=query)).ok

        db.grants.revoke("AllCourses", "11")
        response = gateway.execute(QueryRequest(user="11", sql=query))
        assert response.status is RequestStatus.REJECTED


class TestRobustness:
    def test_overload_raises_structured_rejection(self, db):
        gw = EnforcementGateway(db, workers=1, queue_size=2)
        # hold the gateway's read lock so a DML request pins the only
        # worker in acquire_write — deterministic head-of-line blocking
        gw._rwlock.acquire_read()
        try:
            blocker = gw.submit(
                QueryRequest(
                    user=None, mode="open",
                    sql="insert into Courses values ('CS999', 'Blocking')",
                )
            )
            deadline = time.time() + 5
            while gw.metrics.gauge("workers_busy").value < 1:
                assert time.time() < deadline, "worker never became busy"
                time.sleep(0.001)
            # fill the admission queue, then overflow it
            queued = []
            with pytest.raises(ServiceOverloaded):
                for _ in range(gw.queue_size + 1):
                    queued.append(
                        gw.submit(
                            QueryRequest(
                                user=None, mode="open",
                                sql="select count(*) from Courses",
                            )
                        )
                    )
            assert len(queued) == gw.queue_size
            assert gw.metrics.counter("requests_overloaded").value >= 1
        finally:
            gw._rwlock.release_read()
        # previously admitted requests still complete
        assert blocker.result(timeout=30).ok
        for pending in queued:
            assert pending.result(timeout=30).ok
        gw.shutdown(drain=True)

    def test_deadline_exceeded_is_structured_not_blocking(self, gateway):
        response = gateway.execute(
            QueryRequest(user="11", sql="select * from MyGrades", deadline=0.0)
        )
        assert response.status is RequestStatus.TIMEOUT
        assert "deadline" in response.error
        assert response.result is None
        # the pool is alive and serves the next request normally
        ok = gateway.execute(
            QueryRequest(user="11", sql="select * from MyGrades")
        )
        assert ok.ok

    def test_graceful_shutdown_drains_inflight(self, db):
        gw = EnforcementGateway(db, workers=2, queue_size=32)
        pendings = [
            gw.submit(
                QueryRequest(
                    user="11",
                    sql="select grade from Grades where student_id = '11'",
                )
            )
            for _ in range(10)
        ]
        gw.shutdown(drain=True)
        assert all(p.done() for p in pendings)
        assert all(p.result().ok for p in pendings)
        with pytest.raises(ServiceShutdown):
            gw.submit(QueryRequest(user="11", sql="select 1"))

    def test_hard_shutdown_cancels_queued(self, db):
        gw = EnforcementGateway(db, workers=1, queue_size=32)
        gw._rwlock.acquire_read()
        try:
            # head-of-line DML blocker so later requests stay queued
            blocker = gw.submit(
                QueryRequest(
                    user=None, mode="open",
                    sql="insert into Courses values ('CS998', 'Blocking')",
                )
            )
            deadline = time.time() + 5
            while gw.metrics.gauge("workers_busy").value < 1:
                assert time.time() < deadline, "worker never became busy"
                time.sleep(0.001)
            pendings = [
                gw.submit(QueryRequest(user="11", sql="select * from MyGrades"))
                for _ in range(5)
            ]
            cancel = threading.Thread(
                target=gw.shutdown, kwargs={"drain": False}
            )
            cancel.start()
            # queued requests are answered CANCELLED while the worker is
            # still stuck on the blocker
            for pending in pendings:
                assert pending.result(timeout=30).status is RequestStatus.CANCELLED
        finally:
            gw._rwlock.release_read()
        cancel.join(timeout=30)
        assert blocker.result(timeout=30).ok

    def test_worker_survives_internal_errors(self, gateway):
        bad = gateway.execute(QueryRequest(user="11", sql="selekt nonsense"))
        assert bad.status is RequestStatus.ERROR
        ok = gateway.execute(
            QueryRequest(user="11", sql="select * from MyGrades")
        )
        assert ok.ok


class TestPooling:
    def test_connections_reused_per_user(self, gateway):
        for _ in range(5):
            gateway.execute(
                QueryRequest(user="11", sql="select * from MyGrades")
            )
        stats = gateway.pool.stats()
        assert stats["pool_connections_reused"] > 0

    def test_parameterized_sessions_not_pooled(self, db, gateway):
        response = gateway.execute(
            QueryRequest(
                user="11",
                sql="select * from MyGrades",
                params={"time": "09:00"},
            )
        )
        assert response.ok
        # the parameterized session must not be in the idle pool
        conn = gateway.pool.acquire("11", "non-truman")
        assert conn.session.time is None
        gateway.pool.release(conn)

    def test_database_serve_helper(self, db):
        with db.serve(workers=2) as gw:
            assert gw.execute(
                QueryRequest(user="11", sql="select * from MyGrades")
            ).ok


class TestDurableGateway:
    """Group commit and drain-then-checkpoint on a durable database."""

    def make_durable(self, tmp_path):
        db = Database.open(str(tmp_path / "gw-data"))
        db.execute("create table Ledger(id int primary key, v int)")
        return db

    def test_concurrent_dml_group_commits(self, tmp_path):
        db = self.make_durable(tmp_path)
        gateway = EnforcementGateway(db, workers=8, queue_size=256)
        try:
            requests = [
                QueryRequest(
                    user=None,
                    sql=f"insert into Ledger values ({i}, {i})",
                    mode="open",
                )
                for i in range(64)
            ]
            responses = gateway.execute_many(requests)
            assert all(r.status is RequestStatus.OK for r in responses)
            stats = gateway.stats()
            assert stats["wal_records"] >= 64 + 1  # +1 for the CREATE
            # group commit: concurrent workers share fsyncs, so flushes
            # stay below one-per-record even with per-request commits
            assert stats["wal_fsyncs"] <= stats["wal_commits"]
            assert stats["wal_synced_lsn"] == stats["wal_last_lsn"]
        finally:
            gateway.shutdown(drain=True)
        assert len(db.table("Ledger")) == 64

    def test_drain_shutdown_checkpoints(self, tmp_path):
        db = self.make_durable(tmp_path)
        gateway = EnforcementGateway(db, workers=4)
        gateway.execute(
            QueryRequest(user=None, sql="insert into Ledger values (1, 1)",
                         mode="open")
        )
        gateway.shutdown(drain=True)
        assert db.durability.checkpoints >= 1
        db.close(checkpoint=False)
        # the restart replays nothing: shutdown folded the WAL tail
        recovered = Database.open(str(tmp_path / "gw-data"))
        assert recovered.durability.recovery_info["wal_records_replayed"] == 0
        assert len(recovered.table("Ledger")) == 1
        recovered.close()

    def test_rejected_dml_still_commits_cleanly(self, tmp_path):
        db = self.make_durable(tmp_path)
        gateway = EnforcementGateway(db, workers=2)
        try:
            ok = gateway.execute(
                QueryRequest(user=None, sql="insert into Ledger values (1, 1)",
                             mode="open")
            )
            dup = gateway.execute(
                QueryRequest(user=None, sql="insert into Ledger values (1, 2)",
                             mode="open")
            )
            assert ok.status is RequestStatus.OK
            assert dup.status is RequestStatus.ERROR
        finally:
            gateway.shutdown(drain=True)
        db.close(checkpoint=False)
        recovered = Database.open(str(tmp_path / "gw-data"))
        assert dict(recovered.table("Ledger").rows_with_ids()) == {0: (1, 1)}
        recovered.close()

    def test_stats_merge_includes_wal_counters(self, tmp_path):
        db = self.make_durable(tmp_path)
        gateway = EnforcementGateway(db, workers=2)
        try:
            stats = gateway.stats()
            for key in ("wal_records", "wal_fsyncs", "snapshot_lsn",
                        "sync_policy"):
                assert key in stats
            assert "wal_records" in gateway.render_stats()
        finally:
            gateway.shutdown(drain=True)

    def test_in_memory_gateway_has_no_wal_stats(self, gateway):
        assert "wal_records" not in gateway.stats()
