"""Nested subqueries ([NOT] IN / [NOT] EXISTS) — the paper's 'handling
nested queries' future-work item, implemented as semi/anti joins."""

import pytest

from repro.db import Database
from repro.errors import QueryRejectedError, UnsupportedFeatureError

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA


@pytest.fixture
def db():
    database = Database()
    database.execute_script(UNIVERSITY_SCHEMA)
    database.execute_script(UNIVERSITY_DATA)
    return database


class TestExecution:
    def test_in_subquery(self, db):
        result = db.execute(
            "select name from Students where student_id in "
            "(select student_id from FeesPaid)"
        )
        assert sorted(result.column("name")) == ["Alice", "Carol"]

    def test_not_in_subquery(self, db):
        result = db.execute(
            "select name from Students where student_id not in "
            "(select student_id from FeesPaid)"
        )
        assert sorted(result.column("name")) == ["Bob", "Dave"]

    def test_not_in_with_null_in_subquery_is_empty(self, db):
        # NULL member makes NOT IN never TRUE (SQL null-aware semantics)
        db.execute("create table N(x varchar(10))")
        db.execute("insert into N values ('11'), (null)")
        result = db.execute(
            "select name from Students where student_id not in (select x from N)"
        )
        assert result.rows == []

    def test_in_with_null_in_subquery_matches_only_equal(self, db):
        db.execute("create table N(x varchar(10))")
        db.execute("insert into N values ('11'), (null)")
        result = db.execute(
            "select name from Students where student_id in (select x from N)"
        )
        assert result.column("name") == ["Alice"]

    def test_exists(self, db):
        result = db.execute(
            "select count(*) from Students where exists "
            "(select 1 from FeesPaid where student_id = '11')"
        )
        assert result.scalar() == 4  # uncorrelated: inner non-empty

    def test_not_exists_empty_inner(self, db):
        result = db.execute(
            "select count(*) from Students where not exists "
            "(select 1 from FeesPaid where student_id = 'nope')"
        )
        assert result.scalar() == 4

    def test_in_subquery_with_expression_operand(self, db):
        result = db.execute(
            "select course_id from Grades where grade + 1 in "
            "(select grade from Grades where student_id = '11')"
        )
        # grades: 3.5,2.5,4.0,3.0; +1: 4.5,3.5,5.0,4.0; Alice's: {3.5,4.0}
        assert sorted(result.column("course_id")) == ["CS101", "CS102"]

    def test_combined_with_plain_predicates(self, db):
        result = db.execute(
            "select name from Students where type = 'FullTime' and "
            "student_id in (select student_id from FeesPaid)"
        )
        assert sorted(result.column("name")) == ["Alice", "Carol"]

    def test_subquery_under_or_rejected(self, db):
        with pytest.raises(UnsupportedFeatureError):
            db.execute(
                "select name from Students where type = 'x' or "
                "student_id in (select student_id from FeesPaid)"
            )

    def test_correlated_subquery_rejected(self, db):
        with pytest.raises(UnsupportedFeatureError):
            db.execute(
                "select name from Students s where s.student_id in "
                "(select student_id from FeesPaid where student_id = s.student_id)"
            )

    def test_multi_column_in_subquery_rejected(self, db):
        from repro.errors import BindError

        with pytest.raises(BindError):
            db.execute(
                "select name from Students where student_id in "
                "(select student_id, course_id from Registered)"
            )


class TestValidity:
    """Rule U2/C2 over the semijoin: valid iff both sides are valid."""

    @pytest.fixture
    def secured(self, db):
        db.execute_script(
            """
            create authorization view MyGrades as
                select * from Grades where student_id = $user_id;
            create authorization view MyRegistrations as
                select * from Registered where student_id = $user_id;
            """
        )
        db.grant_public("MyGrades")
        db.grant_public("MyRegistrations")
        return db

    def test_both_sides_valid_accepted(self, secured):
        conn = secured.connect(user_id="11", mode="non-truman")
        sql = (
            "select grade from Grades where student_id = '11' and course_id in "
            "(select course_id from Registered where student_id = '11')"
        )
        decision = conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        truth = secured.execute(sql)
        witness = secured.run_plan(decision.witness, conn.session)
        assert sorted(truth.rows) == sorted(witness.rows)

    def test_not_in_form(self, secured):
        conn = secured.connect(user_id="11", mode="non-truman")
        sql = (
            "select course_id from Registered where student_id = '11' "
            "and course_id not in "
            "(select course_id from Grades where student_id = '11')"
        )
        decision = conn.check_validity(sql)
        assert decision.valid, decision.describe()
        truth = secured.execute(sql)
        witness = secured.run_plan(decision.witness, conn.session)
        assert sorted(truth.rows) == sorted(witness.rows)

    def test_invalid_inner_rejected(self, secured):
        conn = secured.connect(user_id="11", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query(
                "select grade from Grades where student_id = '11' and course_id in "
                "(select course_id from Registered)"  # all registrations: invalid
            )

    def test_invalid_outer_rejected(self, secured):
        conn = secured.connect(user_id="11", mode="non-truman")
        with pytest.raises(QueryRejectedError):
            conn.query(
                "select grade from Grades where course_id in "
                "(select course_id from Registered where student_id = '11')"
            )

    def test_exists_gate(self, secured):
        conn = secured.connect(user_id="11", mode="non-truman")
        sql = (
            "select course_id from Registered where student_id = '11' "
            "and exists (select 1 from Grades where student_id = '11' "
            "and grade >= 3.9)"
        )
        decision = conn.check_validity(sql)
        assert decision.unconditional, decision.describe()
        truth = secured.execute(sql)
        witness = secured.run_plan(decision.witness, conn.session)
        assert sorted(truth.rows) == sorted(witness.rows)


class TestParseRender:
    def test_round_trip(self):
        from repro.sql import parse_statement, render

        for sql in (
            "select a from T where b in (select c from U)",
            "select a from T where b not in (select c from U where d = 1)",
            "select a from T where exists (select 1 from U)",
            "select a from T where not exists (select 1 from U)",
        ):
            stmt = parse_statement(sql)
            assert parse_statement(render(stmt)) == stmt
