"""Differential testing: prepared execution vs the fresh pipeline.

Every query of the engine-differential case tables (the open-mode
catalog, the paper's worked examples, and the NULL/empty corners) runs
twice through the prepared-template path (cold build, then hot hit) and
once through the standard parse → check → plan path, under each
access-control mode.  The fresh path is the oracle: the prepared path
must be observationally identical — same rows *in the same order*, same
columns, same validity decisions, same rejection messages, and (at the
gateway) identical audit records.

Rejections matter as much as answers here: most catalog queries are
unanswerable from the Non-Truman auth views, and a cached template must
reject with byte-for-byte the same error as a fresh check.
"""

import pytest

from repro.db import Database
from repro.errors import QueryRejectedError, ReproError
from repro.instrument import COUNTERS
from repro.prepared import PREPARABLE_MODES

from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA
from tests.integration.test_differential_engines import (
    CATALOG,
    PAPER_QUERIES,
    TestNullAndEmptyCorners,
)

NULL_CORNERS = TestNullAndEmptyCorners.QUERIES

AUTH_VIEWS = """
create authorization view MyGrades as
    select * from Grades where student_id = $user_id;
create authorization view MyRegistrations as
    select * from Registered where student_id = $user_id;
create authorization view AvgGrades as
    select course_id, avg(grade) as avg_grade from Grades
    group by course_id;
create authorization view AllStudents as
    select * from Students;
create authorization view FeesPaidView as
    select * from FeesPaid;
"""


def outcome(db, sql, session, mode, engine, prepared):
    """Terminal observable of one execution: rows or typed failure."""
    try:
        result = db.execute_query(
            sql, session=session, mode=mode, engine=engine, prepared=prepared
        )
    except QueryRejectedError as exc:
        return ("rejected", str(exc))
    except ReproError as exc:
        return ("error", type(exc).__name__, str(exc))
    except Exception as exc:  # pre-existing escapes (e.g. MatchError on
        # outer joins) must still be *identical* escapes on both paths
        return ("raised", type(exc).__name__, str(exc))
    return ("ok", result.columns, list(result.rows))


def assert_prepared_matches_fresh(db, sql, session, mode, engine="row"):
    fresh = outcome(db, sql, session, mode, engine, prepared=False)
    cold = outcome(db, sql, session, mode, engine, prepared=True)
    hot = outcome(db, sql, session, mode, engine, prepared=True)
    assert cold == fresh, (
        f"cold prepared diverges on {sql!r} [{mode}/{engine}]:\n"
        f"  fresh: {fresh}\n  prep:  {cold}"
    )
    assert hot == fresh, (
        f"hot prepared diverges on {sql!r} [{mode}/{engine}]:\n"
        f"  fresh: {fresh}\n  prep:  {hot}"
    )
    return fresh


@pytest.fixture(scope="module")
def university():
    db = Database()
    db.execute_script(UNIVERSITY_SCHEMA)
    db.execute_script(UNIVERSITY_DATA)
    db.execute_script(AUTH_VIEWS)
    for view in ("MyGrades", "MyRegistrations", "AvgGrades",
                 "AllStudents", "FeesPaidView"):
        db.grant_public(view)
    return db


@pytest.fixture(scope="module")
def corners_db():
    db = Database()
    db.execute("create table T(k int, v float, tag varchar(8))")
    db.execute("create table Empty(k int, v float)")
    db.execute("create table N(k int, v float)")
    db.execute_script(
        """
        insert into T values (1, 1.5, 'a');
        insert into T values (2, null, 'b');
        insert into T values (3, 2.5, null);
        insert into T values (null, null, 'c');
        insert into N values (null, null);
        insert into N values (null, null);
        """
    )
    return db


class TestCatalogDifferential:
    @pytest.mark.parametrize("sql", CATALOG, ids=range(len(CATALOG)))
    @pytest.mark.parametrize("mode", PREPARABLE_MODES)
    def test_modes(self, university, sql, mode):
        session = university.connect(user_id="11", mode=mode).session
        assert_prepared_matches_fresh(university, sql, session, mode)

    @pytest.mark.parametrize("sql", CATALOG, ids=range(len(CATALOG)))
    def test_vectorized_open(self, university, sql):
        session = university.connect(user_id="11", mode="open").session
        assert_prepared_matches_fresh(
            university, sql, session, "open", engine="vectorized"
        )


class TestPaperExamplesDifferential:
    @pytest.mark.parametrize(
        "sql", PAPER_QUERIES, ids=range(len(PAPER_QUERIES))
    )
    @pytest.mark.parametrize("mode", PREPARABLE_MODES)
    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_modes(self, university, sql, mode, engine):
        session = university.connect(user_id="11", mode=mode).session
        assert_prepared_matches_fresh(
            university, sql, session, mode, engine=engine
        )

    def test_decisions_match_fresh(self, university):
        """The decision object a cached template serves must agree with
        a fresh check: same validity, same reason."""
        from repro.prepared.pipeline import (
            decide_prepared,
            get_or_build_template,
            resolve_signature,
        )

        session = university.connect(user_id="11", mode="non-truman").session
        for sql in PAPER_QUERIES:
            skeleton, literals, text = resolve_signature(university, sql)
            template, _ = get_or_build_template(
                university, skeleton, literals, session, "non-truman", text
            )
            first = decide_prepared(
                university, template, skeleton, literals, session
            )
            again = decide_prepared(
                university, template, skeleton, literals, session
            )
            fresh = university.check_validity(sql, session)
            assert again.from_cache
            assert (first.validity, first.reason) == (
                fresh.validity,
                fresh.reason,
            )
            assert (again.validity, again.reason) == (
                fresh.validity,
                fresh.reason,
            )


class TestNullCornersDifferential:
    @pytest.mark.parametrize(
        "sql", NULL_CORNERS, ids=range(len(NULL_CORNERS))
    )
    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_open(self, corners_db, sql, engine):
        session = corners_db.connect(mode="open").session
        assert_prepared_matches_fresh(
            corners_db, sql, session, "open", engine=engine
        )


class TestZeroWorkHit:
    """A hot template hit must do *no* parse, check, plan, or pushdown
    work — verified with the stage instrumentation counters."""

    def test_database_hot_hit(self, university):
        session = university.connect(user_id="11", mode="non-truman").session
        sql = "select grade from Grades where student_id = '11'"
        university.execute_query(
            sql, session=session, mode="non-truman", prepared=True
        )
        snapshot = COUNTERS.snapshot()
        result = university.execute_query(
            sql, session=session, mode="non-truman", prepared=True
        )
        delta = COUNTERS.delta_since(snapshot)
        assert result.rows
        assert delta.get("sql.parse", 0) == 0
        assert delta.get("validity.check", 0) == 0
        assert delta.get("plan.build", 0) == 0
        assert delta.get("plan.push", 0) == 0
        assert delta.get("prepared.bind") == 1


class TestGatewayAuditParity:
    """Two gateways over identical databases — one with prepared
    statements, one without — must write identical audit records."""

    AUDIT_FIELDS = ("user", "mode", "signature", "status", "decision",
                    "error")

    def _make_gateway(self, prepared):
        from repro.service import EnforcementGateway

        db = Database()
        db.execute_script(UNIVERSITY_SCHEMA)
        db.execute_script(UNIVERSITY_DATA)
        db.execute_script(AUTH_VIEWS)
        for view in ("MyGrades", "MyRegistrations", "AvgGrades",
                     "AllStudents", "FeesPaidView"):
            db.grant_public(view)
        return EnforcementGateway(
            db, workers=2, prepared_statements=prepared
        )

    def _record_key(self, record):
        return tuple(getattr(record, f) for f in self.AUDIT_FIELDS)

    def test_audit_records_identical(self):
        from repro.service import QueryRequest

        queries = PAPER_QUERIES + CATALOG[:10]
        with self._make_gateway(True) as prep_gw, \
                self._make_gateway(False) as fresh_gw:
            for sql in queries:
                for _ in range(2):  # cold + hot
                    for mode in PREPARABLE_MODES:
                        request = QueryRequest(
                            user="11", sql=sql, mode=mode
                        )
                        rp = prep_gw.execute(request)
                        rf = fresh_gw.execute(request)
                        assert rp.status == rf.status, (sql, mode)
                        assert rp.error == rf.error, (sql, mode)
                        assert rp.rows == rf.rows, (sql, mode)
            prep_records = [
                self._record_key(r) for r in prep_gw.audit.tail(10_000)
            ]
            fresh_records = [
                self._record_key(r) for r in fresh_gw.audit.tail(10_000)
            ]
            assert prep_records == fresh_records
