"""System tests for relationship-tuple policies (repro.rebac).

The differential gate: the collab workload served under *compiled*
ReBAC authorization views must be byte-identical — rows, rejection
messages, audit tuples — to the same workload under *hand-authored*
views (the DDL a DBA following the paper's idiom would write), across
both execution engines, on a sharded coordinator, and on its replicas.

Plus: the epoch-consistency guarantee under a revoke-tuple storm
(0 stale answers), bounded replica lag via auto-ship, durability
round-trips (WAL replay and snapshot restore), and the ``\\explain``
decision tracer naming tuple chains for accepted and denied queries.
"""

import io
import threading
import time

import pytest

from repro.authviews.session import SessionContext
from repro.cli import Shell, build_database
from repro.cluster import ClusterCoordinator
from repro.db import Database
from repro.errors import QueryRejectedError, ReproError
from repro.rebac import attach_rebac
from repro.rebac.trace import explain_query, render_report
from repro.service import EnforcementGateway, QueryRequest
from repro.service.clock import ManualClock
from repro.workloads.collab import (
    CollabConfig,
    build_collab,
    collab_namespace,
    user_name,
)

CONFIG = CollabConfig()
TIME = CONFIG.base_time

#: the DDL a DBA would write by hand for the collab policy — the
#: compiler must behave exactly like this (the differential gate)
HAND_SCHEMA = """
create table RebacGrants(
    object_type varchar(20),
    object_id varchar(40),
    relation varchar(20),
    user_id varchar(40),
    expires_at float,
    primary key (object_type, object_id, relation, user_id)
);
"""

HAND_VIEWS = [
    """create authorization view RebacDocumentViewer as
    select Documents.doc_id, Documents.folder_id, Documents.title, Documents.content
    from Documents, RebacGrants
    where RebacGrants.object_type = 'document'
      and RebacGrants.object_id = Documents.doc_id
      and RebacGrants.relation = 'viewer'
      and RebacGrants.user_id = $user_id
      and RebacGrants.expires_at > $time""",
    """create authorization view RebacDocumentEditor as
    select Documents.doc_id, Documents.folder_id, Documents.title, Documents.content
    from Documents, RebacGrants
    where RebacGrants.object_type = 'document'
      and RebacGrants.object_id = Documents.doc_id
      and RebacGrants.relation = 'editor'
      and RebacGrants.user_id = $user_id
      and RebacGrants.expires_at > $time""",
    """create authorization view RebacFolderViewer as
    select Folders.folder_id, Folders.name
    from Folders, RebacGrants
    where RebacGrants.object_type = 'folder'
      and RebacGrants.object_id = Folders.folder_id
      and RebacGrants.relation = 'viewer'
      and RebacGrants.user_id = $user_id
      and RebacGrants.expires_at > $time""",
    """create authorization view RebacFolderEditor as
    select Folders.folder_id, Folders.name
    from Folders, RebacGrants
    where RebacGrants.object_type = 'folder'
      and RebacGrants.object_id = Folders.folder_id
      and RebacGrants.relation = 'editor'
      and RebacGrants.user_id = $user_id
      and RebacGrants.expires_at > $time""",
    """create authorization view RebacMyGrants as
    select RebacGrants.object_type, RebacGrants.object_id,
           RebacGrants.relation, RebacGrants.expires_at
    from RebacGrants
    where RebacGrants.user_id = $user_id
      and RebacGrants.expires_at > $time""",
]


MINI_SCHEMA = """
create table Folders(
    folder_id varchar(20) primary key,
    name varchar(40) not null
);
create table Documents(
    doc_id varchar(20) primary key,
    folder_id varchar(20) not null,
    title varchar(40) not null,
    content varchar(120) not null,
    foreign key (folder_id) references Folders
);
"""


def mini_db(clock=None):
    """A tiny collab-shaped database with the compiled policy attached."""
    db = Database()
    db.execute_script(MINI_SCHEMA)
    attach_rebac(db, collab_namespace(), clock=clock)
    db.execute("insert into Folders values ('f', 'shared')")
    db.execute("insert into Documents values ('d', 'f', 'doc', 'body')")
    return db


def build_compiled(db=None):
    db = build_collab(CONFIG, db=db)
    if isinstance(db, ClusterCoordinator):
        db.sync_replicas()
    return db


def build_hand_authored(reference):
    """The same instance under hand-written policy DDL.

    Base tables from the workload generator (no compiled policy); the
    RebacGrants relation and the authorization views typed in by hand,
    with the grant rows inserted in the reference database's row order
    so scans are comparable row for row.
    """
    db = build_collab(CONFIG, deploy_policy=False)
    db.execute_script(HAND_SCHEMA)
    for _, row in reference.table("RebacGrants").rows_with_ids():
        object_type, object_id, relation, user_id, expires_at = row
        db.execute(
            f"insert into RebacGrants values ('{object_type}', "
            f"'{object_id}', '{relation}', '{user_id}', {expires_at!r})",
            sync=False,
        )
    for ddl in HAND_VIEWS:
        db.execute(ddl, sync=False)
        name = ddl.split()[3]
        db.grant_public(name)
    db._durable_commit()
    return db


def corpus():
    """Accepted and rejected queries across users, objects, and modes."""
    insiders = [user_name(0, 0), user_name(1, 0)]
    outsider = "nobody"
    queries = [
        ("select * from Documents", None, "open"),
        ("select * from Folders", None, "open"),
        ("select count(*) from RebacGrants", None, "open"),
        (
            "select d.title, f.name from Documents d, Folders f "
            "where d.folder_id = f.folder_id",
            None,
            "open",
        ),
    ]
    for user in insiders:
        queries.extend(
            [
                (
                    "select title from Documents where doc_id = 'd0'",
                    user,
                    "non-truman",
                ),
                (
                    "select doc_id, content from Documents "
                    "where doc_id = 'd1'",
                    user,
                    "non-truman",
                ),
                (
                    "select name from Folders where folder_id = 'f0_7'",
                    user,
                    "non-truman",
                ),
                ("select * from Documents", user, "non-truman"),
                (
                    "select object_id, relation from RebacMyGrants",
                    user,
                    "non-truman",
                ),
            ]
        )
    queries.extend(
        [
            (
                "select title from Documents where doc_id = 'd0'",
                outsider,
                "non-truman",
            ),
            ("select * from Folders", outsider, "non-truman"),
        ]
    )
    return queries


def run_one(db, sql, user, mode, engine):
    try:
        result = db.execute_query(
            sql,
            session=SessionContext(user_id=user, time=TIME),
            mode=mode,
            engine=engine,
        )
    except ReproError as exc:
        return ("err", type(exc).__name__, str(exc))
    return ("ok", tuple(result.columns), tuple(result.rows))


@pytest.fixture(scope="module")
def compiled_db():
    return build_compiled()


@pytest.fixture(scope="module")
def hand_db(compiled_db):
    return build_hand_authored(compiled_db)


@pytest.fixture(scope="module")
def cluster_db():
    return build_compiled(db=ClusterCoordinator(shards=2, replicas=1))


class TestDifferentialGate:
    """Compiled ReBAC views ≡ hand-authored views, byte for byte."""

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_compiled_matches_hand_authored(
        self, compiled_db, hand_db, engine
    ):
        mismatches = []
        for sql, user, mode in corpus():
            expected = run_one(hand_db, sql, user, mode, engine)
            actual = run_one(compiled_db, sql, user, mode, engine)
            if expected != actual:
                mismatches.append((engine, sql, user, expected, actual))
        assert mismatches == []

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_cluster_matches_hand_authored(self, hand_db, cluster_db, engine):
        mismatches = []
        for sql, user, mode in corpus():
            expected = run_one(hand_db, sql, user, mode, engine)
            actual = run_one(cluster_db, sql, user, mode, engine)
            if expected != actual:
                mismatches.append((engine, sql, user, expected, actual))
        assert mismatches == []

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_replica_matches_hand_authored(self, hand_db, cluster_db, engine):
        replica = cluster_db.replicas[0]
        mismatches = []
        for sql, user, mode in corpus():
            expected = run_one(hand_db, sql, user, mode, engine)
            actual = run_one(replica.database, sql, user, mode, engine)
            if expected != actual:
                mismatches.append((engine, sql, user, expected, actual))
        assert mismatches == []

    def test_audit_tuples_identical(self, compiled_db, hand_db):
        """The gateway's audit trail — user, mode, status, decision,
        rules, signature — must not reveal which policy authored the
        views."""

        def audit_run(db):
            gateway = EnforcementGateway(db, workers=1, name="audit")
            try:
                for sql, user, mode in corpus():
                    gateway.execute(
                        QueryRequest(
                            user=user,
                            sql=sql,
                            mode=mode,
                            params={"time": TIME},
                        )
                    )
                return [
                    (
                        record.user,
                        record.mode,
                        record.status,
                        record.decision,
                        tuple(record.rules),
                        record.signature,
                    )
                    for record in gateway.audit.tail(len(corpus()))
                ]
            finally:
                gateway.shutdown(drain=True)

        assert audit_run(compiled_db) == audit_run(hand_db)

    def test_rejection_message_byte_identical(self, compiled_db, hand_db):
        sql = "select title from Documents where doc_id = 'd0'"
        session = SessionContext(user_id="nobody", time=TIME)
        messages = []
        for db in (hand_db, compiled_db):
            with pytest.raises(QueryRejectedError) as exc:
                db.execute_query(sql, session=session, mode="non-truman")
            messages.append(str(exc.value))
        assert messages[0] == messages[1]
        assert messages[0].startswith("query rejected by Non-Truman model:")


class TestExplainTracing:
    def test_accepted_query_names_the_tuple_chain(self, compiled_db):
        user = user_name(0, 0)
        report = explain_query(
            compiled_db,
            "select title from Documents where doc_id = 'd0'",
            SessionContext(user_id=user, time=TIME),
        )
        assert report.valid
        assert "RebacDocumentViewer" in report.views_used
        assert len(report.chains) == 1
        chain = report.chains[0]
        assert chain.object == "document:d0"
        assert chain.relation == "viewer"
        # the ~10-link chain: doc -> folders -> team userset -> user
        assert len(chain.chain) == 10
        assert chain.chain[0] == "(document:d0, parent, folder:f0_7)"
        assert chain.chain[-1] == "(team:eng, member, user:u0_0)"

    def test_rejected_query_names_the_missing_chain(self, compiled_db):
        report = explain_query(
            compiled_db,
            "select title from Documents where doc_id = 'd0'",
            SessionContext(user_id="nobody", time=TIME),
        )
        assert not report.valid
        assert (
            "no relationship-tuple chain grants 'viewer' on document:d0 "
            "to user 'nobody'" in report.denials
        )

    def test_render_report_round_trips_the_wire_shape(self, compiled_db):
        user = user_name(0, 0)
        report = explain_query(
            compiled_db,
            "select title from Documents where doc_id = 'd0'",
            SessionContext(user_id=user, time=TIME),
        )
        lines = render_report(report)
        assert any(line.startswith("tuple chain: document:d0") for line in lines)
        as_dict = report.as_dict()
        assert as_dict["validity"] == "conditional"
        assert as_dict["chains"][0]["chain"] == list(report.chains[0].chain)

    def test_cli_explain_transcript(self, compiled_db):
        out = io.StringIO()
        shell = Shell(compiled_db, out=out, query_timeout=None)
        script = (
            "\\user u0_0\n"
            "\\time 1000000\n"
            "\\explain select title from Documents where doc_id = 'd0'\n"
            "\\user nobody\n"
            "\\explain select title from Documents where doc_id = 'd0'\n"
            "\\quit\n"
        )
        shell.run(io.StringIO(script))
        text = out.getvalue()
        # the plan still prints (as before the tracer existed) ...
        assert "Project" in text and "Rel(Documents" in text
        # ... followed by the accepted decision with its chain ...
        assert "views used: RebacDocumentViewer" in text
        assert "tuple chain: document:d0 viewer for user 'u0_0'" in text
        assert "(team:eng, member, user:u0_0)" in text
        # ... and the denial for the outsider
        assert (
            "denied: no relationship-tuple chain grants 'viewer' on "
            "document:d0 to user 'nobody'" in text
        )

    def test_expired_chain_is_named(self):
        db = mini_db()
        db.rebac.write_tuple(
            "document:d", "viewer", "user:alice", expires_at=500.0
        )
        report = explain_query(
            db,
            "select title from Documents where doc_id = 'd'",
            SessionContext(user_id="alice", time=600.0),
        )
        assert not report.valid
        assert (
            "the tuple chain granting 'viewer' on document:d to user "
            "'alice' expired at 500.0" in report.denials
        )


class TestTupleWritePropagation:
    """Tuple writes are policy writes: epochs, replicas, invalidation."""

    def test_write_and_revoke_visible_on_replica(self):
        db = build_compiled(db=ClusterCoordinator(shards=2, replicas=1))
        user = "newcomer"
        sql = "select title from Documents where doc_id = 'd0'"
        session = SessionContext(user_id=user, time=TIME)
        replica = db.replicas[0].database
        with pytest.raises(QueryRejectedError):
            replica.execute_query(sql, session=session, mode="non-truman")
        db.rebac.write_tuple("document:d0", "viewer", f"user:{user}")
        db.sync_replicas()
        assert replica.execute_query(
            sql, session=session, mode="non-truman"
        ).rows == [("plan 0",)]
        db.rebac.delete_tuple("document:d0", "viewer", f"user:{user}")
        db.sync_replicas()
        with pytest.raises(QueryRejectedError):
            replica.execute_query(sql, session=session, mode="non-truman")

    def test_unshipped_revoke_disqualifies_replicas(self):
        """The epoch gate: a revoked tuple not yet shipped must pull
        every replica out of read routing immediately."""
        db = build_compiled(db=ClusterCoordinator(shards=2, replicas=1))
        user = "gated"
        db.rebac.write_tuple("document:d0", "viewer", f"user:{user}")
        db.sync_replicas()
        assert db.route_read() is not None
        for shipper in db.durability.shippers:
            shipper.paused = True
        db.rebac.delete_tuple("document:d0", "viewer", f"user:{user}")
        # policy epoch bumped at append: no replica is fit to serve
        assert db.route_read() is None
        for shipper in db.durability.shippers:
            shipper.paused = False
        db.sync_replicas()
        assert db.route_read() is not None

    def test_revoke_tuple_storm_zero_stale(self):
        """Tuple churn racing routed reads: an OK answer for the
        churned user is only legal if a granting state overlapped the
        request — the flip-counter witness from the grant/revoke storm,
        applied to relationship tuples."""
        db = build_compiled(db=ClusterCoordinator(shards=2, replicas=2))
        user = "stormy"
        subject = f"user:{user}"
        gateway = EnforcementGateway(db, workers=4)
        state_lock = threading.Lock()
        state = [0, False]  # (flip counter, currently granted)
        stale = []
        stop = threading.Event()

        def snapshot():
            with state_lock:
                return state[0], state[1]

        def churn():
            while not stop.is_set():
                with state_lock:
                    db.rebac.write_tuple("document:d0", "viewer", subject)
                    state[0] += 1
                    state[1] = True
                time.sleep(0.0005)
                with state_lock:
                    db.rebac.delete_tuple("document:d0", "viewer", subject)
                    state[0] += 1
                    state[1] = False
                time.sleep(0.0005)

        def pause_wiggle():
            while not stop.is_set():
                for shipper in db.durability.shippers:
                    shipper.paused = not shipper.paused
                time.sleep(0.002)

        churner = threading.Thread(target=churn, daemon=True)
        wiggler = threading.Thread(target=pause_wiggle, daemon=True)
        try:
            churner.start()
            wiggler.start()
            for i in range(150):
                flips_before, granted_before = snapshot()
                response = gateway.execute(
                    QueryRequest(
                        user=user,
                        sql="select title from Documents where doc_id = 'd0'",
                        mode="non-truman",
                        params={"time": TIME},
                        tag=f"tuple-storm-{i}",
                    )
                )
                flips_after, _ = snapshot()
                if (
                    response.ok
                    and not granted_before
                    and flips_after == flips_before
                ):
                    stale.append((i, response.replica))
        finally:
            stop.set()
            churner.join(timeout=10)
            wiggler.join(timeout=10)
            for shipper in db.durability.shippers:
                shipper.paused = False
            gateway.shutdown(drain=False)
        assert stale == []

    def test_tuple_write_invalidates_prepared_templates(self, compiled_db):
        """A tuple revoke must invalidate the affected user's cached
        prepared templates — served plans can never outlive the grant
        chain that justified them."""
        db = build_compiled()
        user = "template_user"
        sql = "select title from Documents where doc_id = 'd0'"
        session = SessionContext(user_id=user, time=TIME)
        db.rebac.write_tuple("document:d0", "viewer", f"user:{user}")
        assert db.execute_query(sql, session=session, mode="non-truman").rows
        db.rebac.delete_tuple("document:d0", "viewer", f"user:{user}")
        with pytest.raises(QueryRejectedError):
            db.execute_query(sql, session=session, mode="non-truman")


class TestAutoShip:
    def test_lag_stays_bounded_without_explicit_syncs(self):
        """Regression: with auto_ship_lag set, commits alone keep every
        replica within the bound — no sync_replicas() calls anywhere."""
        bound = 4
        db = ClusterCoordinator(
            shards=2, replicas=1, ship_batch=1000, auto_ship_lag=bound
        )
        db.execute(
            "create table Events(event_id varchar(10) primary key, "
            "payload varchar(40) not null)"
        )
        max_lag = 0
        for i in range(60):
            db.execute(f"insert into Events values ('e{i}', 'payload {i}')")
            max_lag = max(max_lag, db.replica_lag())
        shipper = db.durability.shippers[0]
        assert max_lag <= bound
        assert shipper.auto_ships > 0
        # the replica trails by at most the bound (never full batches)
        replica = db.replicas[0].database
        (replica_count,) = replica.execute("select count(*) from Events").rows[0]
        assert replica_count >= 60 - bound

    def test_without_auto_ship_lag_grows_past_bound(self):
        """Control: the same write pattern with batch-only shipping
        exceeds the bound — proving the auto-ship path is load-bearing."""
        db = ClusterCoordinator(shards=2, replicas=1, ship_batch=1000)
        db.execute(
            "create table Events(event_id varchar(10) primary key, "
            "payload varchar(40) not null)"
        )
        for i in range(60):
            db.execute(f"insert into Events values ('e{i}', 'payload {i}')")
        assert db.replica_lag() > 4
        assert db.durability.shippers[0].auto_ships == 0


class TestDurability:
    def test_wal_replay_round_trip(self, tmp_path):
        data_dir = str(tmp_path / "collab")
        db = Database()
        db.save(data_dir)
        build_collab(CONFIG, db=db)
        db.rebac.write_tuple("document:d0", "viewer", "user:late_joiner")
        db.rebac.delete_tuple("document:d0", "viewer", "user:late_joiner")
        expected = run_one(
            db,
            "select title from Documents where doc_id = 'd0'",
            user_name(0, 0),
            "non-truman",
            "row",
        )
        tuples_before = db.rebac.state_dict()
        rows_before = db.execute(
            "select * from RebacGrants", sync=False
        ).rows
        db.close()

        recovered = Database.open(data_dir)
        assert recovered.rebac is not None
        assert recovered.rebac.state_dict() == tuples_before
        assert (
            recovered.execute("select * from RebacGrants", sync=False).rows
            == rows_before
        )
        assert (
            run_one(
                recovered,
                "select title from Documents where doc_id = 'd0'",
                user_name(0, 0),
                "non-truman",
                "row",
            )
            == expected
        )
        # the revoked late_joiner stays revoked after recovery
        with pytest.raises(QueryRejectedError):
            recovered.execute_query(
                "select title from Documents where doc_id = 'd0'",
                session=SessionContext(user_id="late_joiner", time=TIME),
                mode="non-truman",
            )
        recovered.close()

    def test_snapshot_restore_round_trip(self, tmp_path):
        data_dir = str(tmp_path / "collab-snap")
        db = Database()
        db.save(data_dir)
        build_collab(CONFIG, db=db)
        db.checkpoint()  # snapshot carries namespace + tuples + rows
        db.rebac.write_tuple("document:d1", "editor", "user:post_snap")
        state_before = db.rebac.state_dict()
        db.close()

        recovered = Database.open(data_dir)
        assert recovered.rebac.state_dict() == state_before
        # post-snapshot WAL tail replayed: the editor grant exists and
        # implies viewer through the Computed rule
        assert recovered.execute_query(
            "select title from Documents where doc_id = 'd1'",
            session=SessionContext(user_id="post_snap", time=TIME),
            mode="non-truman",
        ).rows
        recovered.close()


class TestExpiryWithClock:
    def test_expiry_sweep_is_deterministic_and_durable(self, tmp_path):
        clock = ManualClock(now=CONFIG.base_time)
        data_dir = str(tmp_path / "collab-exp")
        db = Database()
        db.save(data_dir)
        db.execute_script(MINI_SCHEMA)
        manager = attach_rebac(db, collab_namespace(), clock=clock)
        db.execute("insert into Folders values ('f', 'shared')")
        db.execute("insert into Documents values ('d', 'f', 'doc', 'body')")
        manager.write_tuple(
            "document:d", "viewer", "user:temp",
            expires_at=CONFIG.base_time + 10.0,
        )
        manager.write_tuple("document:d", "viewer", "user:perm")
        assert manager.expire_tuples() == []
        clock.advance(11.0)
        expired = manager.expire_tuples()
        assert [t.subject for t in expired] == ["user:temp"]
        db.close()
        # the sweep's deletes were WAL-logged like any tuple delete
        recovered = Database.open(data_dir)
        assert [
            t["subject"] for t in recovered.rebac.state_dict()["tuples"]
        ] == ["user:perm"]
        recovered.close()

    def test_view_excludes_expired_rows_before_sweep(self):
        """Expiry is enforced by the compiled ``expires_at > $time``
        conjunct immediately — the sweep is only garbage collection."""
        db = mini_db()
        db.rebac.write_tuple(
            "document:d", "viewer", "user:alice", expires_at=500.0
        )
        sql = "select title from Documents where doc_id = 'd'"
        assert db.execute_query(
            sql,
            session=SessionContext(user_id="alice", time=499.0),
            mode="non-truman",
        ).rows == [("doc",)]
        with pytest.raises(QueryRejectedError):
            db.execute_query(
                sql,
                session=SessionContext(user_id="alice", time=501.0),
                mode="non-truman",
            )


class TestWorkloadCli:
    def test_build_database_collab_single_node(self):
        db = build_database("collab", None)
        assert db.rebac is not None
        assert len(db.rebac.store.snapshot()) > 0

    def test_build_database_collab_sharded(self):
        db = build_database("collab", None, shards=2, replicas=1)
        assert db.rebac is not None
        assert db.replicas[0].database.rebac is not None
        db.close()
