"""Property tests over the access-control models themselves.

Invariants:

* **Truman containment** — for monotone (SPJ) queries, the
  Truman-modified answer is a sub-multiset of the true answer (view
  substitution only ever removes rows);
* **Motro containment + honesty** — Motro's rows are a sub-multiset of
  the truth, and whenever rows are missing the result is annotated;
* **Non-Truman exactness** — accepted queries return exactly the true
  answer (the model's defining guarantee).
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.db import Database
from repro.errors import QueryRejectedError, UnsupportedFeatureError

STUDENTS = ["11", "12", "13"]
COURSES = ["CS1", "CS2"]


@st.composite
def grades_state(draw):
    keys = draw(
        st.sets(
            st.tuples(st.sampled_from(STUDENTS), st.sampled_from(COURSES)),
            max_size=6,
        )
    )
    return {k: draw(st.sampled_from([1.0, 2.0, 3.0, 4.0])) for k in keys}


@st.composite
def spj_query(draw):
    student = draw(st.sampled_from(STUDENTS + ["99"]))
    course = draw(st.sampled_from(COURSES + ["CS9"]))
    bound = draw(st.sampled_from([1.5, 2.5, 3.5]))
    template = draw(
        st.sampled_from(
            [
                "select * from Grades",
                "select grade from Grades where student_id = '{s}'",
                "select student_id from Grades where course_id = '{c}'",
                "select course_id, grade from Grades where grade >= {b}",
                "select * from Grades where student_id = '{s}' and grade < {b}",
            ]
        )
    )
    return template.format(s=student, c=course, b=bound)


def build(grades) -> Database:
    db = Database()
    db.execute(
        "create table Grades(student_id varchar(5), course_id varchar(5), "
        "grade float, primary key (student_id, course_id))"
    )
    for (student, course), grade in sorted(grades.items()):
        db.execute(
            f"insert into Grades values ('{student}', '{course}', {grade})"
        )
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant_public("MyGrades")
    db.set_truman_view("Grades", "MyGrades")
    return db


def contained(small: Counter, big: Counter) -> bool:
    return all(big[key] >= count for key, count in small.items())


@settings(max_examples=80, deadline=None)
@given(grades=grades_state(), sql=spj_query())
def test_truman_answers_are_contained_in_truth(grades, sql):
    db = build(grades)
    truth = Counter(db.execute(sql).rows)
    truman = Counter(db.connect(user_id="11", mode="truman").query(sql).rows)
    assert contained(truman, truth)


@settings(max_examples=80, deadline=None)
@given(grades=grades_state(), sql=spj_query())
def test_motro_contained_and_annotated(grades, sql):
    db = build(grades)
    truth = Counter(db.execute(sql).rows)
    try:
        result = db.connect(user_id="11", mode="motro").query(sql)
    except UnsupportedFeatureError:
        return
    rows = Counter(result.rows)
    assert contained(rows, truth)
    if rows != truth:
        assert result.is_partial  # missing rows are never silent


@settings(max_examples=80, deadline=None)
@given(grades=grades_state(), sql=spj_query())
def test_nontruman_accepted_answers_are_exact(grades, sql):
    db = build(grades)
    conn = db.connect(user_id="11", mode="non-truman")
    try:
        answer = Counter(conn.query(sql).rows)
    except QueryRejectedError:
        return
    truth = Counter(db.execute(sql).rows)
    assert answer == truth


@settings(max_examples=60, deadline=None)
@given(grades=grades_state(), sql=spj_query())
def test_truman_and_motro_agree_on_rows(grades, sql):
    """Both models restrict to the same authorized fragment here, so
    their row multisets must coincide — Motro just adds the annotation."""
    db = build(grades)
    try:
        motro = Counter(db.connect(user_id="11", mode="motro").query(sql).rows)
    except UnsupportedFeatureError:
        return
    truman = Counter(db.connect(user_id="11", mode="truman").query(sql).rows)
    assert motro == truman
