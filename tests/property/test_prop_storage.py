"""Property-based invariants of the storage layer."""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.errors import IntegrityError
from repro.catalog import Column, DataType, TableSchema
from repro.storage import Table


def fresh_table(unique=False):
    schema = TableSchema(
        "T", (Column("k", DataType.INT), Column("v", DataType.TEXT))
    )
    table = Table(schema)
    table.create_index(("k",), unique=unique)
    return table


op = st.one_of(
    st.tuples(st.just("insert"), st.integers(0, 5), st.sampled_from("abc")),
    st.tuples(st.just("delete"), st.integers(0, 5)),
    st.tuples(st.just("update"), st.integers(0, 5), st.sampled_from("xyz")),
)


@settings(max_examples=200, deadline=None)
@given(operations=st.lists(op, max_size=30))
def test_table_matches_reference_model(operations):
    """The table (with a non-unique index) behaves like a reference
    multiset under arbitrary insert/delete/update sequences."""
    table = fresh_table()
    model: Counter = Counter()
    live_ids: dict[int, tuple] = {}

    for operation in operations:
        if operation[0] == "insert":
            _, k, v = operation
            rid = table.insert((k, v))
            live_ids[rid] = (k, v)
            model[(k, v)] += 1
        elif operation[0] == "delete":
            _, k = operation
            victim = next((rid for rid, row in live_ids.items() if row[0] == k), None)
            if victim is None:
                continue
            row = table.delete_row(victim)
            model[row] -= 1
            del live_ids[victim]
        else:
            _, k, v = operation
            victim = next((rid for rid, row in live_ids.items() if row[0] == k), None)
            if victim is None:
                continue
            old = table.update_row(victim, (k, v))
            model[old] -= 1
            model[(k, v)] += 1
            live_ids[victim] = (k, v)

    assert Counter(table.rows()) == +model
    # Index agrees with the rows for every key.
    index = table.find_index(("k",))
    for key in range(6):
        via_index = len(index.lookup((key,)))
        via_scan = sum(1 for row in table.rows() if row[0] == key)
        assert via_index == via_scan


@settings(max_examples=150, deadline=None)
@given(keys=st.lists(st.integers(0, 3), max_size=12))
def test_unique_index_admits_one_live_row_per_key(keys):
    table = fresh_table(unique=True)
    live = set()
    for key in keys:
        try:
            table.insert((key, "x"))
            assert key not in live, "duplicate admitted"
            live.add(key)
        except IntegrityError:
            assert key in live, "spurious uniqueness rejection"
    assert {row[0] for row in table.rows()} == live
