"""Property-based algebraic identities of the executor.

Random small databases; classic multiset identities that any correct
SQL engine satisfies.  These protect the executor that both the
original queries AND the witness rewritings run on.
"""

from collections import Counter

from hypothesis import given, settings, strategies as st

from repro.db import Database

VALUES = [0, 1, 2, 3]
TAGS = ["p", "q", "r"]


@st.composite
def table_rows(draw):
    return draw(
        st.lists(
            st.tuples(
                st.sampled_from(VALUES),
                st.sampled_from(TAGS),
                st.one_of(st.none(), st.sampled_from(VALUES)),
            ),
            max_size=8,
        )
    )


def build(rows_t, rows_u):
    db = Database()
    db.execute("create table T(k int, tag varchar(2), v int)")
    db.execute("create table U(k int, tag varchar(2), v int)")
    for k, tag, v in rows_t:
        db.execute(f"insert into T values ({k}, '{tag}', {v if v is not None else 'null'})")
    for k, tag, v in rows_u:
        db.execute(f"insert into U values ({k}, '{tag}', {v if v is not None else 'null'})")
    return db


def bag(result):
    return Counter(result.rows)


@settings(max_examples=120, deadline=None)
@given(rows_t=table_rows())
def test_selection_cascades(rows_t):
    db = build(rows_t, [])
    combined = db.execute("select * from T where k > 0 and tag = 'p'")
    nested = db.execute(
        "select * from (select * from T where k > 0) s where tag = 'p'"
    )
    assert bag(combined) == bag(nested)


@settings(max_examples=120, deadline=None)
@given(rows_t=table_rows(), rows_u=table_rows())
def test_join_commutative_as_multiset(rows_t, rows_u):
    db = build(rows_t, rows_u)
    left = db.execute(
        "select T.k, U.tag from T, U where T.k = U.k"
    )
    right = db.execute(
        "select T.k, U.tag from U, T where T.k = U.k"
    )
    assert bag(left) == bag(right)


@settings(max_examples=120, deadline=None)
@given(rows_t=table_rows(), rows_u=table_rows())
def test_union_all_counts_add(rows_t, rows_u):
    db = build(rows_t, rows_u)
    union = bag(db.execute("select k from T union all select k from U"))
    separate = bag(db.execute("select k from T")) + bag(db.execute("select k from U"))
    assert union == separate


@settings(max_examples=120, deadline=None)
@given(rows_t=table_rows())
def test_distinct_idempotent(rows_t):
    db = build(rows_t, [])
    once = db.execute("select distinct k, tag from T")
    twice = db.execute(
        "select distinct * from (select distinct k, tag from T) s"
    )
    assert bag(once) == bag(twice)
    assert max(bag(once).values(), default=1) == 1


@settings(max_examples=120, deadline=None)
@given(rows_t=table_rows(), rows_u=table_rows())
def test_except_intersect_partition(rows_t, rows_u):
    """|T ∩all U| + |T \\all U| == |T| per distinct row (bag identity)."""
    db = build(rows_t, rows_u)
    t = bag(db.execute("select k from T"))
    inter = bag(db.execute("select k from T intersect all select k from U"))
    diff = bag(db.execute("select k from T except all select k from U"))
    assert inter + diff == t


@settings(max_examples=120, deadline=None)
@given(rows_t=table_rows())
def test_count_star_equals_row_count(rows_t):
    db = build(rows_t, [])
    assert db.execute("select count(*) from T").scalar() == len(rows_t)


@settings(max_examples=120, deadline=None)
@given(rows_t=table_rows())
def test_group_counts_sum_to_total(rows_t):
    db = build(rows_t, [])
    groups = db.execute("select tag, count(*) as n from T group by tag")
    assert sum(r[1] for r in groups.rows) == len(rows_t)


@settings(max_examples=120, deadline=None)
@given(rows_t=table_rows())
def test_where_vs_having_on_groups(rows_t):
    """Filtering groups by key: WHERE before grouping == HAVING after."""
    db = build(rows_t, [])
    where = db.execute(
        "select tag, count(*) from T where tag = 'p' group by tag"
    )
    having = db.execute(
        "select tag, count(*) from T group by tag having tag = 'p'"
    )
    assert bag(where) == bag(having)


@settings(max_examples=100, deadline=None)
@given(rows_t=table_rows(), rows_u=table_rows())
def test_left_join_superset_of_inner(rows_t, rows_u):
    db = build(rows_t, rows_u)
    inner = bag(db.execute(
        "select T.k, T.tag from T join U on T.k = U.k"
    ))
    left = bag(db.execute(
        "select T.k, T.tag from T left join U on T.k = U.k"
    ))
    assert all(left[row] >= count for row, count in inner.items())
    # every T row appears at least once in the left join
    t_rows = bag(db.execute("select k, tag from T"))
    assert all(left[row] >= count for row, count in t_rows.items())
