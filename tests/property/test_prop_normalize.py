"""Property tests: predicate normalization preserves semantics.

For random predicates P and random rows r, the conjunction of
``normalize_predicate(P)`` must evaluate to the same 3-valued result as
P itself (TRUE stays TRUE, FALSE/UNKNOWN keep filtering the row out).
Since WHERE keeps only TRUE rows, we compare at the keeps/filters level.
"""

from hypothesis import given, settings, strategies as st

from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra.normalize import normalize_predicate
from repro.algebra.ops import OutCol
from repro.engine.evaluator import Evaluator, RowResolver

COLUMNS = ["a", "b"]
VALUES = [0, 1, 2, None]


@st.composite
def predicate(draw, depth=2):
    col = ast.ColumnRef("t", draw(st.sampled_from(COLUMNS)))
    if depth == 0:
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return ast.BinaryOp(
                draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="])),
                col,
                ast.Literal(draw(st.sampled_from([0, 1, 2]))),
            )
        if choice == 1:
            return ast.IsNull(col, negated=draw(st.booleans()))
        if choice == 2:
            return ast.Between(
                col,
                ast.Literal(draw(st.sampled_from([0, 1]))),
                ast.Literal(draw(st.sampled_from([1, 2]))),
                negated=draw(st.booleans()),
            )
        return ast.InList(
            col,
            tuple(
                ast.Literal(v)
                for v in draw(st.lists(st.sampled_from([0, 1, 2]), min_size=1, max_size=3))
            ),
            negated=draw(st.booleans()),
        )
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return ast.BinaryOp(
            "and", draw(predicate(depth=depth - 1)), draw(predicate(depth=depth - 1))
        )
    if choice == 1:
        return ast.BinaryOp(
            "or", draw(predicate(depth=depth - 1)), draw(predicate(depth=depth - 1))
        )
    if choice == 2:
        return ast.UnaryOp("not", draw(predicate(depth=depth - 1)))
    return draw(predicate(depth=0))


def keeps(pred_expr, row_values) -> bool:
    resolver = RowResolver(tuple(OutCol("t", c) for c in COLUMNS))
    evaluator = Evaluator(resolver)
    row = tuple(row_values[c] for c in COLUMNS)
    return evaluator.evaluate(pred_expr, row) is True


@st.composite
def row(draw):
    return {c: draw(st.sampled_from(VALUES)) for c in COLUMNS}


@settings(max_examples=500, deadline=None)
@given(pred=predicate(), candidate=row())
def test_normalization_preserves_row_filtering(pred, candidate):
    conjuncts = normalize_predicate(pred)
    rebuilt = exprs.make_conjunction(conjuncts)
    original_keeps = keeps(pred, candidate)
    normalized_keeps = (
        True if rebuilt is None else keeps(rebuilt, candidate)
    )
    assert original_keeps == normalized_keeps, (
        f"{pred}  vs  {rebuilt}  on {candidate}"
    )


@settings(max_examples=200, deadline=None)
@given(pred=predicate())
def test_normalization_idempotent(pred):
    once = normalize_predicate(pred)
    rebuilt = exprs.make_conjunction(once)
    twice = normalize_predicate(rebuilt)
    assert set(once) == set(twice)
