"""Property-based validation of the implication prover.

Soundness statement under test: if ``implies(P, c)`` then every row
(total assignment of values to the referenced columns) that satisfies
all premises also satisfies the conclusion.  We generate random
premise/conclusion pairs from a small predicate grammar and random
candidate rows, then cross-check the prover against direct evaluation.
"""

from hypothesis import given, settings, strategies as st

from repro.sql import ast
from repro.algebra.normalize import normalize_predicate
from repro.algebra.implication import implies, unsatisfiable
from repro.algebra.ops import OutCol
from repro.algebra import expr as exprs
from repro.engine.evaluator import Evaluator, RowResolver

COLUMNS = [ast.ColumnRef("t", "a"), ast.ColumnRef("t", "b"), ast.ColumnRef("t", "c")]
VALUES = [0, 1, 2, 3, 5, 10]


@st.composite
def atom(draw):
    col = draw(st.sampled_from(COLUMNS))
    kind = draw(st.sampled_from(["cmp", "eq_col", "in", "notnull"]))
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
        value = draw(st.sampled_from(VALUES))
        return ast.BinaryOp(op, col, ast.Literal(value))
    if kind == "eq_col":
        other = draw(st.sampled_from(COLUMNS))
        return ast.BinaryOp("=", col, other)
    if kind == "in":
        items = draw(st.lists(st.sampled_from(VALUES), min_size=1, max_size=3))
        return ast.InList(col, tuple(ast.Literal(v) for v in items))
    return ast.IsNull(col, negated=True)


@st.composite
def premise_set(draw):
    atoms = draw(st.lists(atom(), min_size=0, max_size=4))
    conjunction = exprs.make_conjunction(atoms)
    return list(normalize_predicate(conjunction)) if conjunction else []


def evaluate(predicate, row_values):
    resolver = RowResolver(tuple(OutCol("t", c.name) for c in COLUMNS))
    evaluator = Evaluator(resolver)
    row = tuple(row_values[c.name] for c in COLUMNS)
    return evaluator.evaluate(predicate, row)


@st.composite
def row(draw):
    return {
        c.name: draw(st.sampled_from(VALUES + [None]))  # type: ignore[operator]
        for c in COLUMNS
    }


@settings(max_examples=400, deadline=None)
@given(premises=premise_set(), conclusion=atom(), candidate=row())
def test_implication_sound_against_evaluation(premises, conclusion, candidate):
    if not implies(premises, conclusion):
        return
    # Every row satisfying all premises must satisfy the conclusion.
    for premise in premises:
        if evaluate(premise, candidate) is not True:
            return  # row does not satisfy the premises: no obligation
    assert evaluate(conclusion, candidate) is True, (
        f"premises {list(map(str, premises))} imply {conclusion}, "
        f"but row {candidate} is a counterexample"
    )


@settings(max_examples=300, deadline=None)
@given(premises=premise_set(), candidate=row())
def test_unsatisfiable_has_no_model(premises, candidate):
    if not unsatisfiable(premises):
        return
    satisfied = all(
        evaluate(premise, candidate) is True for premise in premises
    )
    assert not satisfied, (
        f"'unsatisfiable' premises {list(map(str, premises))} "
        f"satisfied by {candidate}"
    )


@settings(max_examples=200, deadline=None)
@given(premises=premise_set())
def test_premises_imply_themselves(premises):
    for premise in premises:
        assert implies(premises, premise)
