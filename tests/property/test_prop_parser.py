"""Property-based parse/render round-trip over generated ASTs."""

from hypothesis import given, settings, strategies as st

from repro.sql import ast, parse_statement, render

names = st.sampled_from(["a", "b", "c", "x1", "col_2"])
tables = st.sampled_from(["T", "U", "Grades"])


@st.composite
def literal(draw):
    value = draw(
        st.one_of(
            st.integers(min_value=-999, max_value=999),
            st.sampled_from([1.5, 0.25, 2.0]),
            st.text(alphabet="abcXYZ' %_", max_size=6),
            st.none(),
            st.booleans(),
        )
    )
    return ast.Literal(value)


@st.composite
def column(draw):
    table = draw(st.one_of(st.none(), tables))
    return ast.ColumnRef(table, draw(names))


@st.composite
def scalar_expr(draw, depth=2):
    if depth == 0:
        return draw(st.one_of(literal(), column()))
    choice = draw(st.integers(min_value=0, max_value=5))
    if choice == 0:
        return draw(st.one_of(literal(), column()))
    if choice == 1:
        op = draw(st.sampled_from(["+", "-", "*"]))
        return ast.BinaryOp(
            op, draw(scalar_expr(depth=depth - 1)), draw(scalar_expr(depth=depth - 1))
        )
    if choice == 2:
        return ast.FuncCall(
            "coalesce",
            (draw(scalar_expr(depth=depth - 1)), draw(literal())),
        )
    if choice == 3:
        return ast.CaseExpr(
            ((draw(predicate(depth=depth - 1)), draw(literal())),),
            draw(st.one_of(st.none(), literal())),
        )
    return draw(column())


@st.composite
def predicate(draw, depth=2):
    if depth == 0:
        return ast.BinaryOp(
            draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="])),
            draw(column()),
            draw(st.one_of(literal(), column())),
        )
    choice = draw(st.integers(min_value=0, max_value=6))
    if choice in (0, 1):
        return ast.BinaryOp(
            draw(st.sampled_from(["and", "or"])),
            draw(predicate(depth=depth - 1)),
            draw(predicate(depth=depth - 1)),
        )
    if choice == 2:
        return ast.UnaryOp("not", draw(predicate(depth=depth - 1)))
    if choice == 3:
        return ast.IsNull(draw(column()), negated=draw(st.booleans()))
    if choice == 4:
        items = draw(st.lists(literal(), min_size=1, max_size=3))
        return ast.InList(draw(column()), tuple(items), negated=draw(st.booleans()))
    if choice == 5:
        return ast.Between(
            draw(column()), draw(literal()), draw(literal()),
            negated=draw(st.booleans()),
        )
    return draw(predicate(depth=0))


@st.composite
def select_statement(draw):
    items = tuple(
        ast.SelectItem(draw(scalar_expr()), alias=draw(st.one_of(st.none(), names)))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    )
    from_tables = draw(st.lists(tables, min_size=1, max_size=2, unique=True))
    from_items = tuple(ast.TableRef(t) for t in from_tables)
    where = draw(st.one_of(st.none(), predicate()))
    return ast.SelectStmt(
        items=items,
        from_items=from_items,
        where=where,
        distinct=draw(st.booleans()),
        limit=draw(st.one_of(st.none(), st.integers(min_value=0, max_value=50))),
    )


@settings(max_examples=300, deadline=None)
@given(stmt=select_statement())
def test_render_parse_round_trip(stmt):
    rendered = render(stmt)
    reparsed = parse_statement(rendered)
    assert reparsed == stmt, rendered


@settings(max_examples=150, deadline=None)
@given(stmt=select_statement())
def test_render_stable(stmt):
    once = render(stmt)
    twice = render(parse_statement(once))
    assert once == twice
