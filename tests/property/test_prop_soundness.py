"""Property-based soundness testing of the validity checker.

Theorems 5.1/5.2 claim every inference rule is sound.  Operationally:
whenever the checker accepts a query q with witness q′,

* (unconditional) q and q′ return the same multiset on the current
  state — and on *any* state, which we sample by regenerating random
  databases;
* (conditional) q and q′ return the same multiset on every state
  **PA-equivalent** to the current one (Definition 4.2) — which we test
  by perturbing only rows invisible to every instantiated authorization
  view and re-comparing.

The checker must also never accept a query whose answer depends on
invisible data: that is exactly what the witness comparison after
perturbation detects (the witness, computed from views only, cannot
change; if q's answer changed, the pair diverges and the test fails).
"""

from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro.db import Database
from repro.nontruman.checker import ValidityChecker
from repro.sql import parse_query

from tests.conftest import UNIVERSITY_SCHEMA

STUDENTS = ["11", "12", "13", "14"]
COURSES = ["CS101", "CS102", "CS103"]
#: includes constants absent from the data — probing edge behavior
QUERY_STUDENTS = STUDENTS + ["99"]
QUERY_COURSES = COURSES + ["CS999"]

VIEWS_SQL = """
create authorization view MyGrades as
    select * from Grades where student_id = $user_id;
create authorization view MyRegistrations as
    select * from Registered where student_id = $user_id;
create authorization view CoStudentGrades as
    select Grades.student_id, Grades.course_id, Grades.grade
    from Grades, Registered
    where Registered.student_id = $user_id
      and Grades.course_id = Registered.course_id;
"""


@st.composite
def database_state(draw):
    """Random registrations and grades over a fixed student/course pool."""
    registrations = draw(
        st.sets(
            st.tuples(st.sampled_from(STUDENTS), st.sampled_from(COURSES)),
            max_size=10,
        )
    )
    grade_keys = draw(
        st.sets(
            st.tuples(st.sampled_from(STUDENTS), st.sampled_from(COURSES)),
            max_size=10,
        )
    )
    grades = {
        key: draw(st.sampled_from([1.0, 2.0, 2.5, 3.0, 3.5, 4.0]))
        for key in grade_keys
    }
    return registrations, grades


@st.composite
def query_text(draw):
    student = draw(st.sampled_from(QUERY_STUDENTS))
    course = draw(st.sampled_from(QUERY_COURSES))
    threshold = draw(st.sampled_from([1.5, 2.5, 3.5]))
    template = draw(
        st.sampled_from(
            [
                "select * from Grades where student_id = '{s}'",
                "select grade from Grades where student_id = '{s}' and grade >= {t}",
                "select course_id from Grades where student_id = '{s}'",
                "select avg(grade) from Grades where student_id = '{s}'",
                "select count(*) from Grades where student_id = '{s}'",
                "select * from Grades where course_id = '{c}'",
                "select grade from Grades where course_id = '{c}' and grade < {t}",
                "select * from Registered where student_id = '{s}'",
                "select distinct course_id from Grades where student_id = '{s}' "
                "union select course_id from Registered where student_id = '{s}'",
                "select * from Grades",
                "select * from Grades where student_id = '{s}' "
                "and course_id = '{c}'",
            ]
        )
    )
    return template.format(s=student, c=course, t=threshold)


def build_db(registrations, grades) -> Database:
    db = Database()
    db.execute_script(UNIVERSITY_SCHEMA)
    for student in STUDENTS:
        db.execute(
            f"insert into Students values ('{student}', 'S{student}', 'FullTime')"
        )
    for course in COURSES:
        db.execute(f"insert into Courses values ('{course}', 'N{course}')")
    for student, course in sorted(registrations):
        db.execute(f"insert into Registered values ('{student}', '{course}')")
    for (student, course), grade in sorted(grades.items()):
        db.execute(
            f"insert into Grades values ('{student}', '{course}', {grade})"
        )
    db.execute_script(VIEWS_SQL)
    for name in ("MyGrades", "MyRegistrations", "CoStudentGrades"):
        db.grant_public(name)
    return db


def multiset(rows):
    return Counter(map(repr, rows))


@settings(max_examples=60, deadline=None)
@given(state=database_state(), sql=query_text())
def test_accepted_queries_have_faithful_witnesses(state, sql):
    registrations, grades = state
    db = build_db(registrations, grades)
    conn = db.connect(user_id="11", mode="non-truman")
    decision = ValidityChecker(db).check(parse_query(sql), conn.session)
    if not decision.valid:
        return
    original = db.execute(sql)
    witness = db.run_plan(decision.witness, conn.session)
    assert multiset(original.rows) == multiset(witness.rows), (
        f"{sql}\n{decision.describe()}"
    )


@settings(max_examples=40, deadline=None)
@given(state=database_state(), sql=query_text(),
       perturbation=st.lists(
           st.tuples(
               st.sampled_from(["12", "13", "14"]),
               st.sampled_from(COURSES),
               st.sampled_from([1.5, 2.2, 3.7]),
           ),
           max_size=4,
       ))
def test_conditional_validity_stable_under_pa_equivalent_perturbation(
    state, sql, perturbation
):
    """Definition 4.3: q ≡ q′ must hold on every PA-equivalent state.

    We perturb grades of other students in courses the user ('11') is
    *not* registered for — invisible through MyGrades (wrong student),
    MyRegistrations (wrong student), and CoStudentGrades (course not
    co-registered) — and require q and the witness to stay equal.
    """
    registrations, grades = state
    db = build_db(registrations, grades)
    conn = db.connect(user_id="11", mode="non-truman")
    decision = ValidityChecker(db).check(parse_query(sql), conn.session)
    if not decision.valid:
        return

    my_courses = {c for (s, c) in registrations if s == "11"}
    views_before = _view_snapshot(db, conn)

    changed = False
    for student, course, grade in perturbation:
        if course in my_courses:
            continue  # visible through CoStudentGrades; skip
        key = (student, course)
        db.execute(
            f"delete from Grades where student_id = '{student}' "
            f"and course_id = '{course}'"
        )
        if key not in grades:
            # ensure FK: register the student silently (others'
            # registrations are invisible to user 11's views)
            db.execute(
                f"delete from Registered where student_id = '{student}' "
                f"and course_id = '{course}'"
            )
            db.execute(
                f"insert into Registered values ('{student}', '{course}')"
            )
        db.execute(
            f"insert into Grades values ('{student}', '{course}', {grade})"
        )
        changed = True
    if not changed:
        return

    # Sanity: the perturbed state is PA-equivalent (views unchanged).
    assert _view_snapshot(db, conn) == views_before

    original = db.execute(sql)
    witness = db.run_plan(decision.witness, conn.session)
    assert multiset(original.rows) == multiset(witness.rows), (
        f"PA-equivalent perturbation broke acceptance of: {sql}\n"
        f"{decision.describe()}"
    )


def _view_snapshot(db, conn):
    snapshot = {}
    for view in ("MyGrades", "MyRegistrations", "CoStudentGrades"):
        snapshot[view] = multiset(conn.query(f"select * from {view}").rows)
    return snapshot


@settings(max_examples=40, deadline=None)
@given(state=database_state())
def test_whole_table_scan_always_rejected(state):
    """No database state makes 'select * from Grades' derivable from the
    per-user views (there is always a possible PA-equivalent state with
    different hidden grades)."""
    registrations, grades = state
    db = build_db(registrations, grades)
    conn = db.connect(user_id="11", mode="non-truman")
    decision = ValidityChecker(db).check(
        parse_query("select * from Grades"), conn.session
    )
    assert not decision.valid
