"""Unit tests for the wire protocol: framing, chunking, error codes."""

import json

import pytest

from repro.errors import (
    FrameTooLarge,
    ProtocolError,
    QueryCancelled,
    QueryRejectedError,
    QueryTimeout,
    ReproError,
    ServiceDegraded,
    ServiceOverloaded,
)
from repro.net.protocol import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    HEADER,
    code_for_status,
    decode_payload,
    encode_frame,
    encode_payload,
    error_for_code,
    iter_result_frames,
    rows_to_tuples,
    sanitize_stats,
)


class TestFraming:
    def test_round_trip(self):
        message = {"type": "query", "id": 7, "sql": "select 1", "x": None}
        frame = encode_frame(message)
        (length,) = HEADER.unpack(frame[: HEADER.size])
        assert length == len(frame) - HEADER.size
        assert decode_payload(frame[HEADER.size:]) == message

    def test_unicode_survives(self):
        message = {"type": "query", "sql": "select 'héllo — ünïcode'"}
        frame = encode_frame(message)
        assert decode_payload(frame[HEADER.size:]) == message

    def test_oversized_frame_refused_on_encode(self):
        with pytest.raises(FrameTooLarge):
            encode_frame({"rows": "x" * 256}, max_frame_size=64)

    def test_unserializable_message(self):
        with pytest.raises(ProtocolError):
            encode_payload({"bad": object()})

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"[1, 2, 3]")

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_payload(b"\xff\xfe not json")


class TestFrameDecoder:
    def test_single_frame(self):
        decoder = FrameDecoder()
        messages = list(decoder.feed(encode_frame({"type": "a"})))
        assert messages == [{"type": "a"}]
        assert decoder.pending_bytes == 0

    def test_byte_at_a_time(self):
        decoder = FrameDecoder()
        frame = encode_frame({"type": "slow", "n": 42})
        seen = []
        for index in range(len(frame)):
            seen.extend(decoder.feed(frame[index : index + 1]))
        assert seen == [{"type": "slow", "n": 42}]

    def test_multiple_frames_one_chunk(self):
        decoder = FrameDecoder()
        chunk = encode_frame({"i": 1}) + encode_frame({"i": 2}) + encode_frame({"i": 3})
        assert [m["i"] for m in decoder.feed(chunk)] == [1, 2, 3]

    def test_partial_then_rest(self):
        decoder = FrameDecoder()
        frame = encode_frame({"type": "x"})
        assert list(decoder.feed(frame[:3])) == []
        assert decoder.pending_bytes == 3
        assert list(decoder.feed(frame[3:])) == [{"type": "x"}]

    def test_oversized_header_raises_before_body(self):
        decoder = FrameDecoder(max_frame_size=128)
        # announce a 1 GiB frame: must refuse on the header alone
        with pytest.raises(FrameTooLarge):
            list(decoder.feed(HEADER.pack(1 << 30)))


class TestResultChunking:
    def frames_for(self, rows, max_frame_size, **kwargs):
        frames = list(
            iter_result_frames(1, rows, max_frame_size=max_frame_size, **kwargs)
        )
        # every frame must actually encode under the limit: the guard
        # is exact, not an estimate
        for frame in frames:
            assert len(encode_payload(frame)) <= max_frame_size
        return frames

    def test_empty_result_yields_no_frames(self):
        assert self.frames_for([], 1024) == []

    def test_small_result_single_frame(self):
        rows = [(i, "name") for i in range(10)]
        frames = self.frames_for(rows, 64 * 1024)
        assert len(frames) == 1
        assert frames[0]["seq"] == 0
        assert rows_to_tuples(frames[0]["rows"]) == rows

    def test_rows_split_by_byte_budget(self):
        rows = [(i, "x" * 50) for i in range(100)]
        frames = self.frames_for(rows, 1024)
        assert len(frames) > 1
        reassembled = [
            row for frame in frames for row in rows_to_tuples(frame["rows"])
        ]
        assert reassembled == rows
        assert [frame["seq"] for frame in frames] == list(range(len(frames)))

    def test_rows_split_by_row_count(self):
        rows = [(i,) for i in range(2500)]
        frames = self.frames_for(rows, DEFAULT_MAX_FRAME, rows_per_frame=1000)
        assert [len(f["rows"]) for f in frames] == [1000, 1000, 500]

    def test_single_unframeable_row_raises(self):
        rows = [("x" * 4096,)]
        with pytest.raises(FrameTooLarge):
            list(iter_result_frames(1, rows, max_frame_size=512))

    def test_tiny_max_frame_rejected(self):
        with pytest.raises(FrameTooLarge):
            list(iter_result_frames(1, [(1,)], max_frame_size=16))

    def test_order_preserved_with_mixed_row_sizes(self):
        rows = [(i, "y" * (i % 97)) for i in range(500)]
        frames = self.frames_for(rows, 2048)
        reassembled = [
            row for frame in frames for row in rows_to_tuples(frame["rows"])
        ]
        assert reassembled == rows


class TestErrorCodes:
    @pytest.mark.parametrize(
        "code,cls",
        [
            ("timeout", QueryTimeout),
            ("cancelled", QueryCancelled),
            ("overloaded", ServiceOverloaded),
            ("rejected", QueryRejectedError),
            ("degraded", ServiceDegraded),
            ("protocol", ProtocolError),
            ("error", ReproError),
            ("never-seen-code", ReproError),
        ],
    )
    def test_error_for_code(self, code, cls):
        exc = error_for_code(code, "boom")
        assert isinstance(exc, cls)
        assert "boom" in str(exc)

    def test_rejected_carries_decision(self):
        decision = {"validity": "invalid", "reason": "nope"}
        exc = error_for_code("rejected", "denied", decision=decision)
        assert isinstance(exc, QueryRejectedError)
        assert exc.decision == decision

    def test_code_for_status_mapping(self):
        assert code_for_status("timeout") == "timeout"
        assert code_for_status("cancelled") == "cancelled"
        assert code_for_status("rejected") == "rejected"
        assert code_for_status("degraded") == "degraded"
        assert code_for_status("anything-else") == "error"


class TestSanitizeStats:
    def test_scalars_kept_objects_stringified(self):
        class Weird:
            def __str__(self):
                return "weird"

        stats = sanitize_stats(
            {"a": 1, "b": 2.5, "c": "x", "d": None, "e": True, "f": Weird()}
        )
        assert stats["a"] == 1 and stats["b"] == 2.5 and stats["e"] is True
        assert stats["f"] == "weird"
        json.dumps(stats)  # must be JSON-safe as a whole
