"""WAL shipping, replica apply idempotence, and epoch routing.

Satellite of the cluster PR: re-applying an already-seen epoch-stamped
record must be a byte-for-byte no-op — no double storage apply, no
second cache invalidation, no duplicate audit — and the policy-epoch
routing gate must close the instant a policy record is appended.
"""

import pytest

from repro.authviews.session import SessionContext
from repro.cluster import ClusterCoordinator
from repro.errors import DurabilityError, QueryRejectedError
from repro.service import EnforcementGateway, QueryRequest


def S(user):
    return SessionContext(user_id=user)


def cluster_db(replicas=1):
    db = ClusterCoordinator(shards=2, replicas=replicas, ship_batch=1)
    db.execute(
        "create table Grades (student_id varchar(10), course varchar(10), "
        "grade float)"
    )
    db.execute("insert into Grades values ('11', 'CS101', 3.5)")
    db.execute("insert into Grades values ('12', 'CS101', 2.0)")
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant("MyGrades", "11")
    db.sync_replicas()
    return db


class TestReplayIdempotence:
    def test_duplicate_record_is_skipped(self):
        db = cluster_db()
        replica = db.replicas[0]
        applied = replica.records_applied
        rows_before = list(replica.database.table("Grades").rows_with_ids())
        for record in db.durability.log.records:
            assert replica.apply(dict(record)) is False
        assert replica.records_applied == applied
        assert replica.duplicates_skipped == len(db.durability.log.records)
        assert (
            list(replica.database.table("Grades").rows_with_ids())
            == rows_before
        )

    def test_duplicate_policy_record_no_double_invalidation(self):
        db = cluster_db()
        replica = db.replicas[0]
        # the grant shipped during setup already invalidated once
        stats = replica.database.prepared.stats()
        before = stats["prepared_user_invalidations"]
        grant_record = next(
            r for r in db.durability.log.records if r["kind"] == "grant"
        )
        gv = replica.database.grants.version
        assert replica.apply(dict(grant_record)) is False
        stats = replica.database.prepared.stats()
        assert stats["prepared_user_invalidations"] == before
        assert replica.database.grants.version == gv

    def test_duplicate_apply_no_duplicate_audit(self):
        """A re-shipped batch must not re-run reads or re-audit them."""
        db = cluster_db()
        gateway = EnforcementGateway(db, workers=1)
        try:
            response = gateway.execute(
                QueryRequest(user="11", sql="select grade from MyGrades")
            )
            assert response.ok and response.replica is not None
            audited = gateway.audit.total_recorded
            replica = db.replicas[0]
            for record in db.durability.log.records:
                replica.apply(dict(record))
            assert gateway.audit.total_recorded == audited
        finally:
            gateway.shutdown()

    def test_reshipping_after_partial_failure_converges(self):
        db = cluster_db()
        shipper = db.durability.shippers[0]
        shipper.paused = True
        db.execute("insert into Grades values ('13', 'CS102', 3.0)")
        shipper.paused = False
        shipper.fail_next_ships = 1
        with pytest.raises(DurabilityError):
            db.sync_replicas()
        shipped = db.sync_replicas()  # retry ships the same range again
        assert shipped >= 1
        replica = db.replicas[0]
        assert replica.applied_lsn == db.durability.log.last_lsn
        result = replica.database.execute_query(
            "select count(*) from Grades", session=S(None), mode="open"
        )
        assert result.rows == [(3,)]


class TestEpochRouting:
    def test_revoke_closes_routing_before_shipping(self):
        db = cluster_db()
        replica = db.replicas[0]
        assert db.route_read() is replica
        shipper = db.durability.shippers[0]
        shipper.paused = True
        db.grants.revoke("MyGrades", "11")
        # the epoch bump happens at append time: the replica is
        # ineligible even though the revoke has not shipped yet
        assert db.route_read() is None
        shipper.paused = False
        db.sync_replicas()
        assert db.route_read() is replica
        with pytest.raises(QueryRejectedError):
            replica.database.execute_query(
                "select grade from MyGrades",
                session=S("11"),
                mode="non-truman",
            )

    def test_lagging_replica_not_routed(self):
        db = ClusterCoordinator(
            shards=2, replicas=1, replica_max_lag=0, ship_batch=1
        )
        db.execute("create table T (a int primary key)")
        db.sync_replicas()
        shipper = db.durability.shippers[0]
        shipper.paused = True
        db.execute("insert into T values (1)")  # data lag, no policy change
        assert db.route_read() is None
        shipper.paused = False
        db.sync_replicas()
        assert db.route_read() is db.replicas[0]

    def test_replica_max_lag_tolerates_bounded_staleness(self):
        db = ClusterCoordinator(
            shards=2, replicas=1, replica_max_lag=5, ship_batch=100
        )
        db.execute("create table T (a int primary key)")
        db.sync_replicas()
        for i in range(3):
            db.execute(f"insert into T values ({i})")
        # within the lag budget: still routable without shipping
        assert db.replica_lag() <= 5
        assert db.route_read() is db.replicas[0]

    def test_epoch_stamped_on_policy_kinds_only(self):
        db = ClusterCoordinator(shards=2, replicas=0)
        db.execute("create table T (a int primary key)")
        epoch_after_ddl = db.policy_epoch
        db.execute("insert into T values (1)")
        assert db.policy_epoch == epoch_after_ddl  # rows are not policy
        db.execute("create view V as select a from T")
        assert db.policy_epoch == epoch_after_ddl + 1  # DDL is

    def test_late_replica_bootstraps_from_full_log(self):
        db = cluster_db(replicas=0)
        db.execute("insert into Grades values ('14', 'CS103', 1.0)")
        replica = db.add_replica("late")
        assert replica.applied_lsn == db.durability.log.last_lsn
        result = replica.database.execute_query(
            "select grade from MyGrades", session=S("11"), mode="non-truman"
        )
        assert result.rows == [(3.5,)]
