"""Unit tests for the implication prover.

Soundness of the whole Non-Truman checker rests on ``implies`` never
returning a false positive; these tests pin both directions on a wide
range of shapes, and the property suite cross-validates against actual
row evaluation.
"""

import pytest

from repro.sql.parser import Parser
from repro.algebra.normalize import normalize_predicate
from repro.algebra.implication import (
    PredicateTheory,
    equivalent,
    implies,
    unsatisfiable,
)


def pred(text):
    return Parser(text).parse_expr()


def conj(text):
    return list(normalize_predicate(pred(text)))


class TestEqualityClosure:
    def test_transitivity(self):
        assert implies(conj("a.x = b.y and b.y = c.z"), pred("a.x = c.z"))

    def test_constant_propagation(self):
        assert implies(conj("a.x = b.y and b.y = 5"), pred("a.x = 5"))

    def test_symmetric(self):
        assert implies(conj("a.x = b.y"), pred("b.y = a.x"))

    def test_not_implied_unrelated(self):
        assert not implies(conj("a.x = 1"), pred("a.y = 1"))

    def test_chained_constants(self):
        assert implies(
            conj("g.course = r.course and r.course = 'CS101'"),
            pred("g.course = 'CS101'"),
        )


class TestRanges:
    def test_tighter_bound_implies_looser(self):
        assert implies(conj("a.x > 5"), pred("a.x > 3"))
        assert implies(conj("a.x >= 5"), pred("a.x > 3"))
        assert implies(conj("a.x < 2"), pred("a.x < 10"))
        assert implies(conj("a.x <= 2"), pred("a.x < 3"))

    def test_looser_does_not_imply_tighter(self):
        assert not implies(conj("a.x > 3"), pred("a.x > 5"))

    def test_equal_bound_strictness(self):
        assert implies(conj("a.x > 5"), pred("a.x >= 5"))
        assert not implies(conj("a.x >= 5"), pred("a.x > 5"))

    def test_pinning_by_bounds(self):
        assert implies(conj("a.x >= 5 and a.x <= 5"), pred("a.x = 5"))

    def test_equality_implies_range(self):
        assert implies(conj("a.x = 5"), pred("a.x between 0 and 10"))

    def test_between_expansion(self):
        assert implies(conj("a.x between 2 and 4"), pred("a.x >= 1"))


class TestInAndDisequality:
    def test_domain_subset(self):
        assert implies(conj("a.x in (1, 2)"), pred("a.x in (1, 2, 3)"))

    def test_domain_not_subset(self):
        assert not implies(conj("a.x in (1, 4)"), pred("a.x in (1, 2, 3)"))

    def test_equality_in_domain(self):
        assert implies(conj("a.x = 2"), pred("a.x in (1, 2, 3)"))

    def test_singleton_domain_pins(self):
        assert implies(conj("a.x in (7)"), pred("a.x = 7"))

    def test_disequality_from_pin(self):
        assert implies(conj("a.x = 2"), pred("a.x <> 3"))
        assert not implies(conj("a.x = 2"), pred("a.x <> 2"))

    def test_disequality_from_bounds(self):
        assert implies(conj("a.x > 10"), pred("a.x <> 5"))

    def test_not_in_gives_disequalities(self):
        assert implies(conj("a.x not in (3, 4)"), pred("a.x <> 3"))


class TestNullness:
    def test_comparison_implies_not_null(self):
        assert implies(conj("a.x = 3"), pred("a.x is not null"))
        assert implies(conj("a.x > 3"), pred("a.x is not null"))
        assert implies(conj("a.x in (1,2)"), pred("a.x is not null"))

    def test_is_null_premise(self):
        assert implies(conj("a.x is null"), pred("a.x is null"))

    def test_is_null_not_implied(self):
        assert not implies(conj("a.y = 1"), pred("a.x is null"))


class TestUnsatisfiability:
    def test_conflicting_constants(self):
        assert unsatisfiable(conj("a.x = 3 and a.x = 4"))

    def test_constant_outside_bounds(self):
        assert unsatisfiable(conj("a.x = 3 and a.x > 7"))

    def test_empty_range(self):
        assert unsatisfiable(conj("a.x > 5 and a.x < 3"))

    def test_null_and_not_null(self):
        assert unsatisfiable(conj("a.x is null and a.x = 2"))

    def test_unsat_implies_anything(self):
        assert implies(conj("a.x = 3 and a.x = 4"), pred("z.q = 'whatever'"))

    def test_satisfiable(self):
        assert not unsatisfiable(conj("a.x > 2 and a.x < 5"))


class TestGroundEvaluation:
    def test_ground_comparison(self):
        assert implies(conj("a.x = 'CS101'"), pred("a.x like 'CS101'"))
        assert implies(conj("a.x = 'CS101'"), pred("a.x like 'CS%'"))

    def test_ground_false_not_implied(self):
        assert not implies(conj("a.x = 'MATH1'"), pred("a.x like 'CS%'"))


class TestAccessParams:
    """$$ parameters are opaque constants during inference (§6)."""

    def test_self_equality(self):
        assert implies(conj("a.x = $$1"), pred("a.x = $$1"))

    def test_distinct_params_not_equal(self):
        assert not implies(conj("a.x = $$1"), pred("a.x = $$2"))

    def test_param_implies_not_null(self):
        assert implies(conj("a.x = $$1"), pred("a.x is not null"))


class TestEquivalence:
    def test_reordered_conjunctions(self):
        assert equivalent(
            conj("a.x = 5 and b.y = a.x"), conj("b.y = 5 and a.x = b.y")
        )

    def test_non_equivalent(self):
        assert not equivalent(conj("a.x > 5"), conj("a.x > 3"))

    def test_empty_sets(self):
        assert equivalent([], [])


class TestTheoryQueries:
    def test_pinned_and_constant_of(self):
        theory = PredicateTheory(conj("a.x = 'CS101' and a.y = b.z"))
        assert theory.pinned(pred("a.x"))
        assert theory.constant_of(pred("a.x")) == "CS101"
        assert not theory.pinned(pred("a.y"))
        assert theory.same_class(pred("a.y"), pred("b.z"))

    def test_syntactic_fallback_for_opaque_atoms(self):
        # LIKE with a non-ground operand: only syntactic matching applies.
        premises = conj("a.x like 'CS%'")
        assert implies(premises, pred("a.x like 'CS%'"))
        assert not implies(premises, pred("a.x like 'MA%'"))

    def test_or_atoms_syntactic(self):
        premises = conj("(a.x = 1 or a.y = 2)")
        assert implies(premises, pred("a.x = 1 or a.y = 2"))
        assert not implies(premises, pred("a.x = 1 or a.y = 3"))
