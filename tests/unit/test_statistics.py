"""ANALYZE statistics and the stats-aware cost model."""

import pytest

from repro.db import Database
from repro.sql import parse_query


@pytest.fixture
def db():
    database = Database()
    database.execute_script(
        """
        create table Fact(id int primary key, dim_id int, v int);
        create table Dim(id int primary key, label varchar(10));
        """
    )
    for i in range(20):
        database.execute(f"insert into Dim values ({i}, 'd{i}')")
    for i in range(200):
        database.execute(f"insert into Fact values ({i}, {i % 20}, {i % 3})")
    return database


class TestTableStatistics:
    def test_analyze_snapshots_counts(self, db):
        db.analyze()
        assert db.statistics.row_count("Fact") == 200
        assert db.statistics.row_count("Dim") == 20
        assert db.statistics.distinct_count("Fact", "dim_id") == 20
        assert db.statistics.distinct_count("Fact", "v") == 3

    def test_snapshot_is_stable_until_reanalyze(self, db):
        db.analyze()
        db.execute("insert into Dim values (99, 'late')")
        assert db.statistics.row_count("Dim") == 20  # stale by design
        db.analyze()
        assert db.statistics.row_count("Dim") == 21

    def test_unanalyzed_falls_back_to_live_counts(self, db):
        assert db.statistics.row_count("Fact") == 200
        assert db.statistics.distinct_count("Fact", "v") == 3

    def test_unknown_table_defaults(self, db):
        assert db.statistics.row_count("Nope") == 1
        assert db.statistics.distinct_count("Nope", "x") is None


class TestStatsAwareCosting:
    def test_join_cardinality_uses_distinct_counts(self, db):
        db.analyze()
        optimizer = db.make_optimizer()
        plan = db.plan_query(
            parse_query(
                "select Fact.v from Fact, Dim where Fact.dim_id = Dim.id"
            ),
            db.connect().session,
        )
        result = optimizer.optimize(plan)
        # true join output is 200 rows; the informed estimate should be
        # in the right ballpark (200*20/20 = 200), not the naive
        # product/max fallback artifacts
        assert 50 <= result.plan.rows <= 800

    def test_equality_selection_selectivity(self, db):
        db.analyze()
        optimizer = db.make_optimizer()
        low_card = db.plan_query(
            parse_query("select id from Fact where v = 1"), db.connect().session
        )
        high_card = db.plan_query(
            parse_query("select id from Fact where id = 1"), db.connect().session
        )
        low = optimizer.optimize(low_card).plan.rows
        high = optimizer.optimize(high_card).plan.rows
        # v has 3 distinct values (1/3 selectivity); id has 200 (1/200)
        assert low > high

    def test_make_optimizer_smoke(self, db):
        optimizer = db.make_optimizer(max_operations=5000)
        plan = db.plan_query(
            parse_query("select v from Fact where id = 5"), db.connect().session
        )
        assert optimizer.optimize(plan).plan.cost < float("inf")
