"""Unit tests for validity decisions, traces, and error hierarchy."""

import pytest

from repro import errors
from repro.nontruman.decision import RuleApplication, Validity, ValidityDecision


class TestValidityDecision:
    def test_unconditional_flags(self):
        decision = ValidityDecision(Validity.UNCONDITIONAL)
        assert decision.valid and decision.unconditional
        assert not decision.conditional

    def test_conditional_flags(self):
        decision = ValidityDecision(Validity.CONDITIONAL)
        assert decision.valid and decision.conditional
        assert not decision.unconditional

    def test_invalid_flags(self):
        decision = ValidityDecision(Validity.INVALID, reason="nope")
        assert not decision.valid

    def test_describe_includes_trace_and_views(self):
        decision = ValidityDecision(
            Validity.CONDITIONAL,
            reason="probe ok",
            trace=[RuleApplication("C3b", "remainder eliminated")],
            views_used=("CoStudentGrades",),
        )
        text = decision.describe()
        assert "conditional" in text
        assert "C3b" in text
        assert "CoStudentGrades" in text

    def test_rule_application_str(self):
        assert str(RuleApplication("U2")) == "U2"
        assert str(RuleApplication("U3a", "detail")) == "U3a: detail"


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ParseError,
            errors.LexError,
            errors.CatalogError,
            errors.BindError,
            errors.ExecutionError,
            errors.IntegrityError,
            errors.ParameterError,
            errors.AccessControlError,
            errors.QueryRejectedError,
            errors.UpdateRejectedError,
            errors.GrantError,
            errors.UnsupportedFeatureError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_lex_error_carries_position(self):
        error = errors.LexError("bad char", position=5, line=2, column=3)
        assert error.line == 2 and error.column == 3
        assert "line 2" in str(error)

    def test_query_rejected_carries_decision(self):
        decision = ValidityDecision(Validity.INVALID, reason="r")
        error = errors.QueryRejectedError("rejected", decision=decision)
        assert error.decision is decision

    def test_one_catch_all(self):
        try:
            raise errors.IntegrityError("boom")
        except errors.ReproError as caught:
            assert "boom" in str(caught)
