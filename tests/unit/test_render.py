"""Render → parse round-trip tests for the SQL renderer."""

import pytest

from repro.sql import parse_statement, render

ROUND_TRIP_STATEMENTS = [
    "select a, b from T",
    "select distinct a from T where a = 1 and b > 2",
    "select * from A, B where A.x = B.y",
    "select T.* from T",
    "select a as z from T order by z desc limit 3 offset 1",
    "select a, count(*) as n from T group by a having count(*) > 2",
    "select avg(grade) from Grades where student_id = $user_id",
    "select * from Grades where student_id = $$1",
    "select * from A join B on A.x = B.y",
    "select * from A left join B on A.x = B.y",
    "select * from A cross join B",
    "select s.a from (select a from T) as s",
    "select a from T where a in (1, 2, 3)",
    "select a from T where a between 1 and 5",
    "select a from T where a is not null",
    "select a from T where a like 'CS%'",
    "select a from T where not (a = 1 or b = 2)",
    "select case when a > 1 then 'x' else 'y' end from T",
    "(select a from T) union all (select a from U)",
    "(select a from T) intersect (select a from U)",
    "create table T (a int PRIMARY KEY, b varchar(10) NOT NULL)",
    "create view V as select a from T",
    "create authorization view V as select * from T where x = $user_id",
    "create authorization view V (p, q) as select a, b from T",
    "drop table T",
    "drop view V",
    "grant select on V to alice",
    "insert into T values (1, 'x')",
    "insert into T (a) values (1), (2)",
    "insert into T select * from U",
    "update T set a = 1 where b = 2",
    "delete from T where a = 1",
    "authorize insert on R where R.owner = $user_id",
    "authorize update on S(addr) where old(S.id) = $user_id",
    "select coalesce(a, 0) from T",
    "select -x from T",
    "select a || 'suffix' from T",
]


@pytest.mark.parametrize("sql", ROUND_TRIP_STATEMENTS)
def test_round_trip(sql):
    """parse(render(parse(s))) == parse(s) — rendering loses nothing."""
    first = parse_statement(sql)
    rendered = render(first)
    second = parse_statement(rendered)
    assert first == second, rendered


def test_render_is_deterministic():
    stmt = parse_statement("select a, b from T where a = 1")
    assert render(stmt) == render(parse_statement(render(stmt)))


def test_render_string_escaping():
    stmt = parse_statement("select * from T where name = 'O''Brien'")
    rendered = render(stmt)
    assert "O''Brien" in rendered
    assert parse_statement(rendered) == stmt
