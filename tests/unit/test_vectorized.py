"""Unit tests for the columnar batch layer, expression compiler, and
index-pushdown analysis behind :mod:`repro.engine.vectorized`."""

import pytest

from repro.algebra.ops import OutCol, Rel
from repro.engine.evaluator import RowResolver
from repro.engine.vectorized import (
    BATCH_SIZE,
    ColumnBatch,
    VectorizedExecutor,
    batches_from_rows,
    compile_scalar,
    rows_from_batches,
    selection_vector,
)
from repro.errors import ExecutionError, TypeError_
from repro.sql import ast
from repro.sql.parser import Parser
from repro.optimizer import annotate_scan, split_pushable_equalities


def pred(text: str) -> ast.Expr:
    return Parser(text).parse_expr()


# -- ColumnBatch --------------------------------------------------------


class TestColumnBatch:
    def test_row_round_trip(self):
        rows = [(1, "a"), (2, None), (None, "c")]
        batch = ColumnBatch.from_rows(rows, width=2)
        assert batch.length == 3
        assert batch.columns == [[1, 2, None], ["a", None, "c"]]
        assert batch.to_rows() == rows

    def test_empty(self):
        batch = ColumnBatch.empty(3)
        assert batch.length == 0 and batch.to_rows() == []

    def test_zero_width_preserves_cardinality(self):
        # 'select 1 from Dual'-style plans carry rows with no columns
        batch = ColumnBatch([], 4)
        assert batch.to_rows() == [(), (), (), ()]

    def test_take_gathers_in_order(self):
        batch = ColumnBatch.from_rows([(1, "a"), (2, "b"), (3, "c")], 2)
        taken = batch.take([2, 0, 2])
        assert taken.to_rows() == [(3, "c"), (1, "a"), (3, "c")]

    def test_concat_columns(self):
        left = ColumnBatch.from_rows([(1,), (2,)], 1)
        right = ColumnBatch.from_rows([("x",), ("y",)], 1)
        assert left.concat_columns(right).to_rows() == [(1, "x"), (2, "y")]

    def test_chunking_respects_batch_size(self):
        rows = [(i,) for i in range(10)]
        batches = list(batches_from_rows(rows, width=1, batch_size=4))
        assert [b.length for b in batches] == [4, 4, 2]
        assert rows_from_batches(batches) == rows

    def test_default_batch_size_is_bounded(self):
        rows = [(i,) for i in range(BATCH_SIZE + 1)]
        batches = list(batches_from_rows(rows, width=1, batch_size=BATCH_SIZE))
        assert [b.length for b in batches] == [BATCH_SIZE, 1]


# -- compiled expressions ----------------------------------------------

RESOLVER = RowResolver((OutCol(None, "a"), OutCol(None, "s")))


def run(expr_text: str, rows: list[tuple]) -> list:
    fn = compile_scalar(pred(expr_text), RESOLVER)
    return fn(ColumnBatch.from_rows(rows, width=2))


class TestCompiledScalars:
    def test_selection_vector_keeps_only_true(self):
        assert selection_vector([True, False, None, True]) == [0, 3]

    def test_comparison_null_propagation(self):
        assert run("a > 1", [(2, ""), (None, ""), (0, "")]) == [True, None, False]

    def test_comparison_both_sides_nonliteral(self):
        assert run("a = a", [(1, ""), (None, "")]) == [True, None]

    def test_null_literal_comparison_is_all_unknown(self):
        assert run("a = NULL", [(1, ""), (None, "")]) == [None, None]

    def test_flipped_literal(self):
        assert run("3 > a", [(1, ""), (5, ""), (None, "")]) == [True, False, None]

    def test_mixed_type_comparison_raises(self):
        with pytest.raises(TypeError_):
            run("a = 'x'", [(1, "y")])

    def test_bool_vs_number_comparison_raises(self):
        with pytest.raises(TypeError_):
            run("a = 1", [(True, "y")])

    def test_int_float_comparison_allowed(self):
        assert run("a = 1", [(1.0, "")]) == [True]

    def test_like_constant_pattern(self):
        assert run("s like 'a%'", [(0, "ab"), (0, "ba"), (0, None)]) == [
            True,
            False,
            None,
        ]

    def test_unbound_param_defers_until_rows_arrive(self):
        fn = compile_scalar(ast.Param("user_id"), RESOLVER)
        assert fn(ColumnBatch.empty(2)) == []  # row engine never evaluates it
        with pytest.raises(ExecutionError, match="unbound parameter"):
            fn(ColumnBatch.from_rows([(1, "x")], 2))

    def test_case_without_default_yields_null(self):
        out = run("case when a > 1 then 'big' end", [(2, ""), (0, "")])
        assert out == ["big", None]


# -- pushdown analysis --------------------------------------------------

REL = Rel("T", "t", ("id", "grp", "val"))


class TestPushdownAnalysis:
    def test_splits_equality_conjuncts(self):
        pushable, residual = split_pushable_equalities(
            pred("id = 7 and val > 2.0 and 'a' = grp"), REL
        )
        assert [(p.column, p.value) for p in pushable] == [("id", 7), ("grp", "a")]
        assert residual == pred("val > 2.0")

    def test_null_literal_not_pushable(self):
        pushable, residual = split_pushable_equalities(pred("id = NULL"), REL)
        assert pushable == [] and residual == pred("id = NULL")

    def test_or_and_not_block_pushdown(self):
        for text in ["id = 1 or grp = 'a'", "not (id = 1)"]:
            pushable, residual = split_pushable_equalities(pred(text), REL)
            assert pushable == [], text
            assert residual == pred(text)

    def test_foreign_binding_not_pushable(self):
        pushable, _ = split_pushable_equalities(pred("u.id = 1"), REL)
        assert pushable == []

    def test_annotate_picks_indexed_column(self):
        annotation = annotate_scan(
            REL,
            pred("grp = 'a' and id = 7 and val > 2.0"),
            lambda name, cols: cols == ("id",),
        )
        assert annotation.probe is not None
        assert annotation.probe_columns == ("id",)
        assert annotation.probe.value == 7
        # unchosen pushable folded back in front of the residual
        assert annotation.residual == pred("grp = 'a' and val > 2.0")

    def test_annotate_without_index_full_scans(self):
        predicate = pred("id = 7")
        annotation = annotate_scan(REL, predicate, lambda name, cols: False)
        assert annotation.probe is None
        assert annotation.residual == predicate

    def test_probe_consuming_whole_predicate_leaves_no_residual(self):
        annotation = annotate_scan(
            REL, pred("id = 7"), lambda name, cols: cols == ("id",)
        )
        assert annotation.probe is not None
        assert annotation.residual is None


# -- executor over small batches ---------------------------------------


class TestSmallBatchExecution:
    """batch_size=2 forces every multi-batch code path on tiny data."""

    @pytest.fixture
    def db(self):
        from repro.db import Database

        db = Database()
        db.execute_script(
            """
            create table T(id int primary key, grp varchar(5), val float);
            insert into T values (1,'a',10.0),(2,'a',20.0),(3,'b',30.0),
                (4,'b',null),(5,'c',50.0),(6,'a',60.0),(7,null,70.0);
            """
        )
        return db

    def _run_small(self, db, sql):
        from repro.db import SessionContext, _QueryContext
        from repro.sql.parser import parse_statement

        session = SessionContext()
        plan = db.plan_query(parse_statement(sql), session, None)
        executor = VectorizedExecutor(
            _QueryContext(db, session, None), batch_size=2
        )
        return executor.execute(plan), executor

    @pytest.mark.parametrize(
        "sql",
        [
            "select * from T where val > 15.0",
            "select grp, count(*), sum(val) from T group by grp",
            "select a.id, b.id from T a, T b where a.grp = b.grp and a.id < b.id",
            "select distinct grp from T",
            "select id, val from T order by val desc limit 3",
            "select a.id, b.id from T a left join T b on a.id = b.id and b.val > 25.0",
        ],
    )
    def test_matches_row_engine(self, db, sql):
        from collections import Counter

        rows, _ = self._run_small(db, sql)
        oracle = db.execute_query(sql, engine="row")
        assert Counter(rows) == Counter(oracle.rows)

    def test_index_probe_counts_fetched_rows_only(self, db):
        rows, executor = self._run_small(db, "select * from T where id = 3")
        assert rows == [(3, "b", 30.0)]
        assert executor.index_probes == 1
        assert executor.rows_scanned == 1
