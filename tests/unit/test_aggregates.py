"""Unit tests for aggregate accumulators (SQL semantics)."""

import pytest

from repro.errors import TypeError_
from repro.engine.aggregates import make_accumulator


def run(name, values, distinct=False, star=False):
    acc = make_accumulator(name, distinct, star)
    for v in values:
        acc.add(v)
    return acc.result()


class TestCount:
    def test_count_star_counts_everything(self):
        assert run("count", [1, None, 2], star=True) == 3

    def test_count_ignores_nulls(self):
        assert run("count", [1, None, 2]) == 2

    def test_count_distinct(self):
        assert run("count", [1, 1, 2, None], distinct=True) == 2

    def test_count_empty_is_zero(self):
        assert run("count", []) == 0


class TestSum:
    def test_sum(self):
        assert run("sum", [1, 2, 3]) == 6

    def test_sum_ignores_nulls(self):
        assert run("sum", [1, None, 2]) == 3

    def test_sum_empty_is_null(self):
        assert run("sum", []) is None

    def test_sum_all_nulls_is_null(self):
        assert run("sum", [None, None]) is None

    def test_sum_distinct(self):
        assert run("sum", [2, 2, 3], distinct=True) == 5

    def test_sum_non_numeric_raises(self):
        with pytest.raises(TypeError_):
            run("sum", ["a"])


class TestAvg:
    def test_avg(self):
        assert run("avg", [1, 2, 3]) == 2.0

    def test_avg_ignores_nulls(self):
        assert run("avg", [2, None, 4]) == 3.0

    def test_avg_empty_is_null(self):
        assert run("avg", []) is None

    def test_avg_distinct(self):
        assert run("avg", [2, 2, 4], distinct=True) == 3.0


class TestMinMax:
    def test_min_max(self):
        assert run("min", [3, 1, 2]) == 1
        assert run("max", [3, 1, 2]) == 3

    def test_strings(self):
        assert run("min", ["b", "a"]) == "a"

    def test_nulls_ignored(self):
        assert run("min", [None, 5, None]) == 5

    def test_empty_is_null(self):
        assert run("min", []) is None
        assert run("max", []) is None


def test_unknown_aggregate():
    from repro.errors import ExecutionError

    with pytest.raises(ExecutionError):
        make_accumulator("median", False, False)
