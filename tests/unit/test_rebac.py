"""Unit and property tests for the ReBAC subsystem (repro.rebac).

The determinism contracts under test:

* cycle rejection is *deterministic*: the same cyclic tuple set yields
  the same byte-stable error message no matter the insertion order;
* the grant closure is *insertion-order independent*: every permutation
  of a tuple set compiles to identical RebacGrants rows and identical
  justifying chains;
* expiry composes as a minimum over the chain and is evaluated against
  the injectable clock, never the wall clock.
"""

import itertools
import random

import pytest

from repro.db import Database
from repro.errors import RebacCycleError, RebacError
from repro.rebac import (
    NEVER_EXPIRES,
    Computed,
    Direct,
    NamespaceConfig,
    ObjectTypeDef,
    RelationDef,
    RelationTuple,
    TableBinding,
    TupleStore,
    Via,
    attach_rebac,
    compile_views,
    compute_closure,
    detect_cycle,
)
from repro.rebac.compiler import closure_rows, view_name, view_sql
from repro.rebac.tuples import cycle_error, parse_object, parse_subject
from repro.service.clock import ManualClock
from repro.workloads.collab import collab_namespace


def doc_namespace() -> NamespaceConfig:
    """A small two-type namespace: teams and documents."""
    return NamespaceConfig(
        [
            ObjectTypeDef(name="team", relations=(RelationDef("member"),)),
            ObjectTypeDef(
                name="document",
                relations=(
                    RelationDef("parent"),
                    RelationDef(
                        "viewer",
                        union=(
                            Direct(),
                            Computed("editor"),
                            Via("parent", "viewer"),
                        ),
                    ),
                    RelationDef(
                        "editor", union=(Direct(), Via("parent", "editor"))
                    ),
                ),
                permissions=("viewer", "editor"),
                binding=TableBinding(
                    table="Documents",
                    id_column="doc_id",
                    columns=("doc_id", "title"),
                ),
            ),
        ]
    )


# -- tuples and parsing ------------------------------------------------------


class TestTupleParsing:
    def test_parse_object(self):
        assert parse_object("document:readme") == ("document", "readme")

    @pytest.mark.parametrize(
        "bad", ["readme", "document:", ":readme", "document:a#b"]
    )
    def test_parse_object_rejects(self, bad):
        with pytest.raises(RebacError):
            parse_object(bad)

    def test_parse_subject_user(self):
        assert parse_subject("user:alice") == ("user", "alice", None)

    def test_parse_subject_userset(self):
        assert parse_subject("team:eng#member") == ("team", "eng", "member")

    @pytest.mark.parametrize("bad", ["team:eng#", "eng#member", "team:"])
    def test_parse_subject_rejects(self, bad):
        with pytest.raises(RebacError):
            parse_subject(bad)

    def test_tuple_properties(self):
        t = RelationTuple("document:d", "viewer", "team:eng#member")
        assert t.subject_is_userset and not t.subject_is_user
        assert t.subject_object == "team:eng"
        assert t.subject_relation == "member"
        assert t.never_expires
        u = RelationTuple("document:d", "viewer", "user:a", expires_at=5.0)
        assert u.subject_is_user and not u.never_expires

    def test_round_trip_dict(self):
        t = RelationTuple("document:d", "viewer", "user:a", expires_at=7.5)
        assert RelationTuple.from_dict(t.as_dict()) == t


class TestTupleStore:
    def test_write_replaces_expiry(self):
        store = TupleStore()
        store.write(RelationTuple("document:d", "viewer", "user:a"))
        store.write(
            RelationTuple("document:d", "viewer", "user:a", expires_at=9.0)
        )
        assert len(store) == 1
        assert store.get(("document:d", "viewer", "user:a")).expires_at == 9.0

    def test_delete_and_contains(self):
        store = TupleStore()
        t = RelationTuple("document:d", "viewer", "user:a")
        store.write(t)
        assert t.key() in store
        assert store.delete(t.key()) == t
        assert store.delete(t.key()) is None
        assert t.key() not in store

    def test_snapshot_sorted(self):
        store = TupleStore()
        store.write(RelationTuple("b:1", "viewer", "user:a"))
        store.write(RelationTuple("a:1", "viewer", "user:a"))
        snapshot = store.snapshot()
        assert snapshot == sorted(snapshot)


# -- namespace validation ----------------------------------------------------


class TestNamespaceValidation:
    def test_computed_must_reference_known_relation(self):
        with pytest.raises(RebacError):
            NamespaceConfig(
                [
                    ObjectTypeDef(
                        name="document",
                        relations=(
                            RelationDef(
                                "viewer", union=(Computed("missing"),)
                            ),
                        ),
                    )
                ]
            )

    def test_via_must_reference_known_hierarchy(self):
        with pytest.raises(RebacError):
            NamespaceConfig(
                [
                    ObjectTypeDef(
                        name="document",
                        relations=(
                            RelationDef(
                                "viewer", union=(Via("missing", "viewer"),)
                            ),
                        ),
                    )
                ]
            )

    def test_permission_needs_matching_relation(self):
        with pytest.raises(RebacError):
            NamespaceConfig(
                [
                    ObjectTypeDef(
                        name="document",
                        relations=(RelationDef("viewer"),),
                        permissions=("editor",),
                    )
                ]
            )

    def test_validate_tuple_unknown_type_and_relation(self):
        ns = doc_namespace()
        with pytest.raises(RebacError):
            ns.validate_tuple(RelationTuple("nope:1", "viewer", "user:a"))
        with pytest.raises(RebacError):
            ns.validate_tuple(RelationTuple("document:1", "nope", "user:a"))

    def test_validate_tuple_userset_relation_must_exist(self):
        ns = doc_namespace()
        with pytest.raises(RebacError):
            ns.validate_tuple(
                RelationTuple("document:1", "viewer", "team:eng#nope")
            )

    def test_plain_object_subject_only_on_hierarchy_relations(self):
        ns = doc_namespace()
        # parent is a hierarchy relation (Via targets it) — allowed
        ns.validate_tuple(
            RelationTuple("document:1", "parent", "document:2")
        )
        with pytest.raises(RebacError) as exc:
            ns.validate_tuple(
                RelationTuple("document:1", "viewer", "document:2")
            )
        assert "is not a hierarchy relation" in str(exc.value)

    def test_state_round_trip(self):
        ns = collab_namespace()
        assert NamespaceConfig.from_state(ns.to_state()).to_state() == (
            ns.to_state()
        )


# -- cycle detection ---------------------------------------------------------


class TestCycleDetection:
    HIER = frozenset({"parent"})

    def test_no_cycle_on_tree(self):
        tuples = [
            RelationTuple("document:a", "parent", "document:root"),
            RelationTuple("document:b", "parent", "document:root"),
            RelationTuple("document:root", "viewer", "team:eng#member"),
        ]
        assert detect_cycle(tuples, self.HIER) is None

    def test_self_loop(self):
        tuples = [RelationTuple("document:a", "parent", "document:a")]
        cycle = detect_cycle(tuples, self.HIER)
        assert cycle == ["document:a"]

    def test_canonical_rotation(self):
        tuples = [
            RelationTuple("document:z", "parent", "document:m"),
            RelationTuple("document:m", "parent", "document:a"),
            RelationTuple("document:a", "parent", "document:z"),
        ]
        cycle = detect_cycle(tuples, self.HIER)
        assert cycle[0] == "document:a"  # smallest node leads

    def test_error_message_is_byte_stable(self):
        message = str(cycle_error(["document:a", "document:b"]))
        assert message == (
            "relationship cycle detected in the group graph: "
            "document:a -> document:b -> document:a"
        )

    def test_cycle_report_independent_of_insertion_order(self):
        """Property: every permutation of a cyclic tuple set reports the
        same canonical cycle (and so the same error bytes)."""
        tuples = [
            RelationTuple("document:a", "parent", "document:b"),
            RelationTuple("document:b", "parent", "document:c"),
            RelationTuple("document:c", "parent", "document:a"),
            RelationTuple("document:x", "parent", "document:a"),
            RelationTuple("document:a", "viewer", "team:eng#member"),
        ]
        reports = {
            str(cycle_error(detect_cycle(perm, self.HIER)))
            for perm in itertools.permutations(tuples)
        }
        assert len(reports) == 1

    def test_random_graphs_deterministic(self):
        """Property: random graphs with one injected back-edge reject
        deterministically across shuffles of the write order."""
        for seed in range(12):
            rng = random.Random(seed)
            n = rng.randrange(4, 9)
            nodes = [f"document:n{i}" for i in range(n)]
            parents = {i: rng.randrange(i) for i in range(1, n)}
            tuples = [
                RelationTuple(nodes[i], "parent", nodes[parents[i]])
                for i in range(1, n)
            ]
            # inject a back-edge: make an ancestor of ``hi`` depend on
            # it, which is guaranteed to close a loop
            hi = rng.randrange(1, n)
            ancestors = []
            cursor = hi
            while cursor in parents:
                cursor = parents[cursor]
                ancestors.append(cursor)
            anc = rng.choice(ancestors)
            tuples.append(RelationTuple(nodes[anc], "parent", nodes[hi]))
            baseline = detect_cycle(sorted(tuples), self.HIER)
            assert baseline is not None
            for _ in range(6):
                shuffled = list(tuples)
                rng.shuffle(shuffled)
                assert detect_cycle(shuffled, self.HIER) == baseline


# -- the grant closure -------------------------------------------------------


def closure_tuples():
    """Direct, userset, computed, and hierarchy rules all exercised."""
    return [
        RelationTuple("team:eng", "member", "user:alice"),
        RelationTuple("team:eng", "member", "user:bob"),
        RelationTuple("document:root", "viewer", "team:eng#member"),
        RelationTuple("document:mid", "parent", "document:root"),
        RelationTuple("document:leaf", "parent", "document:mid"),
        RelationTuple("document:leaf", "editor", "user:carol", expires_at=50.0),
        RelationTuple("document:root", "viewer", "user:dave", expires_at=99.0),
    ]


class TestClosure:
    def test_userset_and_hierarchy_propagation(self):
        ns = doc_namespace()
        closure = compute_closure(ns, sorted(closure_tuples()))
        leaf = closure[("document:leaf", "viewer")]
        assert "alice" in leaf and "bob" in leaf
        # alice's chain: leaf -> mid -> root -> team -> user
        assert len(leaf["alice"].chain) == 4
        assert leaf["alice"].chain[0].object == "document:leaf"
        assert leaf["alice"].chain[-1].subject == "user:alice"

    def test_computed_folds_editor_into_viewer(self):
        ns = doc_namespace()
        closure = compute_closure(ns, sorted(closure_tuples()))
        # carol is an editor, so also a viewer, with the expiry carried
        assert closure[("document:leaf", "editor")]["carol"].expires_at == 50.0
        assert closure[("document:leaf", "viewer")]["carol"].expires_at == 50.0

    def test_chain_expiry_is_minimum(self):
        ns = doc_namespace()
        closure = compute_closure(ns, sorted(closure_tuples()))
        # dave's direct root grant expires at 99; the chain down to the
        # leaf can be no fresher
        assert closure[("document:leaf", "viewer")]["dave"].expires_at == 99.0

    def test_never_expires_sentinel(self):
        ns = doc_namespace()
        closure = compute_closure(ns, sorted(closure_tuples()))
        grant = closure[("document:leaf", "viewer")]["alice"]
        assert grant.expires_at == NEVER_EXPIRES and grant.never_expires

    def test_rows_and_chains_insertion_order_independent(self):
        """Property: every permutation of the tuple set yields identical
        grant rows *and* identical justifying chains."""
        ns = doc_namespace()
        tuples = closure_tuples()
        baseline_rows = None
        baseline_chains = None
        for perm in itertools.permutations(tuples):
            closure = compute_closure(ns, list(perm))
            rows = closure_rows(ns, closure)
            chains = {
                (object_, relation, user): tuple(
                    t.key() for t in grant.chain
                )
                for (object_, relation), grants in closure.items()
                for user, grant in grants.items()
            }
            if baseline_rows is None:
                baseline_rows, baseline_chains = rows, chains
            else:
                assert rows == baseline_rows
                assert chains == baseline_chains

    def test_random_tuple_sets_insertion_order_independent(self):
        """Property over random grant graphs, shuffled write orders."""
        ns = doc_namespace()
        for seed in range(8):
            rng = random.Random(1000 + seed)
            tuples = [
                RelationTuple("team:eng", "member", f"user:u{i}")
                for i in range(rng.randrange(1, 4))
            ]
            docs = [f"document:d{i}" for i in range(rng.randrange(2, 6))]
            for i, doc in enumerate(docs[1:], start=1):
                tuples.append(
                    RelationTuple(doc, "parent", docs[rng.randrange(i)])
                )
            tuples.append(
                RelationTuple(docs[0], "viewer", "team:eng#member")
            )
            for doc in docs:
                if rng.random() < 0.5:
                    expiry = (
                        None if rng.random() < 0.5 else rng.uniform(1, 100)
                    )
                    tuples.append(
                        RelationTuple(
                            doc,
                            "editor",
                            f"user:x{rng.randrange(3)}",
                            expires_at=(
                                NEVER_EXPIRES if expiry is None else expiry
                            ),
                        )
                    )
            baseline = closure_rows(ns, compute_closure(ns, list(tuples)))
            for _ in range(4):
                shuffled = list(tuples)
                rng.shuffle(shuffled)
                assert (
                    closure_rows(ns, compute_closure(ns, shuffled))
                    == baseline
                )

    def test_closure_only_materializes_permissions(self):
        ns = doc_namespace()
        rows = closure_rows(ns, compute_closure(ns, closure_tuples()))
        # "member" and "parent" are plumbing relations, not permissions
        assert all(row[2] in ("viewer", "editor") for row in rows)
        assert rows == sorted(rows)


# -- the compiler ------------------------------------------------------------


class TestCompiler:
    def test_view_name(self):
        assert view_name("document", "viewer") == "RebacDocumentViewer"

    def test_view_sql_stays_in_cq_fragment(self):
        sql = view_sql(doc_namespace(), "document", "viewer")
        lowered = sql.lower()
        assert "$user_id" in sql and "$time" in sql
        assert "expires_at > $time" in sql
        # conjunctive-query fragment: no OR, no IS NULL, no NOT
        assert " or " not in lowered and "is null" not in lowered

    def test_view_sql_rejects_undeclared_permission(self):
        with pytest.raises(RebacError):
            view_sql(doc_namespace(), "document", "parent")

    def test_view_sql_requires_binding(self):
        with pytest.raises(RebacError):
            view_sql(doc_namespace(), "team", "member")

    def test_compile_views_covers_all_permissions(self):
        ddl = compile_views(collab_namespace())
        names = {line.split()[3] for line in ddl}
        assert names == {
            "RebacDocumentViewer",
            "RebacDocumentEditor",
            "RebacFolderViewer",
            "RebacFolderEditor",
            "RebacMyGrants",
        }


# -- the manager (single-node, no durability) --------------------------------


def managed_db():
    db = Database()
    db.execute_script(
        """
        create table Documents(doc_id varchar(20) primary key,
            title varchar(40) not null);
        """
    )
    manager = attach_rebac(db, doc_namespace())
    return db, manager


class TestManager:
    def test_attach_deploys_schema_views_and_grants(self):
        db, manager = managed_db()
        assert db.table("RebacGrants") is not None
        views = {v.name for v in db.catalog.views()}
        assert "RebacDocumentViewer" in views and "RebacMyGrants" in views
        # compiled views are PUBLIC: scoping lives in the $user_id join
        assert db.grants.is_granted("RebacDocumentViewer", "anyone")

    def test_attach_twice_rejected(self):
        db, manager = managed_db()
        with pytest.raises(RebacError):
            attach_rebac(db, doc_namespace())

    def test_write_tuple_materializes_rows(self):
        db, manager = managed_db()
        manager.write_tuple("document:d", "viewer", "user:alice")
        rows = db.execute("select * from RebacGrants").rows
        assert ("document", "d", "viewer", "alice", NEVER_EXPIRES) in rows

    def test_delete_tuple_removes_rows(self):
        db, manager = managed_db()
        manager.write_tuple("document:d", "viewer", "user:alice")
        manager.delete_tuple("document:d", "viewer", "user:alice")
        assert db.execute("select * from RebacGrants").rows == []
        assert manager.delete_tuple("document:d", "viewer", "user:a") is None

    def test_cycle_write_rejected_atomically(self):
        db, manager = managed_db()
        manager.write_tuple("document:a", "parent", "document:b")
        before_rows = db.execute("select * from RebacGrants").rows
        before_tuples = manager.store.snapshot()
        with pytest.raises(RebacCycleError) as exc:
            manager.write_tuple("document:b", "parent", "document:a")
        assert str(exc.value) == (
            "relationship cycle detected in the group graph: "
            "document:a -> document:b -> document:a"
        )
        # nothing mutated: tuples, rows, and the closure all unchanged
        assert manager.store.snapshot() == before_tuples
        assert db.execute("select * from RebacGrants").rows == before_rows

    def test_denial_reasons(self):
        db, manager = managed_db()
        manager.write_tuple(
            "document:d", "viewer", "user:alice", expires_at=10.0
        )
        assert manager.denial_reason("document:d", "viewer", "alice") is None
        assert manager.denial_reason("document:d", "viewer", "bob") == (
            "no relationship-tuple chain grants 'viewer' on document:d "
            "to user 'bob'"
        )
        assert manager.denial_reason(
            "document:d", "viewer", "alice", at_time=11.0
        ) == (
            "the tuple chain granting 'viewer' on document:d to user "
            "'alice' expired at 10.0"
        )

    def test_expire_tuples_uses_injected_clock(self):
        clock = ManualClock(now=100.0)
        db = Database()
        db.execute_script(
            "create table Documents(doc_id varchar(20) primary key,"
            " title varchar(40) not null);"
        )
        manager = attach_rebac(db, doc_namespace(), clock=clock)
        manager.write_tuple(
            "document:d", "viewer", "user:alice", expires_at=150.0
        )
        manager.write_tuple("document:d", "viewer", "user:bob")
        assert manager.expire_tuples() == []
        clock.advance(75.0)
        expired = manager.expire_tuples()
        assert [t.subject for t in expired] == ["user:alice"]
        rows = db.execute("select user_id from RebacGrants").rows
        assert rows == [("bob",)]

    def test_stats(self):
        db, manager = managed_db()
        manager.write_tuple("document:d", "viewer", "user:alice")
        stats = manager.stats()
        assert stats["rebac_tuples"] == 1
        assert stats["rebac_grant_rows"] == 1
        # document viewer + editor + the RebacMyGrants introspection view
        assert stats["rebac_views"] == 3
        assert stats["rebac_recompiles"] == 1

    def test_user_grants_and_view_permission(self):
        db, manager = managed_db()
        manager.write_tuple("document:d", "editor", "user:alice")
        grants = manager.user_grants("alice")
        assert {(o, r) for o, r, _ in grants} == {
            ("document:d", "editor"),
            ("document:d", "viewer"),  # editors are viewers (Computed)
        }
        assert manager.view_permission("RebacDocumentViewer") == (
            "document",
            "viewer",
        )
        assert manager.view_permission("NoSuchView") is None
