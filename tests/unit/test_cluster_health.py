"""The replica failure detector, anti-entropy digests, and backoff.

Unit coverage for :mod:`repro.cluster.health`: the
HEALTHY → SUSPECT → QUARANTINED → CATCHING_UP → HEALTHY state machine
driven by a ManualClock (no wall-clock sleeps), the order-insensitive
content digests the anti-entropy pass compares, and the shared
exponential-backoff-with-jitter schedule.
"""

import random

import pytest

from repro.cluster.health import (
    CATCHING_UP,
    HEALTHY,
    QUARANTINED,
    SUSPECT,
    HealthMonitor,
    backoff_delays,
    content_digests,
)
from repro.db import Database
from repro.service.clock import ManualClock


def monitor(**kwargs) -> tuple[HealthMonitor, ManualClock]:
    clock = ManualClock()
    kwargs.setdefault("suspect_after", 5.0)
    kwargs.setdefault("quarantine_after", 15.0)
    kwargs.setdefault("failure_threshold", 3)
    return HealthMonitor(clock=clock, **kwargs), clock


class TestStateMachine:
    def test_registers_healthy(self):
        hm, _ = monitor()
        hm.register("r0")
        assert hm.state_of("r0") == HEALTHY
        assert hm.is_serving("r0") and hm.may_ship("r0")

    def test_silence_ages_into_suspect_then_quarantine(self):
        hm, clock = monitor()
        hm.register("r0")
        clock.advance(4.9)
        hm.tick()
        assert hm.state_of("r0") == HEALTHY
        clock.advance(0.2)  # past suspect_after
        hm.tick()
        assert hm.state_of("r0") == SUSPECT
        assert not hm.is_serving("r0")
        assert hm.may_ship("r0")  # suspects still receive commits
        clock.advance(10.0)  # past quarantine_after
        hm.tick()
        assert hm.state_of("r0") == QUARANTINED
        assert not hm.may_ship("r0")

    def test_heartbeat_recovers_suspect(self):
        hm, clock = monitor()
        hm.register("r0")
        clock.advance(6.0)
        hm.tick()
        assert hm.state_of("r0") == SUSPECT
        hm.heartbeat("r0")
        assert hm.state_of("r0") == HEALTHY

    def test_heartbeat_never_promotes_quarantined(self):
        """Only the catch-up gate (mark_healthy) may clear quarantine —
        a stray late ship ack must not reopen routing."""
        hm, clock = monitor()
        hm.register("r0")
        clock.advance(20.0)
        hm.tick()
        assert hm.state_of("r0") == QUARANTINED
        hm.heartbeat("r0")
        assert hm.state_of("r0") == QUARANTINED
        hm.begin_catch_up("r0")
        hm.heartbeat("r0")
        assert hm.state_of("r0") == CATCHING_UP

    def test_consecutive_failures_quarantine_immediately(self):
        hm, _ = monitor(failure_threshold=3)
        hm.register("r0")
        assert hm.record_failure("r0", "boom 1") == SUSPECT
        assert hm.record_failure("r0", "boom 2") == SUSPECT
        assert hm.record_failure("r0", "boom 3") == QUARANTINED
        snap = hm.snapshot()["r0"]
        assert snap["failures"] == 3
        assert snap["last_error"] == "boom 3"

    def test_heartbeat_resets_failure_streak(self):
        hm, _ = monitor(failure_threshold=3)
        hm.register("r0")
        hm.record_failure("r0")
        hm.record_failure("r0")
        hm.heartbeat("r0")
        assert hm.state_of("r0") == HEALTHY
        # streak restarted: two more failures stay SUSPECT
        hm.record_failure("r0")
        assert hm.record_failure("r0") == SUSPECT

    def test_catch_up_cycle_counts(self):
        hm, _ = monitor()
        hm.register("r0")
        hm.quarantine("r0", "partition")
        hm.begin_catch_up("r0")
        assert hm.state_of("r0") == CATCHING_UP
        assert not hm.is_serving("r0") and not hm.may_ship("r0")
        hm.mark_healthy("r0")
        snap = hm.snapshot()["r0"]
        assert hm.state_of("r0") == HEALTHY
        assert snap["catchups"] == 1
        assert snap["quarantines"] == 1

    def test_divergence_accounting(self):
        hm, _ = monitor()
        hm.register("r0")
        hm.register("r1")
        hm.record_divergence("r0")
        hm.record_divergence("r0")
        hm.record_divergence("r1")
        assert hm.unresolved_divergences() == 3
        # a clean rejoin resolves that replica's divergences
        hm.mark_healthy("r0")
        assert hm.unresolved_divergences() == 1
        snap = hm.snapshot()
        assert snap["r0"]["divergences"] == 2  # history is kept
        assert snap["r0"]["unresolved_divergences"] == 0
        assert snap["r1"]["unresolved_divergences"] == 1

    def test_snapshot_reports_heartbeat_age(self):
        hm, clock = monitor()
        hm.register("r0")
        clock.advance(2.5)
        assert hm.snapshot()["r0"]["heartbeat_age_s"] == pytest.approx(2.5)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            HealthMonitor(suspect_after=0.0)
        with pytest.raises(ValueError):
            HealthMonitor(suspect_after=10.0, quarantine_after=5.0)


class TestContentDigests:
    def _db(self, rows):
        db = Database()
        db.execute("create table T (a int primary key, b varchar(10))")
        for a, b in rows:
            db.execute(f"insert into T values ({a}, '{b}')")
        return db

    def test_order_insensitive(self):
        """The same (rid, row) multiset digests identically regardless
        of insert order — the property that lets the coordinator's
        merged-shard iteration compare against a replica's apply order."""
        rows = [(1, "x"), (2, "y"), (3, "z")]
        a = self._db(rows)
        b = Database()
        b.execute("create table T (a int primary key, b varchar(10))")
        # same row ids, inserted in reverse order
        for rid, (x, y) in reversed(list(enumerate(rows))):
            b.table("T").insert((x, y), row_id=rid)
        assert content_digests(a)["t"] == content_digests(b)["t"]

    def test_row_difference_changes_table_digest(self):
        a = self._db([(1, "x"), (2, "y")])
        b = self._db([(1, "x"), (2, "Y")])
        assert content_digests(a)["t"] != content_digests(b)["t"]

    def test_digest_memoized_until_mutation(self):
        """Table digests are cached against ``data_version``: a second
        pass over an unmutated table reuses the digest, and any mutation
        through the storage API invalidates it — never a stale match."""
        db = self._db([(1, "x"), (2, "y")])
        first = content_digests(db)["t"]
        table = db.table("T")
        assert table._digest_cache == (table.data_version, first)
        # poison the cached value: an unmutated table serves the cache
        table._digest_cache = (table.data_version, 12345)
        assert content_digests(db)["t"] == 12345
        # any mutation bumps data_version and forces a rehash
        db.execute("insert into T values (3, 'z')")
        after_insert = content_digests(db)["t"]
        assert after_insert != 12345
        rid, row = next(iter(table.rows_with_ids()))
        table.update_row(rid, (row[0], "flipped"))
        assert content_digests(db)["t"] != after_insert

    def test_missing_revoke_changes_policy_digest(self):
        """A replica that silently lost a revoke can never digest clean."""
        a = self._db([(1, "x")])
        a.execute("create authorization view V as select * from T")
        a.grant("V", "u1")
        b = self._db([(1, "x")])
        b.execute("create authorization view V as select * from T")
        b.grant("V", "u1")
        assert content_digests(a)["__policy__"] == (
            content_digests(b)["__policy__"]
        )
        a.grants.revoke("V", "u1")
        assert content_digests(a)["__policy__"] != (
            content_digests(b)["__policy__"]
        )
        # table digests are unaffected by the policy change
        assert content_digests(a)["t"] == content_digests(b)["t"]


class TestBackoffDelays:
    def test_deterministic_with_seeded_rng(self):
        a = backoff_delays(6, base=0.05, cap=1.0, rng=random.Random(42))
        b = backoff_delays(6, base=0.05, cap=1.0, rng=random.Random(42))
        assert a == b and len(a) == 6

    def test_equal_jitter_bounds_and_cap(self):
        delays = backoff_delays(10, base=0.05, cap=0.4, rng=random.Random(1))
        for i, delay in enumerate(delays):
            ceiling = min(0.4, 0.05 * (2**i))
            assert ceiling / 2 <= delay <= ceiling
        # the tail is capped, not exponential forever
        assert max(delays) <= 0.4

    def test_zero_attempts_and_validation(self):
        assert backoff_delays(0) == []
        with pytest.raises(ValueError):
            backoff_delays(-1)
