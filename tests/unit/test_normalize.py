"""Unit tests for predicate normalization."""

from repro.sql import ast
from repro.sql.parser import Parser
from repro.algebra.normalize import normalize_predicate


def pred(text):
    return Parser(text).parse_expr()


def norm(text):
    return normalize_predicate(pred(text))


class TestFlattening:
    def test_and_tree_flattens(self):
        assert len(norm("a.x = 1 and a.y = 2 and a.z = 3")) == 3

    def test_none_is_empty(self):
        assert normalize_predicate(None) == ()

    def test_true_dropped(self):
        assert norm("true") == ()
        assert len(norm("a.x = 1 and true")) == 1

    def test_duplicates_removed(self):
        assert len(norm("a.x = 1 and a.x = 1")) == 1


class TestBetween:
    def test_between_expands(self):
        conjuncts = norm("a.x between 1 and 5")
        assert conjuncts == (
            ast.BinaryOp(">=", ast.ColumnRef("a", "x"), ast.Literal(1)),
            ast.BinaryOp("<=", ast.ColumnRef("a", "x"), ast.Literal(5)),
        )

    def test_not_between_kept_atomic(self):
        conjuncts = norm("a.x not between 1 and 5")
        assert len(conjuncts) == 1
        assert isinstance(conjuncts[0], ast.Between) and conjuncts[0].negated


class TestNotPushing:
    def test_not_comparison(self):
        assert norm("not a.x = 1") == norm("a.x <> 1")

    def test_double_negation(self):
        assert norm("not not a.x = 1") == norm("a.x = 1")

    def test_not_lt(self):
        assert norm("not a.x < 5") == norm("a.x >= 5")

    def test_not_is_null(self):
        (conj,) = norm("not a.x is null")
        assert isinstance(conj, ast.IsNull) and conj.negated

    def test_not_in(self):
        (conj,) = norm("not a.x in (1, 2)")
        assert isinstance(conj, ast.InList) and conj.negated

    def test_de_morgan_over_or(self):
        conjuncts = norm("not (a.x = 1 or a.y = 2)")
        assert len(conjuncts) == 2
        assert conjuncts == norm("a.x <> 1 and a.y <> 2")


class TestOrientation:
    def test_constant_moves_right(self):
        assert norm("5 < a.x") == norm("a.x > 5")

    def test_equality_constant_right(self):
        assert norm("1 = a.x") == norm("a.x = 1")

    def test_col_col_ordered(self):
        assert norm("b.y = a.x") == norm("a.x = b.y")

    def test_col_col_inequality_flips_op(self):
        assert norm("b.y > a.x") == norm("a.x < b.y")


class TestInLists:
    def test_singleton_in_becomes_equality(self):
        assert norm("a.x in (7)") == norm("a.x = 7")

    def test_in_items_sorted(self):
        assert norm("a.x in (3, 1, 2)") == norm("a.x in (1, 2, 3)")


class TestDisjunctionsStayAtomic:
    def test_or_kept(self):
        (conj,) = norm("a.x = 1 or a.y = 2")
        assert isinstance(conj, ast.BinaryOp) and conj.op == "or"
