"""Unit tests for row storage and hash indexes."""

import pytest

from repro.errors import ExecutionError, IntegrityError
from repro.catalog import Column, DataType, TableSchema
from repro.storage import HashIndex, Table


def make_table(unique_on=None):
    schema = TableSchema(
        "T",
        (
            Column("id", DataType.INT, not_null=True),
            Column("name", DataType.TEXT),
            Column("score", DataType.FLOAT),
        ),
    )
    table = Table(schema)
    if unique_on:
        table.create_index(unique_on, unique=True)
    return table


class TestTable:
    def test_insert_and_iterate(self):
        t = make_table()
        t.insert((1, "a", 1.5))
        t.insert((2, "b", None))
        assert sorted(t.rows()) == [(1, "a", 1.5), (2, "b", None)]
        assert len(t) == 2

    def test_bag_semantics_duplicates(self):
        t = make_table()
        t.insert((1, "a", 1.0))
        t.insert((1, "a", 1.0))
        assert len(t) == 2

    def test_coercion_on_insert(self):
        t = make_table()
        t.insert((1, "a", 2))  # int -> float column
        assert list(t.rows())[0][2] == 2.0

    def test_not_null_enforced(self):
        t = make_table()
        with pytest.raises(IntegrityError):
            t.insert((None, "a", 1.0))

    def test_arity_check(self):
        t = make_table()
        with pytest.raises(ExecutionError):
            t.insert((1, "a"))

    def test_unique_index_enforced(self):
        t = make_table(unique_on=("id",))
        t.insert((1, "a", 1.0))
        with pytest.raises(IntegrityError):
            t.insert((1, "b", 2.0))

    def test_unique_allows_null_keys(self):
        schema = TableSchema("T", (Column("id", DataType.INT), Column("x", DataType.INT)))
        t = Table(schema)
        t.create_index(("x",), unique=True)
        t.insert((1, None))
        t.insert((2, None))  # SQL UNIQUE permits multiple NULLs
        assert len(t) == 2

    def test_delete_row_updates_index(self):
        t = make_table(unique_on=("id",))
        rid = t.insert((1, "a", 1.0))
        t.delete_row(rid)
        t.insert((1, "again", 2.0))  # id reusable after delete
        assert len(t) == 1

    def test_update_row(self):
        t = make_table(unique_on=("id",))
        rid = t.insert((1, "a", 1.0))
        old = t.update_row(rid, (1, "z", 9.0))
        assert old == (1, "a", 1.0)
        assert list(t.rows()) == [(1, "z", 9.0)]

    def test_update_row_unique_violation(self):
        t = make_table(unique_on=("id",))
        t.insert((1, "a", 1.0))
        rid = t.insert((2, "b", 2.0))
        with pytest.raises(IntegrityError):
            t.update_row(rid, (1, "b", 2.0))

    def test_update_row_same_key_allowed(self):
        t = make_table(unique_on=("id",))
        rid = t.insert((1, "a", 1.0))
        t.update_row(rid, (1, "b", 1.0))  # key unchanged: no violation

    def test_delete_where(self):
        t = make_table()
        for i in range(5):
            t.insert((i, "x", float(i)))
        deleted = t.delete_where(lambda row: row[0] % 2 == 0)
        assert deleted == 3 and len(t) == 2

    def test_truncate(self):
        t = make_table(unique_on=("id",))
        t.insert((1, "a", 1.0))
        t.truncate()
        assert len(t) == 0

    def test_distinct_count(self):
        t = make_table()
        t.insert((1, "a", 1.0))
        t.insert((2, "a", 2.0))
        assert t.distinct_count("name") == 1
        assert t.distinct_count("id") == 2


class TestHashIndex:
    def test_lookup(self):
        t = make_table()
        index = t.create_index(("name",))
        t.insert((1, "a", 1.0))
        t.insert((2, "a", 2.0))
        t.insert((3, "b", 3.0))
        assert len(index.lookup(("a",))) == 2
        assert index.lookup(("zzz",)) == frozenset()

    def test_lookup_null_key_empty(self):
        t = make_table()
        index = t.create_index(("name",))
        t.insert((1, None, 1.0))
        assert index.lookup((None,)) == frozenset()

    def test_index_backfills_existing_rows(self):
        t = make_table()
        t.insert((1, "a", 1.0))
        index = t.create_index(("name",))
        assert len(index.lookup(("a",))) == 1

    def test_composite_index(self):
        t = make_table()
        index = t.create_index(("id", "name"))
        t.insert((1, "a", 1.0))
        assert len(index.lookup((1, "a"))) == 1
        assert index.lookup((1, "b")) == frozenset()

    def test_find_index(self):
        t = make_table()
        t.create_index(("name",))
        assert t.find_index(("name",)) is not None
        assert t.find_index(("score",)) is None

    def test_would_violate(self):
        t = make_table(unique_on=("id",))
        rid = t.insert((1, "a", 1.0))
        index = t.find_index(("id",))
        assert index.would_violate((1, "x", 0.0))
        assert not index.would_violate((1, "x", 0.0), ignore_row_id=rid)
        assert not index.would_violate((2, "x", 0.0))


class TestIndexChurnOracle:
    """Randomized insert/delete/update churn: after every operation the
    index must answer exactly what a full scan answers, for every key
    ever seen.  Drives the same index the vectorized engine's pushdown
    scans probe, so divergence here would silently corrupt its results."""

    KEYS = ["a", "b", "c", "d", None]

    def _oracle(self, t, key):
        return {
            rid
            for rid, row in t.rows_with_ids()
            if row[1] == key
        }

    def _assert_consistent(self, t, index):
        for key in self.KEYS:
            if key is None:
                assert index.lookup((None,)) == frozenset()
                continue
            assert index.lookup((key,)) == self._oracle(t, key), key

    def test_churn_matches_full_scan(self):
        import random

        rng = random.Random(1234)
        t = make_table()
        index = t.create_index(("name",))
        live = []
        serial = 0
        for step in range(400):
            action = rng.random()
            if action < 0.5 or not live:
                serial += 1
                rid = t.insert((serial, rng.choice(self.KEYS), float(serial)))
                live.append(rid)
            elif action < 0.8:
                rid = live.pop(rng.randrange(len(live)))
                t.delete_row(rid)
            else:
                rid = rng.choice(live)
                old = t.get_row(rid)
                t.update_row(rid, (old[0], rng.choice(self.KEYS), old[2]))
            if step % 20 == 0:
                self._assert_consistent(t, index)
        self._assert_consistent(t, index)
        # every live row is indexed (NULL keys included in the buckets)
        assert len(index) == len(t)

    def test_unique_churn_never_admits_duplicates(self):
        import random

        rng = random.Random(99)
        t = make_table(unique_on=("id",))
        live = {}  # id -> row_id
        for _ in range(300):
            key = rng.randrange(12)
            action = rng.random()
            if action < 0.55:
                if key in live:
                    with pytest.raises(IntegrityError):
                        t.insert((key, "dup", 0.0))
                else:
                    live[key] = t.insert((key, "x", float(key)))
            elif action < 0.8 and live:
                victim = rng.choice(list(live))
                t.delete_row(live.pop(victim))
            elif live:
                victim = rng.choice(list(live))
                target = rng.randrange(12)
                rid = live[victim]
                if target != victim and target in live:
                    with pytest.raises(IntegrityError):
                        t.update_row(rid, (target, "y", 0.0))
                else:
                    t.update_row(rid, (target, "y", 0.0))
                    live[target] = live.pop(victim)
            # uniqueness invariant: one live row per id
            ids = [row[0] for _, row in t.rows_with_ids()]
            assert len(ids) == len(set(ids))
            assert sorted(ids) == sorted(live)

    def test_failed_insert_leaves_index_unchanged(self):
        t = make_table(unique_on=("id",))
        t.insert((1, "a", 1.0))
        index = t.find_index(("id",))
        before = index.lookup((1,))
        with pytest.raises(IntegrityError):
            t.insert((1, "b", 2.0))
        assert index.lookup((1,)) == before
        assert len(t) == 1

    def test_failed_update_preserves_old_key(self):
        t = make_table(unique_on=("id",))
        t.insert((1, "a", 1.0))
        rid = t.insert((2, "b", 2.0))
        with pytest.raises(IntegrityError):
            t.update_row(rid, (1, "b", 2.0))
        assert t.get_row(rid) == (2, "b", 2.0)
        assert index_rids(t, ("id",), (2,)) == {rid}


def index_rids(table, columns, key):
    return set(table.find_index(columns).lookup(key))


class TestMultiIndexAtomicity:
    """Satellite regression: a mutation that fails while applying a
    *later* index must roll back the entries already applied to earlier
    indexes — storage never ends half-mutated."""

    def two_unique_indexes(self):
        t = make_table(unique_on=("id",))
        t.create_index(("name",), unique=True)
        return t

    def test_insert_rolls_back_first_index_when_second_rejects(self):
        t = self.two_unique_indexes()
        t.insert((1, "a", 1.0))
        # id=2 is fresh (passes the id index) but name='a' collides in
        # the name index; defeat the pre-check on the name index so the
        # violation surfaces at *apply* time, after the id entry landed
        name_index = t.find_index(("name",))
        original = name_index.would_violate
        name_index.would_violate = lambda row, ignore_row_id=None: False
        try:
            with pytest.raises(IntegrityError):
                t.insert((2, "a", 2.0))
        finally:
            name_index.would_violate = original
        assert len(t) == 1
        assert index_rids(t, ("id",), (2,)) == set()
        assert index_rids(t, ("name",), ("a",)) == {0}

    def test_update_restores_both_indexes_when_second_rejects(self):
        t = self.two_unique_indexes()
        t.insert((1, "a", 1.0))
        rid = t.insert((2, "b", 2.0))
        name_index = t.find_index(("name",))
        original = name_index.would_violate
        name_index.would_violate = lambda row, ignore_row_id=None: False
        try:
            with pytest.raises(IntegrityError):
                # id 2 -> 3 is fine; name 'b' -> 'a' collides at apply time
                t.update_row(rid, (3, "a", 2.0))
        finally:
            name_index.would_violate = original
        # row and BOTH indexes must show the pre-update image
        assert t.get_row(rid) == (2, "b", 2.0)
        assert index_rids(t, ("id",), (2,)) == {rid}
        assert index_rids(t, ("id",), (3,)) == set()
        assert index_rids(t, ("name",), ("b",)) == {rid}
        assert index_rids(t, ("name",), ("a",)) == {0}

    def test_hook_does_not_fire_for_failed_mutation(self):
        t = self.two_unique_indexes()
        events = []
        t.on_mutate = lambda *args: events.append(args[0])
        t.insert((1, "a", 1.0))
        with pytest.raises(IntegrityError):
            t.insert((1, "z", 2.0))
        assert events == ["insert"]

    def test_index_creation_fires_hook(self):
        t = make_table()
        events = []
        t.on_mutate = lambda *args: events.append(args)
        t.create_index(("score",), unique=False)
        assert events == [("index", ("score",), False)]
        assert t.has_index(("score",), unique=False)
        assert not t.has_index(("score",), unique=True)
