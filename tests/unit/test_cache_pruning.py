"""Unit tests for the validity cache and view pruning (§5.6 optimizations)."""

from repro.db import Database
from repro.sql import parse_query
from repro.nontruman.cache import ValidityCache, query_signature
from repro.nontruman.checker import ValidityChecker
from repro.nontruman.decision import Validity
from repro.nontruman.pruning import is_relevant, prune_views, relation_names
from repro.authviews.views import AuthorizationView
from repro.authviews.session import SessionContext
from repro.catalog.catalog import ViewDef


class TestQuerySignature:
    def test_literals_abstracted(self):
        a, lits_a = query_signature(parse_query("select x from T where y = 'p'"))
        b, lits_b = query_signature(parse_query("select x from T where y = 'q'"))
        assert a == b
        assert lits_a == ("p",) and lits_b == ("q",)

    def test_different_structure_different_signature(self):
        a, _ = query_signature(parse_query("select x from T where y = 1"))
        b, _ = query_signature(parse_query("select x from T where z = 1"))
        assert a != b


class TestValidityCache:
    def test_exact_hit(self):
        cache = ValidityCache()
        q = parse_query("select x from T where y = '11'")
        cache.store("11", q, "11", Validity.UNCONDITIONAL, "ok")
        assert cache.lookup("11", q, "11") == (Validity.UNCONDITIONAL, "ok")
        assert cache.hits == 1

    def test_miss_for_other_user(self):
        cache = ValidityCache()
        q = parse_query("select x from T where y = '11'")
        cache.store("11", q, "11", Validity.UNCONDITIONAL, "ok")
        assert cache.lookup("12", q, "12") is None

    def test_prepared_statement_reuse(self):
        """Same skeleton, the user-id literal position re-bound (§5.6)."""
        cache = ValidityCache()
        q1 = parse_query("select x from T where owner = '11' and k = 5")
        cache.store("u", q1, "11", Validity.UNCONDITIONAL, "ok")
        # same user value moved: accepted
        q2 = parse_query("select x from T where owner = '11' and k = 5")
        assert cache.lookup("u", q2, "11") is not None
        # different constant in a non-user position: reject
        q3 = parse_query("select x from T where owner = '11' and k = 6")
        assert cache.lookup("u", q3, "11") is None
        # user position follows the session's current user value
        q4 = parse_query("select x from T where owner = '12' and k = 5")
        assert cache.lookup("u", q4, "12") is not None

    def test_conditional_invalidated_by_data_change(self):
        cache = ValidityCache()
        q = parse_query("select x from T where y = 1")
        cache.store("u", q, "u", Validity.CONDITIONAL, "probe ok")
        assert cache.lookup("u", q, "u") is not None
        cache.invalidate_data()
        assert cache.lookup("u", q, "u") is None

    def test_unconditional_survives_data_change(self):
        cache = ValidityCache()
        q = parse_query("select x from T where y = 1")
        cache.store("u", q, "u", Validity.UNCONDITIONAL, "ok")
        cache.invalidate_data()
        assert cache.lookup("u", q, "u") is not None

    def test_invalid_decisions_cacheable(self):
        cache = ValidityCache()
        q = parse_query("select x from T")
        cache.store("u", q, "u", Validity.INVALID, "no rewrite")
        assert cache.lookup("u", q, "u") == (Validity.INVALID, "no rewrite")

    def test_invalid_decisions_invalidated_by_data_change(self):
        """A rejection can become a (conditional) acceptance after DML
        — e.g. Example 4.2's enrollment threshold being crossed — so
        INVALID entries must not outlive the data version either."""
        cache = ValidityCache()
        q = parse_query("select x from T")
        cache.store("u", q, "u", Validity.INVALID, "no rewrite")
        cache.invalidate_data()
        assert cache.lookup("u", q, "u") is None


class TestLruBound:
    def test_eviction_order_is_least_recently_used(self):
        cache = ValidityCache(max_entries=2)
        qa = parse_query("select a from T")
        qb = parse_query("select b from T")
        qc = parse_query("select c from T")
        cache.store("u", qa, "u", Validity.UNCONDITIONAL, "a")
        cache.store("u", qb, "u", Validity.UNCONDITIONAL, "b")
        assert cache.lookup("u", qa, "u") is not None  # refresh a
        cache.store("u", qc, "u", Validity.UNCONDITIONAL, "c")  # evicts b
        assert cache.size == 2
        assert cache.evictions == 1
        assert cache.lookup("u", qb, "u") is None
        assert cache.lookup("u", qa, "u") is not None
        assert cache.lookup("u", qc, "u") is not None

    def test_unbounded_by_default(self):
        cache = ValidityCache()
        for i in range(50):
            cache.store(
                "u", parse_query(f"select c{i} from T"), "u",
                Validity.UNCONDITIONAL, "ok",
            )
        assert cache.size == 50
        assert cache.evictions == 0

    def test_explicit_data_version_override(self):
        """The service layer validates entries against the database's
        own version counter, passed explicitly."""
        cache = ValidityCache()
        q = parse_query("select x from T where y = 1")
        cache.store_signed(
            "u", *query_signature(q), "u", Validity.CONDITIONAL, "probe",
            data_version=7,
        )
        skeleton, literals = query_signature(q)
        assert (
            cache.lookup_signed("u", skeleton, literals, "u", data_version=7)
            is not None
        )
        assert (
            cache.lookup_signed("u", skeleton, literals, "u", data_version=8)
            is None
        )


class TestCacheInvalidationOnDml:
    """Satellite of the E13 gateway work: cached *conditional* decisions
    must be re-derived after INSERT/DELETE moves the data version."""

    @staticmethod
    def _db():
        db = Database()
        db.execute_script(
            "create table Grades(student_id varchar(10), course_id varchar(10),"
            " grade float, primary key (student_id, course_id));"
            "create table Registered(student_id varchar(10),"
            " course_id varchar(10), primary key (student_id, course_id));"
        )
        db.execute("insert into Registered values ('u1', 'CS1')")
        db.execute("insert into Grades values ('u1', 'CS1', 3.5)")
        db.execute("insert into Grades values ('u2', 'CS1', 2.0)")
        db.execute_script(
            "create authorization view CoGrades as"
            " select Grades.student_id, Grades.course_id, Grades.grade"
            " from Grades, Registered"
            " where Registered.student_id = $user_id"
            "   and Grades.course_id = Registered.course_id;"
            "create authorization view MyRegs as"
            " select * from Registered where student_id = $user_id;"
        )
        db.grant_public("CoGrades")
        db.grant_public("MyRegs")
        return db

    def test_insert_then_delete_recheck_conditional_decision(self):
        db = self._db()
        session = db.connect(user_id="u1").session
        checker = ValidityChecker(db, use_cache=True)
        query = parse_query("select * from Grades where course_id = 'CS1'")

        first = checker.check(query, session)
        assert first.conditional and not first.from_cache
        cached = checker.check(query, session)
        assert cached.from_cache

        # DELETE moves the data version: the registration probe that
        # justified the decision no longer holds
        db.execute("delete from Registered where student_id = 'u1'")
        after_delete = checker.check(query, session)
        assert not after_delete.from_cache
        assert not after_delete.valid

        # INSERT moves it again: validity is re-derived, not replayed
        db.execute("insert into Registered values ('u1', 'CS1')")
        after_insert = checker.check(query, session)
        assert not after_insert.from_cache
        assert after_insert.conditional


def iv(name, sql):
    return AuthorizationView.from_def(
        ViewDef(name, parse_query(sql), authorization=True)
    ).instantiate(SessionContext(user_id="u"))


class TestPruning:
    def test_relation_names(self):
        names = relation_names(
            parse_query(
                "select a from T, (select b from U) s "
                "join V on s.b = V.x"
            )
        )
        assert names == {"t", "u", "v"}

    def test_is_relevant(self):
        assert is_relevant(parse_query("select * from Grades"), {"grades"})
        assert not is_relevant(parse_query("select * from Accounts"), {"grades"})

    def test_prune_keeps_direct_overlap(self):
        views = [iv("A", "select * from T"), iv("B", "select * from Other")]
        kept = prune_views(views, parse_query("select x from T"))
        assert [v.name for v in kept] == ["A"]

    def test_prune_fixpoint_keeps_probe_support(self):
        """A view over a relevant view's *other* relation survives
        (needed by C3 probe validation, Example 4.4)."""
        views = [
            iv("CoGrades", "select Grades.grade from Grades, Registered "
                           "where Registered.student_id = 'u' "
                           "and Grades.course_id = Registered.course_id"),
            iv("MyRegs", "select * from Registered where student_id = 'u'"),
            iv("Bank", "select * from Accounts"),
        ]
        kept = prune_views(views, parse_query("select * from Grades"))
        assert {v.name for v in kept} == {"CoGrades", "MyRegs"}

    def test_prune_by_view_name_reference(self):
        views = [iv("VT", "select * from T")]
        kept = prune_views(views, parse_query("select * from VT"))
        assert [v.name for v in kept] == ["VT"]
