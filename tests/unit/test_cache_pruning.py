"""Unit tests for the validity cache and view pruning (§5.6 optimizations)."""

from repro.sql import parse_query
from repro.nontruman.cache import ValidityCache, query_signature
from repro.nontruman.decision import Validity
from repro.nontruman.pruning import is_relevant, prune_views, relation_names
from repro.authviews.views import AuthorizationView
from repro.authviews.session import SessionContext
from repro.catalog.catalog import ViewDef


class TestQuerySignature:
    def test_literals_abstracted(self):
        a, lits_a = query_signature(parse_query("select x from T where y = 'p'"))
        b, lits_b = query_signature(parse_query("select x from T where y = 'q'"))
        assert a == b
        assert lits_a == ("p",) and lits_b == ("q",)

    def test_different_structure_different_signature(self):
        a, _ = query_signature(parse_query("select x from T where y = 1"))
        b, _ = query_signature(parse_query("select x from T where z = 1"))
        assert a != b


class TestValidityCache:
    def test_exact_hit(self):
        cache = ValidityCache()
        q = parse_query("select x from T where y = '11'")
        cache.store("11", q, "11", Validity.UNCONDITIONAL, "ok")
        assert cache.lookup("11", q, "11") == (Validity.UNCONDITIONAL, "ok")
        assert cache.hits == 1

    def test_miss_for_other_user(self):
        cache = ValidityCache()
        q = parse_query("select x from T where y = '11'")
        cache.store("11", q, "11", Validity.UNCONDITIONAL, "ok")
        assert cache.lookup("12", q, "12") is None

    def test_prepared_statement_reuse(self):
        """Same skeleton, the user-id literal position re-bound (§5.6)."""
        cache = ValidityCache()
        q1 = parse_query("select x from T where owner = '11' and k = 5")
        cache.store("u", q1, "11", Validity.UNCONDITIONAL, "ok")
        # same user value moved: accepted
        q2 = parse_query("select x from T where owner = '11' and k = 5")
        assert cache.lookup("u", q2, "11") is not None
        # different constant in a non-user position: reject
        q3 = parse_query("select x from T where owner = '11' and k = 6")
        assert cache.lookup("u", q3, "11") is None
        # user position follows the session's current user value
        q4 = parse_query("select x from T where owner = '12' and k = 5")
        assert cache.lookup("u", q4, "12") is not None

    def test_conditional_invalidated_by_data_change(self):
        cache = ValidityCache()
        q = parse_query("select x from T where y = 1")
        cache.store("u", q, "u", Validity.CONDITIONAL, "probe ok")
        assert cache.lookup("u", q, "u") is not None
        cache.invalidate_data()
        assert cache.lookup("u", q, "u") is None

    def test_unconditional_survives_data_change(self):
        cache = ValidityCache()
        q = parse_query("select x from T where y = 1")
        cache.store("u", q, "u", Validity.UNCONDITIONAL, "ok")
        cache.invalidate_data()
        assert cache.lookup("u", q, "u") is not None

    def test_invalid_decisions_cacheable(self):
        cache = ValidityCache()
        q = parse_query("select x from T")
        cache.store("u", q, "u", Validity.INVALID, "no rewrite")
        assert cache.lookup("u", q, "u") == (Validity.INVALID, "no rewrite")

    def test_invalid_decisions_invalidated_by_data_change(self):
        """A rejection can become a (conditional) acceptance after DML
        — e.g. Example 4.2's enrollment threshold being crossed — so
        INVALID entries must not outlive the data version either."""
        cache = ValidityCache()
        q = parse_query("select x from T")
        cache.store("u", q, "u", Validity.INVALID, "no rewrite")
        cache.invalidate_data()
        assert cache.lookup("u", q, "u") is None


def iv(name, sql):
    return AuthorizationView.from_def(
        ViewDef(name, parse_query(sql), authorization=True)
    ).instantiate(SessionContext(user_id="u"))


class TestPruning:
    def test_relation_names(self):
        names = relation_names(
            parse_query(
                "select a from T, (select b from U) s "
                "join V on s.b = V.x"
            )
        )
        assert names == {"t", "u", "v"}

    def test_is_relevant(self):
        assert is_relevant(parse_query("select * from Grades"), {"grades"})
        assert not is_relevant(parse_query("select * from Accounts"), {"grades"})

    def test_prune_keeps_direct_overlap(self):
        views = [iv("A", "select * from T"), iv("B", "select * from Other")]
        kept = prune_views(views, parse_query("select x from T"))
        assert [v.name for v in kept] == ["A"]

    def test_prune_fixpoint_keeps_probe_support(self):
        """A view over a relevant view's *other* relation survives
        (needed by C3 probe validation, Example 4.4)."""
        views = [
            iv("CoGrades", "select Grades.grade from Grades, Registered "
                           "where Registered.student_id = 'u' "
                           "and Grades.course_id = Registered.course_id"),
            iv("MyRegs", "select * from Registered where student_id = 'u'"),
            iv("Bank", "select * from Accounts"),
        ]
        kept = prune_views(views, parse_query("select * from Grades"))
        assert {v.name for v in kept} == {"CoGrades", "MyRegs"}

    def test_prune_by_view_name_reference(self):
        views = [iv("VT", "select * from T")]
        kept = prune_views(views, parse_query("select * from VT"))
        assert [v.name for v in kept] == ["VT"]
