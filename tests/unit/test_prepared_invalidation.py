"""Exact invalidation of the prepared-template cache.

The invariants under test (see ``repro/prepared/cache.py``):

* invalidation is *exact*: a grant to user A evicts A's templates only;
  DDL on relation X evicts only templates that (transitively) reference
  X;
* revocation has no eager hook (``db.grants.revoke`` is a registry
  call), so the lookup-time version validation is the load-bearing
  mechanism — a revoked user's cached acceptance must never be served;
* redefining a granted authorization view (drop + create) flips the
  view's relation version and therefore the decisions of every template
  whose user holds that grant;
* templates are keyed by user: overlapping signatures for different
  users never share an artifact.
"""

import pytest

from repro.db import Database
from repro.errors import QueryRejectedError


def grades_db():
    db = Database()
    db.execute("create table Grades(student_id varchar(8), grade float)")
    db.execute("create table Other(x int)")
    db.execute("insert into Grades values ('11', 3.5)")
    db.execute("insert into Grades values ('12', 2.0)")
    db.execute("insert into Other values (1)")
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.execute(
        "create authorization view OtherView as select * from Other"
    )
    return db


def run(db, sql, user, mode="non-truman"):
    session = db.connect(user_id=user, mode=mode).session
    return db.execute_query(sql, session=session, mode=mode, prepared=True)


OK_SQL = "select grade from Grades where student_id = '11'"
OTHER_SQL = "select x from Other where x > 0"


class TestExactInvalidation:
    def test_ddl_evicts_only_referencing_templates(self):
        db = grades_db()
        db.grant("MyGrades", "11")
        db.grant("OtherView", "11")
        run(db, OK_SQL, "11")
        run(db, OTHER_SQL, "11")
        run(db, OTHER_SQL, "11")  # hot
        base = db.prepared.stats()
        db.execute("drop table Other")
        # eager hook evicted every template touching Other — for user
        # 11 that is *both* templates: granted auth views (and their
        # bodies) are decision dependencies of every template
        after = db.prepared.stats()
        assert after["prepared_invalidations"] > base["prepared_invalidations"]
        assert after["prepared_templates"] < base["prepared_templates"]

    def test_ddl_on_unrelated_relation_preserves_templates(self):
        db = grades_db()
        # open-mode templates depend only on the relations they scan
        run(db, OK_SQL, None, mode="open")
        run(db, OTHER_SQL, None, mode="open")
        assert db.prepared.stats()["prepared_templates"] == 2
        db.execute("create table Unrelated(y int)")
        db.execute("drop table Unrelated")
        base = db.prepared.stats()
        run(db, OK_SQL, None, mode="open")
        after = db.prepared.stats()
        assert after["prepared_hits"] == base["prepared_hits"] + 1
        assert after["prepared_builds"] == base["prepared_builds"]

    def test_grant_evicts_only_that_user(self):
        db = grades_db()
        db.grant("MyGrades", "11")
        db.grant("MyGrades", "12")
        run(db, OK_SQL, "11")
        with pytest.raises(QueryRejectedError):
            run(db, OK_SQL, "12")  # 12 may not see 11's grades
        assert db.prepared.stats()["prepared_templates"] == 2
        db.grant("OtherView", "12")  # policy change for 12 only
        run(db, OK_SQL, "11")  # 11's template survives: pure hit
        stats = db.prepared.stats()
        assert stats["prepared_templates"] == 1  # 12's was evicted
        base_builds = stats["prepared_builds"]
        with pytest.raises(QueryRejectedError):
            run(db, OK_SQL, "12")  # rebuilt, still rejected
        assert db.prepared.stats()["prepared_builds"] == base_builds + 1

    def test_public_grant_evicts_everyone(self):
        db = grades_db()
        db.grant("MyGrades", "11")
        db.grant("MyGrades", "12")
        run(db, OK_SQL, "11")
        with pytest.raises(QueryRejectedError):
            run(db, OK_SQL, "12")
        db.grant_public("OtherView")  # PUBLIC changes every user's views
        assert db.prepared.stats()["prepared_templates"] == 0

    def test_revoke_detected_at_lookup_without_eager_hook(self):
        db = grades_db()
        db.grant("MyGrades", "11")
        assert run(db, OK_SQL, "11").rows == [(3.5,)]
        assert run(db, OK_SQL, "11").rows == [(3.5,)]  # cached accept
        # revoke goes straight to the registry — no Database facade, no
        # eager invalidation; only the version stamps protect us
        db.grants.revoke("MyGrades", "11")
        with pytest.raises(QueryRejectedError):
            run(db, OK_SQL, "11")
        # the stale template was evicted, not served
        assert db.prepared.stats()["prepared_invalidations"] >= 1
        # and re-granting restores acceptance (fresh build again)
        db.grant("MyGrades", "11")
        assert run(db, OK_SQL, "11").rows == [(3.5,)]

    def test_auth_view_redefinition_flips_cached_decision(self):
        db = grades_db()
        db.grant("MyGrades", "11")
        assert run(db, OK_SQL, "11").rows == [(3.5,)]
        assert run(db, OK_SQL, "11").rows == [(3.5,)]
        # redefine the granted view to cover nothing relevant
        db.execute("drop view MyGrades")
        db.execute(
            "create authorization view MyGrades as "
            "select * from Grades where student_id = 'nobody'"
        )
        with pytest.raises(QueryRejectedError):
            run(db, OK_SQL, "11")
        # redefine it back; acceptance returns
        db.execute("drop view MyGrades")
        db.execute(
            "create authorization view MyGrades as "
            "select * from Grades where student_id = $user_id"
        )
        assert run(db, OK_SQL, "11").rows == [(3.5,)]


class TestUserIsolation:
    def test_template_never_crosses_users(self):
        """Same SQL text, same signature, different users: the Truman
        substitution bakes the *session* into the plan, so serving user
        A's template to user B would leak A's rows.  The cache key
        carries the user; prove the answers stay per-user."""
        db = grades_db()
        db.set_truman_view("Grades", "MyGrades")
        sql = "select grade from Grades where grade > 0.5"
        first_11 = run(db, sql, "11", mode="truman").rows
        first_12 = run(db, sql, "12", mode="truman").rows
        assert first_11 == [(3.5,)]
        assert first_12 == [(2.0,)]
        # hot hits — each user must keep getting their own rows
        assert run(db, sql, "11", mode="truman").rows == [(3.5,)]
        assert run(db, sql, "12", mode="truman").rows == [(2.0,)]
        assert db.prepared.stats()["prepared_templates"] == 2

    def test_non_truman_decision_is_per_user(self):
        db = grades_db()
        db.grant("MyGrades", "11")
        assert run(db, OK_SQL, "11").rows == [(3.5,)]
        # same text, same signature — user 12 must be decided on their
        # own grants, not served 11's cached acceptance
        with pytest.raises(QueryRejectedError):
            run(db, OK_SQL, "12")


class TestNegativeCacheInvalidation:
    def test_unpreparable_retried_after_policy_change(self):
        """The negative cache must not outlive the state it was derived
        from: templates that failed to build are retried after any
        grant/DDL change (stale stamp drops the negative entry)."""
        db = grades_db()
        session = db.connect(user_id="11", mode="open").session
        from repro.prepared import PreparedFallback
        from repro.prepared.pipeline import resolve_signature

        skeleton, literals, _ = resolve_signature(
            db, "select grade from Missing where grade > 1.0"
        )
        key = (skeleton, "11", "open", ())
        db.prepared.note_unpreparable(key, "11")
        with pytest.raises(PreparedFallback):
            db.prepared.check_unpreparable(key, "11")
        db.execute("create table Missing(grade float)")
        db.prepared.check_unpreparable(key, "11")  # no longer negative
