"""Unit tests for block conversion (plans → SPJ/Agg blocks)."""

import pytest

from repro.sql import parse_query
from repro.algebra.translate import Translator
from repro.catalog.catalog import Catalog
from repro.sql.parser import parse_statement
from repro.nontruman.blocks import AggBlock, BlockBuilder, SPJBlock


@pytest.fixture
def catalog():
    cat = Catalog()
    for ddl in (
        "create table T(a int primary key, b varchar(10), c float)",
        "create table U(a int primary key, d varchar(10))",
    ):
        cat.create_table_from_ast(parse_statement(ddl))
    return cat


def block_of(catalog, sql):
    plan = Translator(catalog).translate(parse_query(sql))
    return BlockBuilder().to_query_form(plan)


class TestSPJFlattening:
    def test_simple_select(self, catalog):
        block = block_of(catalog, "select a from T where b = 'x'")
        assert isinstance(block, SPJBlock)
        assert len(block.tables) == 1
        assert len(block.conjuncts) == 1
        assert [n for _, n in block.outputs] == ["a"]

    def test_join_flattens(self, catalog):
        block = block_of(
            catalog, "select T.a from T, U where T.a = U.a and U.d = 'q'"
        )
        assert {t.relation for t in block.tables} == {"T", "U"}
        assert len(block.conjuncts) == 2

    def test_explicit_join_condition_merged(self, catalog):
        block = block_of(catalog, "select T.a from T join U on T.a = U.a")
        assert len(block.conjuncts) == 1

    def test_distinct_flag(self, catalog):
        block = block_of(catalog, "select distinct a from T")
        assert block.distinct

    def test_self_join_unique_bindings(self, catalog):
        block = block_of(
            catalog, "select t1.a from T t1, T t2 where t1.a = t2.a"
        )
        bindings = [t.binding for t in block.tables]
        assert len(set(bindings)) == 2

    def test_derived_table_flattened(self, catalog):
        block = block_of(
            catalog,
            "select s.a from (select a, b from T where c > 0) as s "
            "where s.b = 'x'",
        )
        assert isinstance(block, SPJBlock)
        assert len(block.tables) == 1
        assert block.tables[0].relation == "T"
        # both the inner (c > 0) and outer (b = 'x') predicates present
        assert len(block.conjuncts) == 2

    def test_predicate_normalized(self, catalog):
        block = block_of(
            catalog, "select a from T where c between 1 and 2 and b = 'x'"
        )
        assert len(block.conjuncts) == 3  # between expands into two


class TestAggBlocks:
    def test_scalar_aggregate(self, catalog):
        block = block_of(catalog, "select avg(c) from T where b = 'x'")
        assert isinstance(block, AggBlock)
        assert block.group_exprs == ()
        assert len(block.aggregates) == 1
        assert len(block.inner.conjuncts) == 1

    def test_group_by_with_having(self, catalog):
        block = block_of(
            catalog,
            "select b, count(*) as n from T group by b having count(*) > 1",
        )
        assert isinstance(block, AggBlock)
        assert len(block.group_exprs) == 1
        assert len(block.having) == 1

    def test_aggregate_over_join(self, catalog):
        block = block_of(
            catalog,
            "select U.d, sum(T.c) from T, U where T.a = U.a group by U.d",
        )
        assert isinstance(block, AggBlock)
        assert len(block.inner.tables) == 2


class TestOpaqueInstances:
    def test_aggregate_subquery_is_opaque(self, catalog):
        block = block_of(
            catalog,
            "select s.n from (select count(*) as n from T) as s, U "
            "where s.n = U.a",
        )
        assert isinstance(block, SPJBlock)
        kinds = sorted(t.kind for t in block.tables)
        assert kinds == ["opaque", "table"]
        opaque = next(t for t in block.tables if t.kind == "opaque")
        assert opaque.subplan is not None
        assert opaque.columns == ("n",)

    def test_left_join_is_opaque(self, catalog):
        plan = Translator(catalog).translate(
            parse_query("select T.a from T left join U on T.a = U.a")
        )
        block = BlockBuilder().to_spj(plan)
        assert block is not None
        assert any(t.kind == "opaque" for t in block.tables)


class TestNonBlockShapes:
    def test_set_operation_not_a_block(self, catalog):
        plan = Translator(catalog).translate(
            parse_query("select a from T union select a from U")
        )
        builder = BlockBuilder()
        assert builder.to_agg(plan) is None
