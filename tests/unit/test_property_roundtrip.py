"""Randomized properties: render/parse round-trips and engine scalar agreement.

A seeded stdlib-``random`` generator produces *type-correct* expression
ASTs over a small row schema (numeric / string / boolean sorts, depth
bounded).  Type-directed generation keeps every expression error-free —
comparisons stay same-sorted, arithmetic avoids ``/`` and ``%``, NOT
applies only to booleans — which matters because the row engine
short-circuits AND/OR/CASE while the vectorized engine evaluates
eagerly: on error-free expressions the two are provably value-equal.

Three properties, all deterministic (fixed seeds):

1. ``parse(render(ast)) == ast`` — the renderer emits exactly the text
   the parser maps back to the same tree (unary minus on literals is
   excluded: the parser constant-folds ``- 3`` to ``Literal(-3)``).
2. Both engines agree scalar-for-scalar on NULL-laden random rows.
3. The Kleene AND/OR/NOT truth tables, pinned exhaustively.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.ops import OutCol
from repro.engine.evaluator import Evaluator, RowResolver
from repro.engine.vectorized import ColumnBatch, compile_scalar
from repro.sql import ast
from repro.sql.parser import Parser
from repro.sql.render import render

# -- typed expression generator ----------------------------------------

#: row schema the generator draws column references from
NUM_COLUMNS = ("a", "b")
STR_COLUMNS = ("s", "t")

NUM_VALUES = [None, -2, 0, 1, 7, -1.5, 2.5, 100.0]
STR_VALUES = [None, "", "a", "ab", "b%", "x_y", "it's"]


class ExprGen:
    """Depth-bounded, sort-directed random expression generator."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def expr(self, sort: str, depth: int = 3) -> ast.Expr:
        if sort == "num":
            return self.num(depth)
        if sort == "str":
            return self.text(depth)
        return self.boolean(depth)

    # numeric sort ------------------------------------------------------
    def num(self, depth: int) -> ast.Expr:
        if depth <= 0:
            return self._num_leaf()
        pick = self.rng.randrange(8)
        if pick < 3:
            return self._num_leaf()
        if pick < 5:
            op = self.rng.choice(["+", "-", "*"])
            return ast.BinaryOp(op, self.num(depth - 1), self.num(depth - 1))
        if pick == 5:
            # unary minus on a column only: "- <literal>" would be
            # constant-folded by the parser and break the round-trip
            return ast.UnaryOp("-", ast.ColumnRef(None, self.rng.choice(NUM_COLUMNS)))
        if pick == 6:
            branches = tuple(
                (self.boolean(depth - 1), self.num(depth - 1))
                for _ in range(self.rng.randint(1, 2))
            )
            default = self.num(depth - 1) if self.rng.random() < 0.7 else None
            return ast.CaseExpr(branches, default)
        fn = self.rng.choice(["coalesce", "abs"])
        if fn == "coalesce":
            args = tuple(self.num(depth - 1) for _ in range(self.rng.randint(1, 3)))
            return ast.FuncCall("coalesce", args)
        return ast.FuncCall("abs", (self.num(depth - 1),))

    def _num_leaf(self) -> ast.Expr:
        if self.rng.random() < 0.5:
            return ast.ColumnRef(None, self.rng.choice(NUM_COLUMNS))
        return ast.Literal(self.rng.choice(NUM_VALUES))

    # string sort -------------------------------------------------------
    def text(self, depth: int) -> ast.Expr:
        if depth <= 0:
            return self._str_leaf()
        pick = self.rng.randrange(6)
        if pick < 3:
            return self._str_leaf()
        if pick < 5:
            name = self.rng.choice(["lower", "upper"])
            return ast.FuncCall(name, (self.text(depth - 1),))
        return ast.FuncCall(
            "coalesce",
            tuple(self.text(depth - 1) for _ in range(self.rng.randint(1, 2))),
        )

    def _str_leaf(self) -> ast.Expr:
        if self.rng.random() < 0.5:
            return ast.ColumnRef(None, self.rng.choice(STR_COLUMNS))
        return ast.Literal(self.rng.choice(STR_VALUES))

    # boolean sort ------------------------------------------------------
    def boolean(self, depth: int) -> ast.Expr:
        if depth <= 0:
            return self._bool_leaf()
        pick = self.rng.randrange(10)
        if pick < 3:
            return self._bool_leaf()
        if pick < 5:
            op = self.rng.choice(["and", "or"])
            return ast.BinaryOp(op, self.boolean(depth - 1), self.boolean(depth - 1))
        if pick == 5:
            return ast.UnaryOp("not", self.boolean(depth - 1))
        if pick == 6:
            sort = self.rng.choice(["num", "str"])
            return ast.IsNull(self.expr(sort, depth - 1), self.rng.random() < 0.5)
        if pick == 7:
            return ast.Between(
                self.num(depth - 1),
                self.num(depth - 1),
                self.num(depth - 1),
                negated=self.rng.random() < 0.3,
            )
        if pick == 8:
            sort = self.rng.choice(["num", "str"])
            items = tuple(
                self.expr(sort, 0) for _ in range(self.rng.randint(1, 3))
            )
            return ast.InList(
                self.expr(sort, depth - 1), items, negated=self.rng.random() < 0.3
            )
        return self._bool_leaf()

    def _bool_leaf(self) -> ast.Expr:
        op = self.rng.choice(["=", "<>", "<", "<=", ">", ">="])
        # same-sorted operands: mixed-type comparisons raise in both
        # engines, but the row engine may short-circuit past them
        if self.rng.random() < 0.6:
            return ast.BinaryOp(op, self.num(0), self.num(0))
        if self.rng.random() < 0.5:
            return ast.BinaryOp(op, self.text(0), self.text(0))
        pattern = self.rng.choice(["a%", "%b", "_", "%", "x_y", "it''s"[:3]])
        return ast.BinaryOp("like", self.text(0), ast.Literal(pattern))


# -- property 1: parse(render(ast)) == ast -----------------------------


@pytest.mark.parametrize("seed", range(200))
def test_render_parse_roundtrip(seed):
    gen = ExprGen(seed)
    sort = ("num", "str", "bool")[seed % 3]
    expr = gen.expr(sort, depth=4)
    text = render(expr)
    back = Parser(text).parse_expr()
    assert back == expr, f"round-trip diverged for {text!r}:\n{expr!r}\nvs\n{back!r}"


# -- property 2: engines agree on NULL-laden rows ----------------------


def _random_rows(rng: random.Random, count: int) -> list[tuple]:
    return [
        (
            rng.choice(NUM_VALUES),
            rng.choice(NUM_VALUES),
            rng.choice(STR_VALUES),
            rng.choice(STR_VALUES),
        )
        for _ in range(count)
    ]


RESOLVER = RowResolver(
    tuple(OutCol(None, name) for name in NUM_COLUMNS + STR_COLUMNS)
)


def _same_scalar(x, y) -> bool:
    # identical value AND type: True != 1 here, 2 != 2.0 here — the
    # engines must not even disagree on numeric widening
    return x is y or (type(x) is type(y) and x == y)


@pytest.mark.parametrize("seed", range(150))
def test_engines_agree_on_random_rows(seed):
    gen = ExprGen(seed * 7 + 1)
    sort = ("bool", "bool", "num", "str")[seed % 4]
    expr = gen.expr(sort, depth=4)
    rng = random.Random(seed * 13 + 5)
    rows = _random_rows(rng, 37)

    evaluator = Evaluator(RESOLVER)
    expected = [evaluator.evaluate(expr, row) for row in rows]

    compiled = compile_scalar(expr, RESOLVER)
    batch = ColumnBatch.from_rows(rows, width=4)
    actual = compiled(batch)

    assert len(actual) == len(expected)
    for i, (row_value, vec_value) in enumerate(zip(expected, actual)):
        assert _same_scalar(row_value, vec_value), (
            f"row {rows[i]} of expr {render(expr)}: "
            f"row engine {row_value!r} vs vectorized {vec_value!r}"
        )


# -- property 3: Kleene truth tables, pinned exhaustively --------------

TRI = (True, False, None)

#: (left, right) -> expected, for SQL three-valued AND
AND_TABLE = {
    (True, True): True,
    (True, False): False,
    (True, None): None,
    (False, True): False,
    (False, False): False,
    (False, None): False,
    (None, True): None,
    (None, False): False,
    (None, None): None,
}

OR_TABLE = {
    (True, True): True,
    (True, False): True,
    (True, None): True,
    (False, True): True,
    (False, False): False,
    (False, None): None,
    (None, True): True,
    (None, False): None,
    (None, None): None,
}

NOT_TABLE = {True: False, False: True, None: None}

_BOOL_RESOLVER = RowResolver((OutCol(None, "l"), OutCol(None, "r")))
_L = ast.ColumnRef(None, "l")
_R = ast.ColumnRef(None, "r")


def _both_engines(expr: ast.Expr, rows: list[tuple]) -> tuple[list, list]:
    evaluator = Evaluator(_BOOL_RESOLVER)
    row_out = [evaluator.evaluate(expr, row) for row in rows]
    vec_out = compile_scalar(expr, _BOOL_RESOLVER)(
        ColumnBatch.from_rows(rows, width=2)
    )
    return row_out, vec_out


def test_kleene_and_exhaustive():
    rows = [(l, r) for l in TRI for r in TRI]
    row_out, vec_out = _both_engines(ast.BinaryOp("and", _L, _R), rows)
    for (l, r), got_row, got_vec in zip(rows, row_out, vec_out):
        assert got_row is AND_TABLE[(l, r)], f"row engine: {l} AND {r}"
        assert got_vec is AND_TABLE[(l, r)], f"vectorized: {l} AND {r}"


def test_kleene_or_exhaustive():
    rows = [(l, r) for l in TRI for r in TRI]
    row_out, vec_out = _both_engines(ast.BinaryOp("or", _L, _R), rows)
    for (l, r), got_row, got_vec in zip(rows, row_out, vec_out):
        assert got_row is OR_TABLE[(l, r)], f"row engine: {l} OR {r}"
        assert got_vec is OR_TABLE[(l, r)], f"vectorized: {l} OR {r}"


def test_kleene_not_exhaustive():
    rows = [(value, value) for value in TRI]
    row_out, vec_out = _both_engines(ast.UnaryOp("not", _L), rows)
    for (value, _), got_row, got_vec in zip(rows, row_out, vec_out):
        assert got_row is NOT_TABLE[value], f"row engine: NOT {value}"
        assert got_vec is NOT_TABLE[value], f"vectorized: NOT {value}"


def test_kleene_nesting_agrees_with_tables():
    """(l AND r) OR NOT l — composed truth table, both engines."""
    expr = ast.BinaryOp(
        "or",
        ast.BinaryOp("and", _L, _R),
        ast.UnaryOp("not", _L),
    )
    rows = [(l, r) for l in TRI for r in TRI]
    row_out, vec_out = _both_engines(expr, rows)
    for (l, r), got_row, got_vec in zip(rows, row_out, vec_out):
        expected = OR_TABLE[(AND_TABLE[(l, r)], NOT_TABLE[l])]
        assert got_row is expected
        assert got_vec is expected


# -- prepared-statement rebinding properties ---------------------------
#
# Property 4: binding random literal tuples (NULLs and type-edge values
# included) into one fixed prepared template agrees with fresh
# execution, observable-for-observable.  Property 5: a literal that
# changes the Non-Truman validity outcome must get its own decision —
# never a hit on the cached decision of a different binding.

#: literal pools: NULL, zero/negative/huge numerics, empty / quoted /
#: wildcard-looking strings
REBIND_NUM = [None, 0, 1, -1, 2.5, -1.5, 1e16, 0.0, 3]
REBIND_STR = [None, "", "a", "b", "it's", "x_y", "A%", "nope"]


def _prepared_outcome(db, query, session, prepared):
    try:
        result = db.execute_query(
            query, session=session, mode="open", prepared=prepared
        )
    except Exception as exc:  # identical failures count as agreement
        return ("raised", type(exc).__name__, str(exc))
    return ("ok", result.columns, list(result.rows))


def test_random_rebinding_agrees_with_fresh():
    from repro.db import Database
    from repro.prepared import bind_skeleton, resolve_signature

    db = Database()
    db.execute("create table T(k int, v float, tag varchar(8))")
    for row in [
        "(1, 1.5, 'a')",
        "(2, null, 'b')",
        "(3, 2.5, null)",
        "(null, null, 'c')",
        "(0, 0.0, '')",
    ]:
        db.execute(f"insert into T values {row}")
    session = db.connect(mode="open").session

    sql = "select k, v, tag from T where (v > 0.5 and tag = 'a') or k = 1"
    skeleton, literals, _ = resolve_signature(db, sql)
    assert len(literals) == 3

    rng = random.Random(424242)
    for _ in range(80):
        values = (
            rng.choice(REBIND_NUM),
            rng.choice(REBIND_STR),
            rng.choice(REBIND_NUM),
        )
        bound = bind_skeleton(skeleton, values)
        fresh = _prepared_outcome(db, bound, session, prepared=False)
        cold = _prepared_outcome(db, bound, session, prepared=True)
        hot = _prepared_outcome(db, bound, session, prepared=True)
        assert cold == fresh, f"cold rebind diverges for {values!r}"
        assert hot == fresh, f"hot rebind diverges for {values!r}"


def test_null_rebinding_changes_signature_not_answers():
    """A NULL literal is never stripped into the template signature —
    binding NULL must fall through to a *different* template whose
    answers still match fresh execution."""
    from repro.db import Database
    from repro.nontruman.cache import query_signature
    from repro.prepared import bind_skeleton, resolve_signature

    db = Database()
    db.execute("create table T(k int, v float)")
    db.execute("insert into T values (1, 1.5)")
    db.execute("insert into T values (2, null)")
    session = db.connect(mode="open").session

    skeleton, literals, _ = resolve_signature(db, "select k from T where v > 1.0")
    bound_null = bind_skeleton(skeleton, (None,))
    null_skeleton, null_literals = query_signature(bound_null)
    assert null_skeleton != skeleton  # NULL stays inline
    assert null_literals == ()
    fresh = _prepared_outcome(db, bound_null, session, prepared=False)
    prep = _prepared_outcome(db, bound_null, session, prepared=True)
    assert prep == fresh
    assert fresh[0] == "ok" and fresh[2] == []  # v > NULL is UNKNOWN


def test_validity_flip_never_hits_foreign_decision():
    """user 11 may see only their own grades: rebinding the student_id
    literal from '11' to '12' flips the validity outcome, so the '12'
    binding must be decided fresh (and rejected), not served from the
    cached acceptance of the '11' binding — in either order, repeatedly."""
    from repro.db import Database
    from repro.errors import QueryRejectedError

    db = Database()
    db.execute("create table Grades(student_id varchar(8), grade float)")
    db.execute("insert into Grades values ('11', 3.5)")
    db.execute("insert into Grades values ('12', 2.0)")
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant("MyGrades", "11")
    session = db.connect(user_id="11", mode="non-truman").session

    ok_sql = "select grade from Grades where student_id = '11'"
    bad_sql = "select grade from Grades where student_id = '12'"

    for _ in range(3):  # repeat: hot hits must stay correct
        rows = db.execute_query(
            ok_sql, session=session, mode="non-truman", prepared=True
        ).rows
        assert rows == [(3.5,)]
        with pytest.raises(QueryRejectedError) as prep_exc:
            db.execute_query(
                bad_sql, session=session, mode="non-truman", prepared=True
            )
        with pytest.raises(QueryRejectedError) as fresh_exc:
            db.execute_query(
                bad_sql, session=session, mode="non-truman", prepared=False
            )
        assert str(prep_exc.value) == str(fresh_exc.value)
