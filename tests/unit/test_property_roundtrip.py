"""Randomized properties: render/parse round-trips and engine scalar agreement.

A seeded stdlib-``random`` generator produces *type-correct* expression
ASTs over a small row schema (numeric / string / boolean sorts, depth
bounded).  Type-directed generation keeps every expression error-free —
comparisons stay same-sorted, arithmetic avoids ``/`` and ``%``, NOT
applies only to booleans — which matters because the row engine
short-circuits AND/OR/CASE while the vectorized engine evaluates
eagerly: on error-free expressions the two are provably value-equal.

Three properties, all deterministic (fixed seeds):

1. ``parse(render(ast)) == ast`` — the renderer emits exactly the text
   the parser maps back to the same tree (unary minus on literals is
   excluded: the parser constant-folds ``- 3`` to ``Literal(-3)``).
2. Both engines agree scalar-for-scalar on NULL-laden random rows.
3. The Kleene AND/OR/NOT truth tables, pinned exhaustively.
"""

from __future__ import annotations

import random

import pytest

from repro.algebra.ops import OutCol
from repro.engine.evaluator import Evaluator, RowResolver
from repro.engine.vectorized import ColumnBatch, compile_scalar
from repro.sql import ast
from repro.sql.parser import Parser
from repro.sql.render import render

# -- typed expression generator ----------------------------------------

#: row schema the generator draws column references from
NUM_COLUMNS = ("a", "b")
STR_COLUMNS = ("s", "t")

NUM_VALUES = [None, -2, 0, 1, 7, -1.5, 2.5, 100.0]
STR_VALUES = [None, "", "a", "ab", "b%", "x_y", "it's"]


class ExprGen:
    """Depth-bounded, sort-directed random expression generator."""

    def __init__(self, seed: int):
        self.rng = random.Random(seed)

    def expr(self, sort: str, depth: int = 3) -> ast.Expr:
        if sort == "num":
            return self.num(depth)
        if sort == "str":
            return self.text(depth)
        return self.boolean(depth)

    # numeric sort ------------------------------------------------------
    def num(self, depth: int) -> ast.Expr:
        if depth <= 0:
            return self._num_leaf()
        pick = self.rng.randrange(8)
        if pick < 3:
            return self._num_leaf()
        if pick < 5:
            op = self.rng.choice(["+", "-", "*"])
            return ast.BinaryOp(op, self.num(depth - 1), self.num(depth - 1))
        if pick == 5:
            # unary minus on a column only: "- <literal>" would be
            # constant-folded by the parser and break the round-trip
            return ast.UnaryOp("-", ast.ColumnRef(None, self.rng.choice(NUM_COLUMNS)))
        if pick == 6:
            branches = tuple(
                (self.boolean(depth - 1), self.num(depth - 1))
                for _ in range(self.rng.randint(1, 2))
            )
            default = self.num(depth - 1) if self.rng.random() < 0.7 else None
            return ast.CaseExpr(branches, default)
        fn = self.rng.choice(["coalesce", "abs"])
        if fn == "coalesce":
            args = tuple(self.num(depth - 1) for _ in range(self.rng.randint(1, 3)))
            return ast.FuncCall("coalesce", args)
        return ast.FuncCall("abs", (self.num(depth - 1),))

    def _num_leaf(self) -> ast.Expr:
        if self.rng.random() < 0.5:
            return ast.ColumnRef(None, self.rng.choice(NUM_COLUMNS))
        return ast.Literal(self.rng.choice(NUM_VALUES))

    # string sort -------------------------------------------------------
    def text(self, depth: int) -> ast.Expr:
        if depth <= 0:
            return self._str_leaf()
        pick = self.rng.randrange(6)
        if pick < 3:
            return self._str_leaf()
        if pick < 5:
            name = self.rng.choice(["lower", "upper"])
            return ast.FuncCall(name, (self.text(depth - 1),))
        return ast.FuncCall(
            "coalesce",
            tuple(self.text(depth - 1) for _ in range(self.rng.randint(1, 2))),
        )

    def _str_leaf(self) -> ast.Expr:
        if self.rng.random() < 0.5:
            return ast.ColumnRef(None, self.rng.choice(STR_COLUMNS))
        return ast.Literal(self.rng.choice(STR_VALUES))

    # boolean sort ------------------------------------------------------
    def boolean(self, depth: int) -> ast.Expr:
        if depth <= 0:
            return self._bool_leaf()
        pick = self.rng.randrange(10)
        if pick < 3:
            return self._bool_leaf()
        if pick < 5:
            op = self.rng.choice(["and", "or"])
            return ast.BinaryOp(op, self.boolean(depth - 1), self.boolean(depth - 1))
        if pick == 5:
            return ast.UnaryOp("not", self.boolean(depth - 1))
        if pick == 6:
            sort = self.rng.choice(["num", "str"])
            return ast.IsNull(self.expr(sort, depth - 1), self.rng.random() < 0.5)
        if pick == 7:
            return ast.Between(
                self.num(depth - 1),
                self.num(depth - 1),
                self.num(depth - 1),
                negated=self.rng.random() < 0.3,
            )
        if pick == 8:
            sort = self.rng.choice(["num", "str"])
            items = tuple(
                self.expr(sort, 0) for _ in range(self.rng.randint(1, 3))
            )
            return ast.InList(
                self.expr(sort, depth - 1), items, negated=self.rng.random() < 0.3
            )
        return self._bool_leaf()

    def _bool_leaf(self) -> ast.Expr:
        op = self.rng.choice(["=", "<>", "<", "<=", ">", ">="])
        # same-sorted operands: mixed-type comparisons raise in both
        # engines, but the row engine may short-circuit past them
        if self.rng.random() < 0.6:
            return ast.BinaryOp(op, self.num(0), self.num(0))
        if self.rng.random() < 0.5:
            return ast.BinaryOp(op, self.text(0), self.text(0))
        pattern = self.rng.choice(["a%", "%b", "_", "%", "x_y", "it''s"[:3]])
        return ast.BinaryOp("like", self.text(0), ast.Literal(pattern))


# -- property 1: parse(render(ast)) == ast -----------------------------


@pytest.mark.parametrize("seed", range(200))
def test_render_parse_roundtrip(seed):
    gen = ExprGen(seed)
    sort = ("num", "str", "bool")[seed % 3]
    expr = gen.expr(sort, depth=4)
    text = render(expr)
    back = Parser(text).parse_expr()
    assert back == expr, f"round-trip diverged for {text!r}:\n{expr!r}\nvs\n{back!r}"


# -- property 2: engines agree on NULL-laden rows ----------------------


def _random_rows(rng: random.Random, count: int) -> list[tuple]:
    return [
        (
            rng.choice(NUM_VALUES),
            rng.choice(NUM_VALUES),
            rng.choice(STR_VALUES),
            rng.choice(STR_VALUES),
        )
        for _ in range(count)
    ]


RESOLVER = RowResolver(
    tuple(OutCol(None, name) for name in NUM_COLUMNS + STR_COLUMNS)
)


def _same_scalar(x, y) -> bool:
    # identical value AND type: True != 1 here, 2 != 2.0 here — the
    # engines must not even disagree on numeric widening
    return x is y or (type(x) is type(y) and x == y)


@pytest.mark.parametrize("seed", range(150))
def test_engines_agree_on_random_rows(seed):
    gen = ExprGen(seed * 7 + 1)
    sort = ("bool", "bool", "num", "str")[seed % 4]
    expr = gen.expr(sort, depth=4)
    rng = random.Random(seed * 13 + 5)
    rows = _random_rows(rng, 37)

    evaluator = Evaluator(RESOLVER)
    expected = [evaluator.evaluate(expr, row) for row in rows]

    compiled = compile_scalar(expr, RESOLVER)
    batch = ColumnBatch.from_rows(rows, width=4)
    actual = compiled(batch)

    assert len(actual) == len(expected)
    for i, (row_value, vec_value) in enumerate(zip(expected, actual)):
        assert _same_scalar(row_value, vec_value), (
            f"row {rows[i]} of expr {render(expr)}: "
            f"row engine {row_value!r} vs vectorized {vec_value!r}"
        )


# -- property 3: Kleene truth tables, pinned exhaustively --------------

TRI = (True, False, None)

#: (left, right) -> expected, for SQL three-valued AND
AND_TABLE = {
    (True, True): True,
    (True, False): False,
    (True, None): None,
    (False, True): False,
    (False, False): False,
    (False, None): False,
    (None, True): None,
    (None, False): False,
    (None, None): None,
}

OR_TABLE = {
    (True, True): True,
    (True, False): True,
    (True, None): True,
    (False, True): True,
    (False, False): False,
    (False, None): None,
    (None, True): True,
    (None, False): None,
    (None, None): None,
}

NOT_TABLE = {True: False, False: True, None: None}

_BOOL_RESOLVER = RowResolver((OutCol(None, "l"), OutCol(None, "r")))
_L = ast.ColumnRef(None, "l")
_R = ast.ColumnRef(None, "r")


def _both_engines(expr: ast.Expr, rows: list[tuple]) -> tuple[list, list]:
    evaluator = Evaluator(_BOOL_RESOLVER)
    row_out = [evaluator.evaluate(expr, row) for row in rows]
    vec_out = compile_scalar(expr, _BOOL_RESOLVER)(
        ColumnBatch.from_rows(rows, width=2)
    )
    return row_out, vec_out


def test_kleene_and_exhaustive():
    rows = [(l, r) for l in TRI for r in TRI]
    row_out, vec_out = _both_engines(ast.BinaryOp("and", _L, _R), rows)
    for (l, r), got_row, got_vec in zip(rows, row_out, vec_out):
        assert got_row is AND_TABLE[(l, r)], f"row engine: {l} AND {r}"
        assert got_vec is AND_TABLE[(l, r)], f"vectorized: {l} AND {r}"


def test_kleene_or_exhaustive():
    rows = [(l, r) for l in TRI for r in TRI]
    row_out, vec_out = _both_engines(ast.BinaryOp("or", _L, _R), rows)
    for (l, r), got_row, got_vec in zip(rows, row_out, vec_out):
        assert got_row is OR_TABLE[(l, r)], f"row engine: {l} OR {r}"
        assert got_vec is OR_TABLE[(l, r)], f"vectorized: {l} OR {r}"


def test_kleene_not_exhaustive():
    rows = [(value, value) for value in TRI]
    row_out, vec_out = _both_engines(ast.UnaryOp("not", _L), rows)
    for (value, _), got_row, got_vec in zip(rows, row_out, vec_out):
        assert got_row is NOT_TABLE[value], f"row engine: NOT {value}"
        assert got_vec is NOT_TABLE[value], f"vectorized: NOT {value}"


def test_kleene_nesting_agrees_with_tables():
    """(l AND r) OR NOT l — composed truth table, both engines."""
    expr = ast.BinaryOp(
        "or",
        ast.BinaryOp("and", _L, _R),
        ast.UnaryOp("not", _L),
    )
    rows = [(l, r) for l in TRI for r in TRI]
    row_out, vec_out = _both_engines(expr, rows)
    for (l, r), got_row, got_vec in zip(rows, row_out, vec_out):
        expected = OR_TABLE[(AND_TABLE[(l, r)], NOT_TABLE[l])]
        assert got_row is expected
        assert got_vec is expected
