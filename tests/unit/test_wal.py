"""Unit tests for the WAL layer: framing, CRC, torn tails, group commit."""

import os
import struct
import threading

import pytest

from repro.durability.faults import FaultInjector, InjectedCrash
from repro.durability.wal import (
    WalWriter,
    encode_record,
    read_wal,
    truncate_torn,
)
from repro.errors import DurabilityError


@pytest.fixture
def wal_path(tmp_path):
    return str(tmp_path / "wal-0.log")


class TestFraming:
    def test_round_trip(self, wal_path):
        writer = WalWriter(wal_path, start_lsn=1)
        writer.append({"kind": "ddl", "sql": "create table t (id int)"})
        writer.append({"kind": "row", "op": "insert", "rid": 0})
        writer.close()
        records, valid_bytes, torn = read_wal(wal_path)
        assert not torn
        assert valid_bytes == os.path.getsize(wal_path)
        assert [r["lsn"] for r in records] == [1, 2]
        assert records[0]["sql"] == "create table t (id int)"
        assert records[1]["op"] == "insert"

    def test_lsn_assignment_is_monotonic(self, wal_path):
        writer = WalWriter(wal_path, start_lsn=10)
        lsns = [writer.append({"kind": "ddl", "sql": str(i)}) for i in range(5)]
        writer.close()
        assert lsns == [10, 11, 12, 13, 14]
        assert writer.last_appended_lsn == 14

    def test_crc_catches_bit_flip(self, wal_path):
        writer = WalWriter(wal_path, start_lsn=1)
        writer.append({"kind": "ddl", "sql": "alpha"})
        writer.append({"kind": "ddl", "sql": "beta"})
        writer.close()
        data = bytearray(open(wal_path, "rb").read())
        # flip a bit inside the *second* record's payload
        first_len = struct.unpack_from("<I", data, 0)[0]
        target = 8 + first_len + 8 + 2
        data[target] ^= 0x40
        open(wal_path, "wb").write(bytes(data))
        records, valid_bytes, torn = read_wal(wal_path)
        assert torn
        assert [r["sql"] for r in records] == ["alpha"]
        assert valid_bytes == 8 + first_len

    def test_torn_tail_detected_and_truncated(self, wal_path):
        writer = WalWriter(wal_path, start_lsn=1)
        writer.append({"kind": "ddl", "sql": "kept"})
        writer.close()
        frame = encode_record({"kind": "ddl", "sql": "torn", "lsn": 2})
        with open(wal_path, "ab") as handle:
            handle.write(frame[: len(frame) // 2])
        records, valid_bytes, torn = read_wal(wal_path)
        assert torn
        assert len(records) == 1
        truncate_torn(wal_path, valid_bytes)
        records, _, torn = read_wal(wal_path)
        assert not torn
        assert [r["sql"] for r in records] == ["kept"]
        # appends after truncation land on a clean record boundary
        writer = WalWriter(wal_path, start_lsn=2)
        writer.append({"kind": "ddl", "sql": "after"})
        writer.close()
        records, _, torn = read_wal(wal_path)
        assert not torn
        assert [r["sql"] for r in records] == ["kept", "after"]

    def test_absurd_length_field_is_corruption(self, wal_path):
        with open(wal_path, "wb") as handle:
            handle.write(struct.pack("<II", 2**31, 0))
            handle.write(b"x" * 64)
        records, valid_bytes, torn = read_wal(wal_path)
        assert torn
        assert records == []
        assert valid_bytes == 0


class TestSyncPolicies:
    def test_unknown_policy_rejected(self, wal_path):
        with pytest.raises(DurabilityError):
            WalWriter(wal_path, start_lsn=1, sync_policy="sometimes")

    def test_always_fsyncs_per_append(self, wal_path):
        writer = WalWriter(wal_path, start_lsn=1, sync_policy="always")
        for i in range(5):
            writer.append({"kind": "ddl", "sql": str(i)})
        assert writer.fsync_count == 5
        assert writer.synced_lsn == 5
        writer.close()

    def test_none_never_fsyncs_on_commit(self, wal_path):
        writer = WalWriter(wal_path, start_lsn=1, sync_policy="none")
        writer.append({"kind": "ddl", "sql": "x"})
        writer.sync()
        assert writer.fsync_count == 0
        writer.close()

    def test_group_commit_batches_fsyncs(self, wal_path):
        writer = WalWriter(wal_path, start_lsn=1, sync_policy="group")
        barrier = threading.Barrier(8)

        def worker(i):
            barrier.wait()
            lsn = writer.append({"kind": "ddl", "sql": str(i)})
            writer.sync(lsn)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert writer.records_appended == 8
        assert writer.synced_lsn == 8
        # a leader's single fsync covers every concurrent appender; with
        # the barrier the 8 commits collapse into far fewer flushes
        assert writer.fsync_count <= 8
        records, _, torn = read_wal(wal_path)
        assert not torn and len(records) == 8
        writer.close()

    def test_sync_waits_for_covering_lsn(self, wal_path):
        writer = WalWriter(wal_path, start_lsn=1, sync_policy="group")
        lsn = writer.append({"kind": "ddl", "sql": "x"})
        writer.sync(lsn)
        assert writer.synced_lsn >= lsn
        # an already-covered sync returns without another fsync
        before = writer.fsync_count
        writer.sync(lsn)
        assert writer.fsync_count == before
        writer.close()

    def test_append_after_close_raises(self, wal_path):
        writer = WalWriter(wal_path, start_lsn=1)
        writer.close()
        with pytest.raises(DurabilityError):
            writer.append({"kind": "ddl", "sql": "x"})


class TestFaultInjector:
    def test_countdown(self):
        injector = FaultInjector()
        injector.arm("wal.after_append", countdown=3)
        assert not injector.consume("wal.after_append")
        assert not injector.consume("wal.after_append")
        assert injector.consume("wal.after_append")
        assert not injector.consume("wal.after_append")
        assert injector.fired == ["wal.after_append"]

    def test_injected_crash_is_not_an_exception(self):
        assert not issubclass(InjectedCrash, Exception)

    def test_torn_append_leaves_half_frame(self, wal_path):
        injector = FaultInjector()
        writer = WalWriter(wal_path, start_lsn=1, injector=injector)
        writer.append({"kind": "ddl", "sql": "whole"})
        injector.arm("wal.torn_append")
        with pytest.raises(InjectedCrash):
            writer.append({"kind": "ddl", "sql": "torn-record"})
        records, _, torn = read_wal(wal_path)
        assert torn
        assert [r["sql"] for r in records] == ["whole"]
