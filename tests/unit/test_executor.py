"""Unit tests for the executor, run through the Database facade."""

import pytest

from repro.db import Database


@pytest.fixture
def db():
    database = Database()
    database.execute_script(
        """
        create table T(id int primary key, grp varchar(5), val float);
        create table U(id int primary key, t_id int, tag varchar(5));
        insert into T values (1,'a',10.0),(2,'a',20.0),(3,'b',30.0),(4,'b',null);
        insert into U values (1,1,'x'),(2,1,'y'),(3,3,'x');
        """
    )
    return database


class TestScanSelectProject:
    def test_full_scan(self, db):
        assert len(db.execute("select * from T")) == 4

    def test_where_filters_unknown(self, db):
        # val = NULL rows are dropped (UNKNOWN, not TRUE)
        result = db.execute("select id from T where val > 5")
        assert sorted(result.column("id")) == [1, 2, 3]

    def test_projection_expressions(self, db):
        result = db.execute("select id * 10 as x from T where id = 2")
        assert result.scalar() == 20

    def test_distinct(self, db):
        result = db.execute("select distinct grp from T")
        assert sorted(result.column("grp")) == ["a", "b"]


class TestJoins:
    def test_hash_equi_join(self, db):
        result = db.execute(
            "select T.id, U.tag from T, U where T.id = U.t_id"
        )
        assert sorted(result.rows) == [(1, "x"), (1, "y"), (3, "x")]

    def test_join_with_residual(self, db):
        result = db.execute(
            "select T.id from T join U on T.id = U.t_id and U.tag = 'x'"
        )
        assert sorted(result.column("id")) == [1, 3]

    def test_nested_loop_inequality_join(self, db):
        result = db.execute(
            "select T.id, U.id from T join U on T.id < U.t_id"
        )
        # t_id values: 1,1,3 ; T.id < t_id: (1<3),(2<3)
        assert sorted(result.rows) == [(1, 3), (2, 3)]

    def test_left_join_null_padding(self, db):
        result = db.execute(
            "select T.id, U.tag from T left join U on T.id = U.t_id order by T.id"
        )
        assert (2, None) in result.rows and (4, None) in result.rows

    def test_cross_join_cardinality(self, db):
        assert len(db.execute("select 1 from T, U")) == 12

    def test_join_null_keys_never_match(self, db):
        db.execute("insert into U values (4, null, 'z')")
        result = db.execute("select U.id from T, U where T.id = U.t_id")
        assert 4 not in result.column("id")


class TestAggregation:
    def test_group_by(self, db):
        result = db.execute(
            "select grp, count(*) as n, sum(val) as s from T group by grp order by grp"
        )
        assert result.rows == [("a", 2, 30.0), ("b", 2, 30.0)]

    def test_scalar_aggregate_on_empty_input(self, db):
        result = db.execute("select count(*), avg(val) from T where id > 99")
        assert result.rows == [(0, None)]

    def test_group_by_empty_input_no_rows(self, db):
        result = db.execute("select grp, count(*) from T where id > 99 group by grp")
        assert result.rows == []

    def test_having(self, db):
        result = db.execute(
            "select grp from T group by grp having sum(val) > 25 and count(*) = 2"
        )
        assert sorted(result.column("grp")) == ["a", "b"]

    def test_avg_ignores_nulls(self, db):
        result = db.execute("select avg(val) from T where grp = 'b'")
        assert result.scalar() == 30.0

    def test_count_distinct(self, db):
        result = db.execute("select count(distinct grp) from T")
        assert result.scalar() == 2

    def test_group_by_expression(self, db):
        result = db.execute("select id % 2 as parity, count(*) from T group by id % 2")
        assert sorted(result.rows) == [(0, 2), (1, 2)]


class TestSetOperations:
    def test_union_all_keeps_duplicates(self, db):
        result = db.execute(
            "select grp from T union all select grp from T"
        )
        assert len(result) == 8

    def test_union_distinct(self, db):
        result = db.execute("select grp from T union select grp from T")
        assert sorted(result.column("grp")) == ["a", "b"]

    def test_intersect(self, db):
        result = db.execute(
            "select tag from U intersect select grp from T"
        )
        assert result.rows == []  # tags x,y vs groups a,b

    def test_intersect_all_multiplicity(self, db):
        result = db.execute(
            "select grp from T intersect all "
            "select grp from T where id in (1, 3)"
        )
        assert sorted(r[0] for r in result.rows) == ["a", "b"]

    def test_except(self, db):
        result = db.execute(
            "select grp from T except select grp from T where grp = 'a'"
        )
        assert result.column("grp") == ["b"]

    def test_except_all_subtracts_counts(self, db):
        result = db.execute(
            "select grp from T except all select grp from T where id = 1"
        )
        counts = sorted(r[0] for r in result.rows)
        assert counts == ["a", "b", "b"]


class TestSortLimit:
    def test_order_desc(self, db):
        result = db.execute("select id from T order by id desc")
        assert result.column("id") == [4, 3, 2, 1]

    def test_nulls_last_ascending(self, db):
        result = db.execute("select val from T order by val")
        assert result.column("val") == [10.0, 20.0, 30.0, None]

    def test_nulls_first_descending(self, db):
        result = db.execute("select val from T order by val desc")
        assert result.column("val") == [None, 30.0, 20.0, 10.0]

    def test_multi_key_sort(self, db):
        result = db.execute("select grp, id from T order by grp desc, id")
        assert result.rows == [("b", 3), ("b", 4), ("a", 1), ("a", 2)]

    def test_limit_offset(self, db):
        result = db.execute("select id from T order by id limit 2 offset 1")
        assert result.column("id") == [2, 3]


class TestFromlessSelect:
    def test_constant_select(self, db):
        assert db.execute("select 1 + 1 as two").scalar() == 2


class TestViewScanArity:
    """Regression: the ViewRel arity check must fire even when the view
    produces zero rows.  It used to be validated against the first
    result row, so a stale plan over an *empty* authorization view
    silently returned mis-shaped (empty) output instead of failing."""

    @pytest.fixture
    def secured(self, db):
        db.execute(
            "create authorization view EmptyView as "
            "select id, grp from T where val > 1000.0"
        )
        db.grant_public("EmptyView")
        return db

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_empty_view_arity_mismatch_raises(self, secured, engine):
        from repro.algebra import ops
        from repro.errors import ExecutionError

        # plan claims three columns; the stored definition produces two
        stale = ops.ViewRel("EmptyView", "v", ("id", "grp", "val"))
        with pytest.raises(ExecutionError, match="produces 2 columns, expected 3"):
            secured.run_plan(stale, engine=engine)

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_empty_view_matching_arity_is_fine(self, secured, engine):
        from repro.algebra import ops

        plan = ops.ViewRel("EmptyView", "v", ("id", "grp"))
        result = secured.run_plan(plan, engine=engine)
        assert result.rows == []
        assert result.columns == ("id", "grp")

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_nonempty_view_arity_mismatch_raises(self, db, engine):
        from repro.algebra import ops
        from repro.errors import ExecutionError

        db.execute(
            "create authorization view SomeRows as select id, grp from T"
        )
        db.grant_public("SomeRows")
        stale = ops.ViewRel("SomeRows", "v", ("id",))
        with pytest.raises(ExecutionError, match="expected 1"):
            db.run_plan(stale, engine=engine)
