"""Unit tests for the binder/translator (AST → algebra)."""

import pytest

from repro.errors import (
    AmbiguousColumnError,
    BindError,
    ParameterError,
    UnknownColumnError,
    UnknownTableError,
)
from repro.sql import parse_query
from repro.algebra import ops
from repro.algebra.translate import Translator
from repro.catalog.catalog import Catalog, ViewDef
from repro.sql.parser import parse_statement


@pytest.fixture
def catalog():
    cat = Catalog()
    cat.create_table_from_ast(
        parse_statement("create table T(a int primary key, b varchar(10), c float)")
    )
    cat.create_table_from_ast(
        parse_statement("create table U(a int primary key, d varchar(10))")
    )
    cat.create_view(
        ViewDef("V", parse_query("select a, b from T where c > 0"))
    )
    cat.create_view(
        ViewDef(
            "AV",
            parse_query("select * from T where a = $user_id"),
            authorization=True,
        )
    )
    return cat


def translate(catalog, sql, **kwargs):
    return Translator(catalog, **kwargs).translate(parse_query(sql))


class TestBasicShapes:
    def test_scan_project(self, catalog):
        plan = translate(catalog, "select a, b from T")
        assert isinstance(plan, ops.Project)
        assert isinstance(plan.child, ops.Rel)
        assert [c.name for c in plan.columns] == ["a", "b"]

    def test_star_expansion(self, catalog):
        plan = translate(catalog, "select * from T")
        assert [c.name for c in plan.columns] == ["a", "b", "c"]

    def test_qualified_star(self, catalog):
        plan = translate(catalog, "select U.* from T, U")
        assert [c.name for c in plan.columns] == ["a", "d"]

    def test_where_becomes_select(self, catalog):
        plan = translate(catalog, "select a from T where b = 'x'")
        assert isinstance(plan.child, ops.Select)

    def test_comma_join_is_cross(self, catalog):
        plan = translate(catalog, "select T.a from T, U")
        join = plan.child
        assert isinstance(join, ops.Join) and join.kind == "cross"

    def test_explicit_join_condition_bound(self, catalog):
        plan = translate(catalog, "select T.a from T join U on T.a = U.a")
        join = plan.child
        assert join.kind == "inner"
        assert join.predicate is not None

    def test_right_join_normalized_to_left(self, catalog):
        plan = translate(catalog, "select T.a from T right join U on T.a = U.a")
        join = plan.child
        assert join.kind == "left"
        # operands swapped: U becomes the left (preserved) side
        assert isinstance(join.left, ops.Rel) and join.left.name == "U"

    def test_order_limit(self, catalog):
        plan = translate(catalog, "select a from T order by a limit 5")
        assert isinstance(plan, ops.Limit)
        assert isinstance(plan.child, ops.Sort)

    def test_distinct(self, catalog):
        plan = translate(catalog, "select distinct a from T")
        assert isinstance(plan, ops.Distinct)


class TestNameResolution:
    def test_alias_binding(self, catalog):
        plan = translate(catalog, "select x.a from T as x")
        rel = plan.child
        assert rel.binding == "x"

    def test_unknown_table(self, catalog):
        with pytest.raises(UnknownTableError):
            translate(catalog, "select a from Nope")

    def test_unknown_column(self, catalog):
        with pytest.raises(UnknownColumnError):
            translate(catalog, "select zz from T")

    def test_ambiguous_column(self, catalog):
        with pytest.raises(AmbiguousColumnError):
            translate(catalog, "select a from T, U")

    def test_duplicate_alias_rejected(self, catalog):
        with pytest.raises(BindError):
            translate(catalog, "select 1 from T x, U x")

    def test_self_join_with_aliases(self, catalog):
        plan = translate(catalog, "select t1.a, t2.a from T t1, T t2")
        assert len(plan.columns) == 2


class TestViews:
    def test_plain_view_expanded(self, catalog):
        plan = translate(catalog, "select v.a from V v")
        aliases = [n for n in ops.walk(plan) if isinstance(n, ops.Alias)]
        assert aliases and aliases[0].binding == "v"
        rels = ops.base_relations(plan)
        assert rels[0].name == "T"

    def test_auth_view_expanded_with_params(self, catalog):
        plan = translate(
            catalog, "select a from AV", param_values={"user_id": 7}
        )
        # the $user_id should be gone, replaced by literal 7
        selects = [n for n in ops.walk(plan) if isinstance(n, ops.Select)]
        assert selects and "7" in str(selects[0].predicate)

    def test_missing_param_raises(self, catalog):
        with pytest.raises(ParameterError):
            translate(catalog, "select a from AV")

    def test_view_filter_blocks(self, catalog):
        with pytest.raises(UnknownTableError):
            translate(
                catalog,
                "select a from AV",
                param_values={"user_id": 7},
                view_filter=lambda v: not v.authorization,
            )

    def test_keep_view_scans(self, catalog):
        plan = translate(
            catalog,
            "select a from AV",
            param_values={"user_id": 7},
            keep_view_scans=True,
        )
        leaves = ops.view_relations(plan)
        assert leaves and leaves[0].name == "AV"


class TestAggregates:
    def test_group_by_shape(self, catalog):
        plan = translate(catalog, "select b, count(*) as n from T group by b")
        agg = plan.child
        assert isinstance(agg, ops.Aggregate)
        assert [n for _, n in agg.group_exprs] == ["b"]
        assert len(agg.aggregates) == 1

    def test_scalar_aggregate(self, catalog):
        plan = translate(catalog, "select avg(c) from T")
        agg = plan.child
        assert isinstance(agg, ops.Aggregate) and agg.group_exprs == ()

    def test_having_becomes_select_above_aggregate(self, catalog):
        plan = translate(
            catalog, "select b from T group by b having count(*) > 1"
        )
        select = plan.child
        assert isinstance(select, ops.Select)
        assert isinstance(select.child, ops.Aggregate)

    def test_non_grouped_column_rejected(self, catalog):
        with pytest.raises(BindError):
            translate(catalog, "select a, count(*) from T group by b")

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            translate(catalog, "select a from T where count(*) > 1")

    def test_duplicate_aggregate_shared(self, catalog):
        plan = translate(
            catalog, "select count(*), count(*) from T"
        )
        agg = plan.child
        assert len(agg.aggregates) == 1

    def test_expression_over_aggregate(self, catalog):
        plan = translate(catalog, "select avg(c) * 2 from T")
        assert isinstance(plan.child, ops.Aggregate)

    def test_star_with_group_by_rejected(self, catalog):
        with pytest.raises(BindError):
            translate(catalog, "select * from T group by a")


class TestSetOps:
    def test_union(self, catalog):
        plan = translate(
            catalog, "select a from T union all select a from U"
        )
        assert isinstance(plan, ops.SetOperation) and plan.all

    def test_arity_mismatch(self, catalog):
        with pytest.raises(BindError):
            translate(catalog, "select a, b from T union select a from U")


class TestOrderByResolution:
    def test_order_by_alias(self, catalog):
        plan = translate(catalog, "select a as z from T order by z")
        assert isinstance(plan, ops.Sort)

    def test_order_by_underlying_column(self, catalog):
        plan = translate(catalog, "select a from T order by T.a")
        assert isinstance(plan, ops.Sort)

    def test_order_by_aggregate_output(self, catalog):
        plan = translate(
            catalog, "select b, count(*) as n from T group by b order by n desc"
        )
        assert isinstance(plan, ops.Sort)

    def test_order_by_unprojected_rejected(self, catalog):
        with pytest.raises(BindError):
            translate(catalog, "select a from T order by c")


class TestSubqueries:
    def test_derived_table(self, catalog):
        plan = translate(
            catalog, "select s.a from (select a, b from T) as s where s.b = 'x'"
        )
        assert [c.name for c in plan.columns] == ["a"]

    def test_duplicate_output_names_in_subquery_rejected(self, catalog):
        with pytest.raises(BindError):
            translate(catalog, "select * from (select a, a from T) as s")
