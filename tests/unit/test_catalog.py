"""Unit tests for catalog, schemas, types, and constraints."""

import pytest

from repro.errors import DuplicateNameError, TypeError_, UnknownColumnError, UnknownTableError
from repro.catalog import (
    Catalog,
    Column,
    DataType,
    TableSchema,
    TotalParticipation,
    coerce_value,
)
from repro.catalog.constraints import ForeignKey, foreign_key_participation
from repro.sql.parser import parse_statement


class TestDataTypes:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("int", DataType.INT),
            ("INTEGER", DataType.INT),
            ("bigint", DataType.INT),
            ("varchar", DataType.TEXT),
            ("text", DataType.TEXT),
            ("float", DataType.FLOAT),
            ("decimal", DataType.FLOAT),
            ("boolean", DataType.BOOL),
        ],
    )
    def test_from_sql_name(self, name, expected):
        assert DataType.from_sql_name(name) is expected

    def test_unknown_type(self):
        with pytest.raises(TypeError_):
            DataType.from_sql_name("blob")

    def test_coerce_null_passes_any_type(self):
        for dtype in DataType:
            assert coerce_value(None, dtype) is None

    def test_coerce_int(self):
        assert coerce_value(5, DataType.INT) == 5
        assert coerce_value(5.0, DataType.INT) == 5

    def test_coerce_int_rejects_fraction(self):
        with pytest.raises(TypeError_):
            coerce_value(5.5, DataType.INT)

    def test_coerce_int_rejects_bool(self):
        with pytest.raises(TypeError_):
            coerce_value(True, DataType.INT)

    def test_coerce_float_widens_int(self):
        assert coerce_value(3, DataType.FLOAT) == 3.0

    def test_coerce_text_rejects_number(self):
        with pytest.raises(TypeError_):
            coerce_value(3, DataType.TEXT)


class TestSchema:
    def schema(self):
        return TableSchema(
            "T",
            (
                Column("a", DataType.INT, not_null=True),
                Column("b", DataType.TEXT),
            ),
        )

    def test_column_lookup_case_insensitive(self):
        assert self.schema().column("A").name == "a"

    def test_column_index(self):
        assert self.schema().column_index("b") == 1

    def test_unknown_column(self):
        with pytest.raises(UnknownColumnError):
            self.schema().column("zz")

    def test_has_column(self):
        assert self.schema().has_column("B")
        assert not self.schema().has_column("c")


class TestCatalog:
    def test_create_table_from_ast(self):
        catalog = Catalog()
        stmt = parse_statement(
            "create table T(a int primary key, b varchar(5) not null, unique (b))"
        )
        schema = catalog.create_table_from_ast(stmt)
        assert schema.column_names == ("a", "b")
        assert catalog.primary_key("T").columns == ("a",)
        assert catalog.uniques_for("T")[0].columns == ("b",)
        # PK columns are implicitly NOT NULL
        assert schema.column("a").not_null

    def test_keys_for_includes_pk_and_uniques(self):
        catalog = Catalog()
        catalog.create_table_from_ast(
            parse_statement("create table T(a int primary key, b int unique)")
        )
        assert catalog.keys_for("T") == [("a",), ("b",)]

    def test_duplicate_table_rejected(self):
        catalog = Catalog()
        catalog.create_table_from_ast(parse_statement("create table T(a int)"))
        with pytest.raises(DuplicateNameError):
            catalog.create_table_from_ast(parse_statement("create table t(a int)"))

    def test_unknown_table(self):
        with pytest.raises(UnknownTableError):
            Catalog().table("nope")

    def test_fk_defaults_to_referenced_pk(self):
        catalog = Catalog()
        catalog.create_table_from_ast(parse_statement("create table U(x int primary key)"))
        catalog.create_table_from_ast(
            parse_statement("create table T(a int, foreign key (a) references U)")
        )
        fk = catalog.foreign_keys_for("T")[0]
        assert fk.ref_columns == ("x",)

    def test_fk_implies_participation_constraint(self):
        catalog = Catalog()
        catalog.create_table_from_ast(parse_statement("create table U(x int primary key)"))
        catalog.create_table_from_ast(
            parse_statement("create table T(a int, foreign key (a) references U (x))")
        )
        constraints = catalog.participations()
        assert any(
            c.core_table == "T" and c.remainder_table == "U" for c in constraints
        )

    def test_drop_table_cleans_constraints(self):
        catalog = Catalog()
        catalog.create_table_from_ast(parse_statement("create table U(x int primary key)"))
        catalog.create_table_from_ast(
            parse_statement("create table T(a int, foreign key (a) references U (x))")
        )
        catalog.drop_table("T")
        assert not catalog.foreign_keys()
        assert not any(c.core_table == "T" for c in catalog.participations())


class TestVisibility:
    def test_participation_visibility(self):
        public = TotalParticipation("A", "B", (("x", "y"),))
        secret = TotalParticipation(
            "A", "B", (("x", "y"),), visible_to=frozenset({"admin"})
        )
        assert public.is_visible_to(None)
        assert public.is_visible_to("anyone")
        assert not secret.is_visible_to("alice")
        assert not secret.is_visible_to(None)
        assert secret.is_visible_to("admin")

    def test_catalog_filters_by_user(self):
        catalog = Catalog()
        catalog.add_participation(
            TotalParticipation("A", "B", (("x", "y"),),
                               visible_to=frozenset({"admin"}), name="secret")
        )
        assert catalog.participations("alice") == []
        assert len(catalog.participations("admin")) == 1

    def test_fk_participation_has_not_null_guard(self):
        fk = ForeignKey("T", ("a",), "U", ("x",))
        constraint = foreign_key_participation(fk)
        # FK only guarantees a match when the referencing column is non-null
        assert constraint.core_pred is not None
