"""Race-regression tests: hammer the shared structures from N threads.

These guard the locking added for the enforcement gateway: the
validity cache, the grant registry, and the sharded service cache must
tolerate concurrent readers and writers without raising, corrupting
counters, or violating their bounds.  Failures here historically show
up as ``RuntimeError: dictionary changed size during iteration``,
silently lost grants, or caches growing past their LRU limit.
"""

import threading

import pytest

from repro.sql import parse_query
from repro.authviews.registry import GrantRegistry
from repro.nontruman.cache import ValidityCache
from repro.nontruman.decision import Validity
from repro.service.cache import SharedValidityCache
from repro.service.metrics import MetricsRegistry

THREADS = 8
OPS = 150


def hammer(worker, threads=THREADS):
    """Run ``worker(index)`` on N threads; re-raise any failure."""
    errors = []

    def wrapped(index):
        try:
            worker(index)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    pool = [
        threading.Thread(target=wrapped, args=(i,)) for i in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    if errors:
        raise errors[0]


class TestValidityCacheRaces:
    def test_concurrent_store_lookup_invalidate(self):
        cache = ValidityCache(max_entries=64)
        queries = [
            parse_query(f"select x from T where y = {i} and u = 'me'")
            for i in range(20)
        ]

        def worker(index):
            for i in range(OPS):
                query = queries[(index + i) % len(queries)]
                user = f"u{index % 3}"
                cache.store(user, query, "me", Validity.CONDITIONAL, "probe")
                cache.lookup(user, query, "me")
                if i % 25 == 0:
                    cache.invalidate_data()
                if i % 40 == 0:
                    cache.clear()

        hammer(worker)
        assert cache.size <= 64
        # every lookup was accounted exactly once
        assert cache.hits + cache.misses == THREADS * OPS

    def test_lru_bound_holds_under_concurrency(self):
        cache = ValidityCache(max_entries=8)
        # structurally distinct queries: literal-stripping must not
        # collapse them onto one signature
        queries = [
            parse_query(f"select a, col{i} from T") for i in range(32)
        ]

        def worker(index):
            for i in range(OPS):
                cache.store(
                    "u", queries[(index * 7 + i) % 32], "u",
                    Validity.UNCONDITIONAL, "ok",
                )

        hammer(worker)
        assert cache.size <= 8
        assert cache.evictions > 0


class TestGrantRegistryRaces:
    def test_concurrent_grant_revoke_read(self):
        registry = GrantRegistry()
        views = [f"v{i}" for i in range(6)]

        def worker(index):
            me = f"user{index}"
            for i in range(OPS):
                view = views[i % len(views)]
                registry.grant(view, me)
                assert registry.is_granted(view, me)
                registry.views_for(me, views)
                registry.grants()
                if i % 3 == 0:
                    registry.revoke(view, me)

        hammer(worker)
        # a mutation happened on every grant and revoke
        assert registry.version > 0
        # remaining records are exactly the non-revoked grants
        for record in registry.grants():
            assert registry.is_granted(record.view, record.grantee)

    def test_version_monotonic_under_concurrency(self):
        registry = GrantRegistry()
        versions = []

        def worker(index):
            for i in range(OPS):
                registry.grant(f"v{index}_{i}", f"u{index}")
                versions.append(registry.version)

        hammer(worker)
        assert registry.version == THREADS * OPS  # every grant counted once


class TestSharedCacheRaces:
    def test_concurrent_access_with_moving_versions(self):
        state = {"data": 0, "policy": 0}

        def versions():
            return state["data"], state["policy"]

        cache = SharedValidityCache(
            shards=4, capacity_per_shard=16, version_source=versions
        )
        queries = [
            parse_query(f"select x from T where y = {i}") for i in range(24)
        ]

        def worker(index):
            for i in range(OPS):
                query = queries[(index + 3 * i) % len(queries)]
                user = f"u{index % 4}"
                cache.store(user, query, user, Validity.CONDITIONAL, "probe")
                cache.lookup(user, query, user)
                if index == 0 and i % 20 == 0:
                    state["data"] += 1
                if index == 1 and i % 50 == 0:
                    state["policy"] += 1

        hammer(worker)
        assert cache.size <= 4 * 16
        assert cache.hits + cache.misses > 0
        assert cache.policy_invalidations >= 1


class TestPreparedCacheRaces:
    """Concurrent bind/execute against grant/revoke + DDL churn.

    The hazard: a template is looked up, a revoke lands, and the
    already-checked-out artifact is executed anyway — a stale-plan
    answer.  Every observed outcome must be a legitimate policy state
    (the correct rows, or the exact fresh rejection message); the
    quiescent final answer must reflect the final policy.
    """

    SQL = "select grade from Grades where student_id = '7'"
    REJECTION = (
        "query rejected by Non-Truman model: no rewriting in terms of "
        "the available authorization views was found (rules U1-U3, C1-C3)"
    )

    def _db(self):
        from repro.db import Database

        db = Database()
        db.execute("create table Grades(student_id varchar(8), grade float)")
        db.execute("insert into Grades values ('7', 3.0)")
        db.execute(
            "create authorization view MyGrades as "
            "select * from Grades where student_id = $user_id"
        )
        return db

    def test_bind_vs_grant_revoke_churn(self):
        from repro.db import Database  # noqa: F401  (fixture import parity)
        from repro.errors import QueryRejectedError

        db = self._db()
        db.grant("MyGrades", "7")
        session = db.connect(user_id="7", mode="non-truman").session

        def churn(index):
            for _ in range(OPS // 3):
                db.grants.revoke("MyGrades", "7")
                db.grant("MyGrades", "7")

        def reader(index):
            for _ in range(OPS):
                try:
                    result = db.execute_query(
                        self.SQL, session=session, mode="non-truman",
                        prepared=True,
                    )
                except QueryRejectedError as exc:
                    # legal only with the fresh rejection text — a
                    # garbled or stale message means a torn decision
                    assert str(exc) == self.REJECTION, str(exc)
                else:
                    assert result.rows == [(3.0,)], result.rows

        def worker(index):
            (churn if index == 0 else reader)(index)

        hammer(worker)
        # quiescent: the grant is held, so the answer must come back
        result = db.execute_query(
            self.SQL, session=session, mode="non-truman", prepared=True
        )
        assert result.rows == [(3.0,)]

    def test_bind_vs_view_redefinition_churn(self):
        from repro.errors import QueryRejectedError

        db = self._db()
        db.grant("MyGrades", "7")
        session = db.connect(user_id="7", mode="non-truman").session
        closed = (
            "create authorization view MyGrades as "
            "select * from Grades where student_id = 'nobody'"
        )
        opened = (
            "create authorization view MyGrades as "
            "select * from Grades where student_id = $user_id"
        )

        def churn(index):
            for _ in range(OPS // 5):
                db.execute("drop view MyGrades")
                db.execute(closed)
                db.execute("drop view MyGrades")
                db.execute(opened)

        def reader(index):
            for _ in range(OPS):
                try:
                    result = db.execute_query(
                        self.SQL, session=session, mode="non-truman",
                        prepared=True,
                    )
                except QueryRejectedError as exc:
                    assert str(exc) == self.REJECTION, str(exc)
                else:
                    assert result.rows == [(3.0,)], result.rows

        def worker(index):
            (churn if index == 0 else reader)(index)

        hammer(worker)
        result = db.execute_query(
            self.SQL, session=session, mode="non-truman", prepared=True
        )
        assert result.rows == [(3.0,)]


class TestMetricsRaces:
    def test_counters_and_histograms_exact_under_concurrency(self):
        registry = MetricsRegistry()

        def worker(index):
            for i in range(OPS):
                registry.counter("requests").inc()
                registry.histogram("latency_ms").observe(float(i))
                registry.gauge("depth").set(i)

        hammer(worker)
        assert registry.counter("requests").value == THREADS * OPS
        assert registry.histogram("latency_ms").count == THREADS * OPS
        assert registry.histogram("latency_ms").percentile(50) >= 0
