"""Unit tests for selection pushdown (repro.algebra.rewrite)."""

from collections import Counter

import pytest

from repro.db import Database
from repro.sql import parse_query
from repro.algebra import ops
from repro.algebra.rewrite import push_selections


@pytest.fixture
def db():
    database = Database()
    database.execute_script(
        """
        create table T(id int primary key, grp varchar(2), v int);
        create table U(id int primary key, t_id int, w int);
        insert into T values (1,'a',10),(2,'a',20),(3,'b',30);
        insert into U values (1,1,100),(2,1,200),(3,3,300);
        """
    )
    return database


def plan_of(db, sql):
    # plan_query already applies push_selections; build unpushed by hand
    from repro.algebra.translate import Translator

    return Translator(db.catalog).translate(parse_query(sql))


def count_ops(plan, kind):
    return sum(1 for node in ops.walk(plan) if isinstance(node, kind))


class TestPushdownShapes:
    def test_cross_join_becomes_inner(self, db):
        raw = plan_of(db, "select T.id from T, U where T.id = U.t_id")
        pushed = push_selections(raw)
        joins = [n for n in ops.walk(pushed) if isinstance(n, ops.Join)]
        assert joins and joins[0].kind == "inner"
        assert joins[0].predicate is not None

    def test_single_side_conjuncts_pushed_below(self, db):
        raw = plan_of(
            db, "select T.id from T, U where T.id = U.t_id and T.grp = 'a'"
        )
        pushed = push_selections(raw)
        join = next(n for n in ops.walk(pushed) if isinstance(n, ops.Join))
        # the grp filter must sit below the join, on the T side
        left_selects = [
            n for n in ops.walk(join.left) if isinstance(n, ops.Select)
        ]
        assert left_selects, pushed.pretty()
        assert "grp" in str(left_selects[0].predicate)

    def test_select_merge_through_nested_selects(self, db):
        raw = plan_of(
            db,
            "select id from (select * from T where v > 5) s where s.grp = 'a'",
        )
        pushed = push_selections(raw)
        # both conjuncts end up in (possibly one) select over the scan
        selects = [n for n in ops.walk(pushed) if isinstance(n, ops.Select)]
        assert selects

    def test_left_join_predicate_untouched(self, db):
        raw = plan_of(
            db, "select T.id from T left join U on T.id = U.t_id"
        )
        pushed = push_selections(raw)
        join = next(n for n in ops.walk(pushed) if isinstance(n, ops.Join))
        assert join.kind == "left"
        assert join.predicate is not None


class TestPushdownSemantics:
    QUERIES = [
        "select T.id, U.w from T, U where T.id = U.t_id",
        "select T.id from T, U where T.id = U.t_id and T.grp = 'a' and U.w > 150",
        "select T.grp, count(*) from T, U where T.id = U.t_id group by T.grp",
        "select t1.id, t2.id from T t1, T t2 where t1.v < t2.v",
        "select T.id from T, U where T.id = U.t_id and T.v + U.w > 100",
        "select distinct grp from T where v > 5",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_pushed_plan_equivalent(self, db, sql):
        session = db.connect().session
        raw = plan_of(db, sql)
        pushed = push_selections(raw)
        raw_rows = Counter(db.run_plan(raw, session).rows)
        pushed_rows = Counter(db.run_plan(pushed, session).rows)
        assert raw_rows == pushed_rows

    def test_pushdown_reduces_join_work(self, db):
        from repro.db import _QueryContext
        from repro.engine.executor import Executor

        session = db.connect().session
        sql = "select T.id from T, U where T.id = U.t_id and T.grp = 'b'"
        raw = plan_of(db, sql)
        pushed = push_selections(raw)

        def pairs(plan):
            executor = Executor(_QueryContext(db, session))
            executor.execute(plan)
            return executor.join_pairs_examined

        assert pairs(pushed) <= pairs(raw)
