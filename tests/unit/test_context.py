"""Unit tests for QueryContext: deadlines, cancellation, budgets."""

import time

import pytest

from repro.errors import QueryCancelled, QueryTimeout, ResourceBudgetExceeded
from repro.service.context import BYTES_PER_CELL, QueryContext


class TestDeadline:
    def test_no_deadline_never_expires(self):
        ctx = QueryContext()
        assert not ctx.expired
        assert ctx.remaining() is None
        ctx.check()  # does not raise

    def test_expired_deadline_raises_on_check(self):
        ctx = QueryContext(deadline=0.0)
        time.sleep(0.001)
        assert ctx.expired
        with pytest.raises(QueryTimeout):
            ctx.check()

    def test_check_reports_phase(self):
        ctx = QueryContext(deadline=0.0)
        time.sleep(0.001)
        with pytest.raises(QueryTimeout, match="during inference"):
            ctx.check("inference")

    def test_remaining_counts_down(self):
        ctx = QueryContext(deadline=60.0)
        remaining = ctx.remaining()
        assert 0 < remaining <= 60.0

    def test_tick_observes_deadline_at_interval(self):
        ctx = QueryContext(deadline=0.0, check_interval=8)
        time.sleep(0.001)
        # fewer ticks than the interval: the clock is not consulted
        for _ in range(7):
            ctx.tick()
        with pytest.raises(QueryTimeout):
            ctx.tick()


class TestCancellation:
    def test_cancel_raises_on_next_check(self):
        ctx = QueryContext()
        ctx.cancel()
        assert ctx.cancelled
        with pytest.raises(QueryCancelled):
            ctx.check()

    def test_cancel_observed_by_tick(self):
        ctx = QueryContext(check_interval=4)
        ctx.cancel()
        with pytest.raises(QueryCancelled):
            for _ in range(4):
                ctx.tick()

    def test_zero_row_ticks_count_as_work(self):
        # pure search loops tick(0); they must still observe cancellation
        ctx = QueryContext(check_interval=4)
        ctx.cancel()
        with pytest.raises(QueryCancelled):
            for _ in range(4):
                ctx.tick(0)


class TestBudgets:
    def test_row_budget_enforced_immediately(self):
        ctx = QueryContext(row_budget=100)
        ctx.tick(rows=100)
        with pytest.raises(ResourceBudgetExceeded, match="row budget"):
            ctx.tick(rows=1)

    def test_memory_budget_enforced(self):
        ctx = QueryContext(memory_budget=10 * BYTES_PER_CELL)
        ctx.tick(rows=1, cells=10)
        with pytest.raises(ResourceBudgetExceeded, match="memory budget"):
            ctx.tick(rows=1, cells=1)

    def test_no_budget_charges_freely(self):
        ctx = QueryContext()
        ctx.tick(rows=10**6, cells=10**6)
        assert ctx.rows_charged == 10**6
        assert ctx.bytes_charged == 10**6 * BYTES_PER_CELL

    def test_stats_snapshot(self):
        ctx = QueryContext(check_interval=2)
        ctx.tick(rows=3)
        stats = ctx.stats()
        assert stats["rows_charged"] == 3
        assert stats["checks_performed"] >= 1
        assert stats["cancelled"] is False


class TestAmortization:
    def test_clock_consulted_once_per_interval(self):
        ctx = QueryContext(deadline=60.0, check_interval=512)
        for _ in range(512 * 3):
            ctx.tick()
        assert ctx.checks_performed == 3
