"""Hash partitioner + partitioned-table facade (repro.cluster.partition).

Satellite of the cluster PR: property tests that the partitioner is a
total, stable, insertion-order-independent function of the partition
key, and unit coverage for the Table-shaped facade invariants the
differential harness depends on (rid-ordered iteration, cross-shard
uniques with single-node error messages, partition-key moves).
"""

import random

import pytest

from repro.catalog.schema import Column, TableSchema
from repro.catalog.types import DataType
from repro.cluster.partition import HashPartitioner, PartitionedTable
from repro.errors import ExecutionError
from repro.storage.table import Table


def schema():
    return TableSchema(
        "T",
        (
            Column("id", DataType.INT),
            Column("name", DataType.TEXT),
            Column("score", DataType.FLOAT),
        ),
    )


def make_partitioned(n_shards, key=("id",)):
    s = schema()
    shards = [Table(s) for _ in range(n_shards)]
    return PartitionedTable(s, shards, HashPartitioner(s, key, n_shards))


class TestPartitionerProperties:
    def test_total_over_mixed_key_values(self):
        """Every representable key value maps to exactly one in-range
        shard — including None, negative ints, and unicode text."""
        rng = random.Random(41)
        part = HashPartitioner(schema(), ("id",), 5)
        values = [None, 0, -1, 2**40, -(2**40)] + [
            rng.randint(-(10**9), 10**9) for _ in range(500)
        ]
        for value in values:
            shard = part.shard_of((value, "x", 1.0))
            assert 0 <= shard < 5

    def test_stable_under_table_growth(self):
        """A key's shard never changes as the table grows: the mapping
        is a pure function of (key, n_shards), not of table contents."""
        part = HashPartitioner(schema(), ("id",), 4)
        table = make_partitioned(4)
        placements = {}
        for i in range(300):
            placements[i] = part.shard_of((i, f"n{i}", 0.5))
            table.insert((i, f"n{i}", 0.5))
            # growth did not move anything assigned earlier
            for key, shard in placements.items():
                assert part.shard_of((key, "other", 9.9)) == shard

    def test_insertion_order_independent(self):
        """Shuffled insertion orders land every row on the same shard."""
        rng = random.Random(1187)
        rows = [(i, f"n{i}", float(i)) for i in range(200)]
        reference = None
        for _ in range(5):
            shuffled = rows[:]
            rng.shuffle(shuffled)
            table = make_partitioned(4)
            for row in shuffled:
                table.insert(row)
            placement = {
                row[0]: table.shard_of_row_id(rid)
                for rid, row in table.rows_with_ids()
            }
            if reference is None:
                reference = placement
            assert placement == reference

    def test_key_column_subset(self):
        """Partitioning on a non-PK column routes by that column only."""
        part = HashPartitioner(schema(), ("name",), 3)
        a = part.shard_of((1, "alice", 0.1))
        b = part.shard_of((999, "alice", 9.9))
        assert a == b

    def test_stable_across_equivalent_coercions(self):
        """1 and 1.0 in an INT key column route identically (values are
        dtype-coerced before hashing)."""
        s = schema()
        shards = [Table(s) for _ in range(4)]
        table = PartitionedTable(s, shards, HashPartitioner(s, ("id",), 4))
        table.insert((7, "x", 1.0))
        pruned_int = table.prune_for({"id": 7})
        pruned_float = table.prune_for({"id": 7.0})
        assert pruned_int is not None and pruned_float is not None
        assert list(pruned_int.rows()) == list(pruned_float.rows())


class TestPartitionedTableFacade:
    def test_merged_iteration_is_rid_ordered(self):
        table = make_partitioned(4)
        for i in range(50):
            table.insert((i, f"n{i}", float(i)))
        rids = [rid for rid, _ in table.rows_with_ids()]
        assert rids == sorted(rids)
        # and matches what a single-node table would hold
        single = Table(schema())
        for i in range(50):
            single.insert((i, f"n{i}", float(i)))
        assert list(table.rows_with_ids()) == list(single.rows_with_ids())

    def test_cross_shard_unique_violation_single_node_message(self):
        table = make_partitioned(4, key=("name",))
        table.create_index(("id",), unique=True)
        table.insert((1, "a", 0.0))
        with pytest.raises(ExecutionError) as excinfo:
            table.insert((1, "b", 0.0))  # same id, different shard
        single = Table(schema())
        single.create_index(("id",), unique=True)
        single.insert((1, "a", 0.0))
        with pytest.raises(ExecutionError) as single_exc:
            single.insert((1, "b", 0.0))
        assert str(excinfo.value) == str(single_exc.value)

    def test_update_moving_partition_key_keeps_row_id(self):
        table = make_partitioned(4)
        rid = table.insert((3, "move-me", 1.5))
        old_shard = table.shard_of_row_id(rid)
        table.update_row(rid, (4003, "move-me", 1.5))
        assert table.get_row(rid) == (4003, "move-me", 1.5)
        new_shard = table.shard_of_row_id(rid)
        if old_shard != new_shard:
            # the fragment on the old shard no longer holds the row
            assert rid not in dict(table.fragment(old_shard).rows_with_ids())
        assert rid in dict(table.fragment(new_shard).rows_with_ids())

    def test_prune_requires_full_partition_key(self):
        s = schema()
        shards = [Table(s) for _ in range(4)]
        table = PartitionedTable(
            s, shards, HashPartitioner(s, ("id", "name"), 4)
        )
        table.insert((1, "a", 0.0))
        assert table.prune_for({"id": 1}) is None  # partial key
        assert table.prune_for({"id": 1, "name": "a"}) is not None

    def test_prune_uncoercible_literal_falls_back(self):
        table = make_partitioned(4)
        table.insert((1, "a", 0.0))
        assert table.prune_for({"id": "not-an-int"}) is None

    def test_data_version_bumps_on_mutation(self):
        table = make_partitioned(2)
        v0 = table.data_version
        rid = table.insert((1, "a", 0.0))
        v1 = table.data_version
        table.update_row(rid, (1, "b", 0.0))
        v2 = table.data_version
        table.delete_row(rid)
        v3 = table.data_version
        assert v0 < v1 < v2 < v3
