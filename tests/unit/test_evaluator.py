"""Unit tests for scalar evaluation with three-valued logic."""

import pytest

from repro.errors import ExecutionError, TypeError_
from repro.sql.parser import Parser
from repro.algebra.ops import OutCol
from repro.engine.evaluator import Evaluator, RowResolver, compare, sql_like


def make_eval(**columns):
    cols = tuple(OutCol("t", name) for name in columns)
    return Evaluator(RowResolver(cols)), tuple(columns.values())


def ev(expr_text, **columns):
    evaluator, row = make_eval(**columns)
    expr = Parser(expr_text).parse_expr()
    # qualify bare column refs with 't'
    from repro.algebra import expr as exprs
    from repro.sql import ast

    def visit(node):
        if isinstance(node, ast.ColumnRef) and node.table is None:
            return ast.ColumnRef("t", node.name)
        return None

    return evaluator.evaluate(exprs.transform(expr, visit), row)


class TestComparisons:
    def test_basic(self):
        assert ev("x = 1", x=1) is True
        assert ev("x <> 1", x=1) is False
        assert ev("x < 2", x=1) is True
        assert ev("x >= 2", x=1) is False

    def test_null_comparison_unknown(self):
        assert ev("x = 1", x=None) is None
        assert ev("x <> 1", x=None) is None

    def test_string_comparison(self):
        assert ev("x < 'b'", x="a") is True

    def test_mixed_numeric(self):
        assert ev("x = 1", x=1.0) is True

    def test_incompatible_types_raise(self):
        with pytest.raises(TypeError_):
            ev("x = 'a'", x=1)

    def test_bool_not_comparable_to_int(self):
        with pytest.raises(TypeError_):
            compare("=", True, 1)


class TestKleeneLogic:
    def test_and_truth_table(self):
        assert ev("x = 1 and y = 2", x=1, y=2) is True
        assert ev("x = 1 and y = 2", x=1, y=3) is False
        assert ev("x = 1 and y = 2", x=1, y=None) is None
        # FALSE AND UNKNOWN = FALSE (short circuit)
        assert ev("x = 9 and y = 2", x=1, y=None) is False

    def test_or_truth_table(self):
        assert ev("x = 1 or y = 9", x=1, y=None) is True
        assert ev("x = 9 or y = 9", x=1, y=2) is False
        assert ev("x = 9 or y = 2", x=1, y=None) is None

    def test_not(self):
        assert ev("not x = 1", x=2) is True
        assert ev("not x = 1", x=None) is None


class TestNullHandling:
    def test_is_null(self):
        assert ev("x is null", x=None) is True
        assert ev("x is not null", x=None) is False
        assert ev("x is null", x=0) is False

    def test_arithmetic_with_null(self):
        assert ev("x + 1", x=None) is None

    def test_in_list_with_null_semantics(self):
        assert ev("x in (1, 2)", x=1) is True
        assert ev("x in (1, 2)", x=3) is False
        assert ev("x in (1, null)", x=1) is True
        assert ev("x in (1, null)", x=3) is None  # unknown, not false
        assert ev("x in (1)", x=None) is None

    def test_not_in_with_null(self):
        assert ev("x not in (1, null)", x=3) is None
        assert ev("x not in (1, 2)", x=3) is True

    def test_between_with_null_bound(self):
        assert ev("x between 1 and y", x=0, y=None) is False  # 0 >= 1 false
        assert ev("x between 1 and y", x=2, y=None) is None


class TestArithmetic:
    def test_operations(self):
        assert ev("x + 2 * 3", x=1) == 7
        assert ev("x - 1", x=5) == 4
        assert ev("x / 2", x=7) == 3.5
        assert ev("x / 2", x=8) == 4  # exact division stays integral
        assert ev("x % 3", x=7) == 1

    def test_division_by_zero(self):
        with pytest.raises(ExecutionError):
            ev("x / 0", x=1)

    def test_unary_minus(self):
        assert ev("-x", x=3) == -3

    def test_concat(self):
        assert ev("x || '!'", x="hi") == "hi!"


class TestLike:
    def test_percent(self):
        assert sql_like("CS101", "CS%")
        assert not sql_like("MATH1", "CS%")

    def test_underscore(self):
        assert sql_like("CS1", "CS_")
        assert not sql_like("CS10", "CS_")

    def test_regex_chars_escaped(self):
        assert sql_like("a.b", "a.b")
        assert not sql_like("axb", "a.b")

    def test_like_in_evaluator(self):
        assert ev("x like 'C%1'", x="CS101") is True
        assert ev("x like 'C%1'", x=None) is None


class TestCaseAndFunctions:
    def test_case(self):
        assert ev("case when x > 1 then 'big' else 'small' end", x=5) == "big"
        assert ev("case when x > 1 then 'big' end", x=0) is None

    def test_coalesce(self):
        assert ev("coalesce(x, 7)", x=None) == 7
        assert ev("coalesce(x, 7)", x=3) == 3

    def test_abs_lower_upper_length(self):
        assert ev("abs(x)", x=-2) == 2
        assert ev("lower(x)", x="ABC") == "abc"
        assert ev("upper(x)", x="abc") == "ABC"
        assert ev("length(x)", x="abcd") == 4

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            ev("mystery(x)", x=1)


class TestResolver:
    def test_qualified_lookup(self):
        resolver = RowResolver((OutCol("a", "x"), OutCol("b", "x")))
        from repro.sql import ast

        assert resolver.ordinal(ast.ColumnRef("b", "x")) == 1
        assert resolver.ordinal(ast.ColumnRef("a", "x")) == 0

    def test_unqualified_takes_first(self):
        resolver = RowResolver((OutCol("a", "x"), OutCol("b", "x")))
        from repro.sql import ast

        assert resolver.ordinal(ast.ColumnRef(None, "x")) == 0

    def test_unknown_column(self):
        resolver = RowResolver((OutCol("a", "x"),))
        from repro.sql import ast

        with pytest.raises(ExecutionError):
            resolver.ordinal(ast.ColumnRef("a", "zz"))
