"""Unit tests for the benchmark harness and table reporting."""

from repro.bench import Experiment, Measurement, time_callable
from repro.bench.reporting import format_table


class TestExperiment:
    def test_add_and_columns_in_order(self):
        experiment = Experiment("EX", "title", "claim")
        experiment.add("a", x=1, y=2)
        experiment.add("b", y=3, z=4)
        assert experiment.columns() == ["x", "y", "z"]

    def test_report_contains_all_rows(self):
        experiment = Experiment("EX", "demo", "the claim")
        experiment.add("case one", value=10)
        experiment.add("case two", value=20)
        report = experiment.report()
        assert "EX: demo" in report
        assert "the claim" in report
        assert "case one" in report and "case two" in report

    def test_missing_cells_render_empty(self):
        experiment = Experiment("EX", "t", "c")
        experiment.add("a", x=1)
        experiment.add("b", y=2)
        report = experiment.report()
        assert "a" in report and "b" in report


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_float_formatting(self):
        table = format_table(["v"], [[0.000123], [3.14159], [12345.6]])
        assert "0.000123" in table
        assert "3.14" in table
        assert "12,346" in table

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestTimeCallable:
    def test_returns_median_and_stdev(self):
        calls = []

        def fn():
            calls.append(1)

        median, stdev = time_callable(fn, repeat=3, warmup=2)
        assert len(calls) == 5
        assert median >= 0 and stdev >= 0

    def test_single_repeat_zero_stdev(self):
        median, stdev = time_callable(lambda: None, repeat=1, warmup=0)
        assert stdev == 0.0
