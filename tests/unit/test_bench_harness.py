"""Unit tests for the benchmark harness and table reporting."""

import json

from repro.bench import Experiment, Measurement, time_callable
from repro.bench.reporting import format_table


class TestExperiment:
    def test_add_and_columns_in_order(self):
        experiment = Experiment("EX", "title", "claim")
        experiment.add("a", x=1, y=2)
        experiment.add("b", y=3, z=4)
        assert experiment.columns() == ["x", "y", "z"]

    def test_report_contains_all_rows(self):
        experiment = Experiment("EX", "demo", "the claim")
        experiment.add("case one", value=10)
        experiment.add("case two", value=20)
        report = experiment.report()
        assert "EX: demo" in report
        assert "the claim" in report
        assert "case one" in report and "case two" in report

    def test_missing_cells_render_empty(self):
        experiment = Experiment("EX", "t", "c")
        experiment.add("a", x=1)
        experiment.add("b", y=2)
        report = experiment.report()
        assert "a" in report and "b" in report


class TestExperimentJson:
    """BENCH_<id>.json emission: stable, diffable, machine-readable."""

    def make(self) -> Experiment:
        experiment = Experiment("E99", "net sweep", "sheds past saturation")
        experiment.add("rate=100", ok=100, shed=0, p99_ms=4.25)
        experiment.add("rate=400", ok=210, shed=190, p99_ms=55.0)
        return experiment

    def test_to_json_dict_shape(self):
        payload = self.make().to_json_dict()
        assert payload["id"] == "E99"
        assert payload["claim"] == "sheds past saturation"
        assert payload["columns"] == ["case", "ok", "shed", "p99_ms"]
        assert payload["rows"][0] == {
            "case": "rate=100", "ok": 100, "shed": 0, "p99_ms": 4.25,
        }
        assert payload["rows"][1]["shed"] == 190

    def test_to_json_round_trips(self):
        text = self.make().to_json()
        assert text.endswith("\n")
        parsed = json.loads(text)
        assert parsed["rows"][1]["case"] == "rate=400"

    def test_write_json(self, tmp_path):
        path = tmp_path / "BENCH_E99.json"
        self.make().write_json(path)
        parsed = json.loads(path.read_text())
        assert [row["case"] for row in parsed["rows"]] == [
            "rate=100", "rate=400",
        ]

    def test_non_scalar_values_stringified(self):
        experiment = Experiment("EX", "t", "c")
        experiment.add("a", status=Measurement("inner"))
        parsed = json.loads(experiment.to_json())
        assert isinstance(parsed["rows"][0]["status"], str)


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "n"], [["alpha", 1], ["b", 22]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_float_formatting(self):
        table = format_table(["v"], [[0.000123], [3.14159], [12345.6]])
        assert "0.000123" in table
        assert "3.14" in table
        assert "12,346" in table

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestTimeCallable:
    def test_returns_median_and_stdev(self):
        calls = []

        def fn():
            calls.append(1)

        median, stdev = time_callable(fn, repeat=3, warmup=2)
        assert len(calls) == 5
        assert median >= 0 and stdev >= 0

    def test_single_repeat_zero_stdev(self):
        median, stdev = time_callable(lambda: None, repeat=1, warmup=0)
        assert stdev == 0.0
