"""Unit tests for the WAL circuit breaker, the chaos injector, and the
State metric instrument."""

import pytest

from repro.errors import TransientFault
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.chaos import ChaosInjector
from repro.service.metrics import MetricsRegistry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        clock = FakeClock()
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=threshold,
            cooldown=cooldown,
            on_transition=lambda old, new: transitions.append((old, new)),
            clock=clock,
        )
        return breaker, clock, transitions

    def test_starts_closed_and_allows(self):
        breaker, _, _ = self.make()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_trips_after_consecutive_failures(self):
        breaker, _, transitions = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 1
        assert transitions == [(CLOSED, OPEN)]

    def test_success_resets_failure_streak(self):
        breaker, _, _ = self.make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_rejects_until_cooldown(self):
        breaker, clock, _ = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the half-open probe
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_single_probe(self):
        breaker, clock, _ = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        assert not breaker.allow()  # second caller waits for the probe

    def test_probe_success_closes(self):
        breaker, clock, transitions = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.recoveries == 1
        assert transitions == [(CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED)]

    def test_probe_failure_reopens_and_restarts_cooldown(self):
        breaker, clock, _ = self.make(threshold=1, cooldown=10.0)
        breaker.record_failure()
        clock.advance(10.1)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.trips == 2
        assert not breaker.allow()
        clock.advance(10.1)
        assert breaker.allow()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_stats(self):
        breaker, _, _ = self.make(threshold=1)
        breaker.record_failure()
        stats = breaker.stats()
        assert stats["breaker_state"] == OPEN
        assert stats["breaker_trips"] == 1


class TestChaosInjector:
    def test_unarmed_points_are_free(self):
        chaos = ChaosInjector(seed=1)
        chaos.fire("gateway.dequeue")  # no spec, no effect
        assert chaos.stats() == {}

    def test_transient_fault_raised(self):
        chaos = ChaosInjector(seed=1)
        chaos.inject("gateway.before_check", "transient", probability=1.0)
        with pytest.raises(TransientFault):
            chaos.fire("gateway.before_check")
        assert chaos.stats() == {"gateway.before_check:transient": 1}

    def test_io_error_raised(self):
        chaos = ChaosInjector(seed=1)
        chaos.inject("gateway.before_commit", "io-error")
        with pytest.raises(OSError):
            chaos.fire("gateway.before_commit")

    def test_worker_crash_raised(self):
        chaos = ChaosInjector(seed=1)
        chaos.inject("gateway.dequeue", "worker-crash")
        with pytest.raises(RuntimeError):
            chaos.fire("gateway.dequeue")

    def test_times_bounds_firings(self):
        chaos = ChaosInjector(seed=1)
        chaos.inject("gateway.before_check", "transient", times=2)
        for _ in range(2):
            with pytest.raises(TransientFault):
                chaos.fire("gateway.before_check")
        chaos.fire("gateway.before_check")  # exhausted: no raise
        assert chaos.stats()["gateway.before_check:transient"] == 2

    def test_probability_zero_never_fires(self):
        chaos = ChaosInjector(seed=1)
        chaos.inject("gateway.before_check", "transient", probability=0.0)
        for _ in range(50):
            chaos.fire("gateway.before_check")
        assert chaos.stats() == {}

    def test_probability_is_seeded(self):
        def run(seed):
            chaos = ChaosInjector(seed=seed)
            chaos.inject("p", "delay", probability=0.5)
            for _ in range(100):
                chaos.fire("p")
            return chaos.stats().get("p:delay", 0)

        assert run(7) == run(7)

    def test_unknown_kind_rejected(self):
        chaos = ChaosInjector()
        with pytest.raises(ValueError):
            chaos.inject("p", "meteor-strike")

    def test_clear_disarms(self):
        chaos = ChaosInjector(seed=1)
        chaos.inject("p", "transient")
        chaos.clear("p")
        chaos.fire("p")  # no raise
        chaos.inject("p", "transient")
        chaos.clear()
        chaos.fire("p")  # no raise


class TestStateMetric:
    def test_state_value_and_transitions(self):
        registry = MetricsRegistry()
        state = registry.state("breaker_state", initial="closed")
        assert state.value == "closed"
        assert state.transitions == 0
        state.set("open")
        state.set("open")  # no-op: same value
        state.set("half-open")
        assert state.value == "half-open"
        assert state.transitions == 2

    def test_snapshot_includes_states(self):
        registry = MetricsRegistry()
        registry.state("breaker_state", initial="closed").set("open")
        snap = registry.snapshot()
        assert snap["breaker_state"] == "open"
        assert snap["breaker_state_transitions"] == 1

    def test_state_shared_by_name(self):
        registry = MetricsRegistry()
        registry.state("s").set("a")
        assert registry.state("s").value == "a"
