"""Unit tests for the SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_query, parse_statement, parse_statements


class TestSelect:
    def test_simple_select(self):
        stmt = parse_query("select a, b from T")
        assert isinstance(stmt, ast.SelectStmt)
        assert [i.expr for i in stmt.items] == [
            ast.ColumnRef(None, "a"),
            ast.ColumnRef(None, "b"),
        ]
        assert stmt.from_items == (ast.TableRef("T"),)

    def test_star(self):
        stmt = parse_query("select * from T")
        assert stmt.items == (ast.SelectItem(ast.Star()),)

    def test_qualified_star(self):
        stmt = parse_query("select T.* from T")
        assert stmt.items == (ast.SelectItem(ast.Star(table="T")),)

    def test_alias_with_and_without_as(self):
        a = parse_query("select x as y from T")
        b = parse_query("select x y from T")
        assert a.items[0].alias == "y"
        assert b.items[0].alias == "y"

    def test_distinct(self):
        assert parse_query("select distinct a from T").distinct
        assert not parse_query("select all a from T").distinct

    def test_where(self):
        stmt = parse_query("select a from T where a = 1 and b > 2")
        where = stmt.where
        assert isinstance(where, ast.BinaryOp) and where.op == "and"

    def test_group_by_having(self):
        stmt = parse_query(
            "select a, count(*) from T group by a having count(*) > 3"
        )
        assert stmt.group_by == (ast.ColumnRef(None, "a"),)
        assert isinstance(stmt.having, ast.BinaryOp)

    def test_order_by_limit_offset(self):
        stmt = parse_query("select a from T order by a desc, b limit 10 offset 5")
        assert stmt.order_by[0].descending
        assert not stmt.order_by[1].descending
        assert stmt.limit == 10 and stmt.offset == 5

    def test_comma_join(self):
        stmt = parse_query("select * from A, B, C")
        assert len(stmt.from_items) == 3

    def test_explicit_join(self):
        stmt = parse_query("select * from A join B on A.x = B.y")
        join = stmt.from_items[0]
        assert isinstance(join, ast.JoinRef) and join.kind == "inner"
        assert join.condition == ast.BinaryOp(
            "=", ast.ColumnRef("A", "x"), ast.ColumnRef("B", "y")
        )

    def test_left_join(self):
        stmt = parse_query("select * from A left outer join B on A.x = B.y")
        assert stmt.from_items[0].kind == "left"

    def test_cross_join(self):
        stmt = parse_query("select * from A cross join B")
        join = stmt.from_items[0]
        assert join.kind == "cross" and join.condition is None

    def test_derived_table(self):
        stmt = parse_query("select s.a from (select a from T) as s")
        sub = stmt.from_items[0]
        assert isinstance(sub, ast.SubqueryRef) and sub.alias == "s"

    def test_select_without_from(self):
        stmt = parse_query("select 1")
        assert stmt.from_items == ()


class TestExpressions:
    def q(self, where):
        return parse_query(f"select a from T where {where}").where

    def test_precedence_or_and(self):
        expr = self.q("a = 1 or b = 2 and c = 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not(self):
        expr = self.q("not a = 1")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "not"

    def test_between(self):
        expr = self.q("a between 1 and 3")
        assert isinstance(expr, ast.Between) and not expr.negated

    def test_not_between(self):
        expr = self.q("a not between 1 and 3")
        assert isinstance(expr, ast.Between) and expr.negated

    def test_in_list(self):
        expr = self.q("a in (1, 2, 3)")
        assert isinstance(expr, ast.InList) and len(expr.items) == 3

    def test_not_in(self):
        assert self.q("a not in (1)").negated

    def test_is_null_and_is_not_null(self):
        assert not self.q("a is null").negated
        assert self.q("a is not null").negated

    def test_like(self):
        expr = self.q("a like 'CS%'")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "like"

    def test_arithmetic_precedence(self):
        expr = self.q("a = 1 + 2 * 3")
        plus = expr.right
        assert plus.op == "+" and plus.right.op == "*"

    def test_unary_minus_folds_literal(self):
        expr = self.q("a = -5")
        assert expr.right == ast.Literal(-5)

    def test_neq_normalized(self):
        assert self.q("a != 1").op == "<>"

    def test_case_expression(self):
        stmt = parse_query(
            "select case when a > 1 then 'hi' else 'lo' end from T"
        )
        expr = stmt.items[0].expr
        assert isinstance(expr, ast.CaseExpr)
        assert len(expr.branches) == 1 and expr.default == ast.Literal("lo")

    def test_count_star(self):
        expr = parse_query("select count(*) from T").items[0].expr
        assert expr == ast.FuncCall("count", (ast.Star(),))

    def test_count_distinct(self):
        expr = parse_query("select count(distinct a) from T").items[0].expr
        assert expr.distinct

    def test_parameters(self):
        stmt = parse_query("select * from T where a = $user_id and b = $$1")
        conj = stmt.where
        assert conj.left.right == ast.Param("user_id")
        assert conj.right.right == ast.AccessParam("1")

    def test_null_true_false_literals(self):
        stmt = parse_query("select null, true, false")
        values = [i.expr.value for i in stmt.items]
        assert values == [None, True, False]


class TestSetOps:
    def test_union_all(self):
        stmt = parse_query("select a from T union all select b from U")
        assert isinstance(stmt, ast.SetOp)
        assert stmt.op == "union" and stmt.all

    def test_chained_set_ops_left_assoc(self):
        stmt = parse_query(
            "select a from T union select a from U except select a from V"
        )
        assert stmt.op == "except"
        assert stmt.left.op == "union"

    def test_intersect(self):
        stmt = parse_query("select a from T intersect select a from U")
        assert stmt.op == "intersect" and not stmt.all


class TestDDL:
    def test_create_table_with_constraints(self):
        stmt = parse_statement(
            "create table T(a int primary key, b varchar(20) not null, "
            "c float default 0.5, unique (b), check (c > 0), "
            "foreign key (b) references U (x))"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.columns[0].primary_key
        assert stmt.columns[1].not_null
        assert stmt.columns[2].default == ast.Literal(0.5)
        assert stmt.uniques == (("b",),)
        assert len(stmt.checks) == 1
        assert stmt.foreign_keys[0].ref_table == "U"

    def test_table_level_primary_key(self):
        stmt = parse_statement("create table T(a int, b int, primary key (a, b))")
        assert stmt.primary_key == ("a", "b")

    def test_create_view(self):
        stmt = parse_statement("create view V as select a from T")
        assert isinstance(stmt, ast.CreateView) and not stmt.authorization

    def test_create_authorization_view(self):
        stmt = parse_statement(
            "create authorization view V as select * from T where x = $user_id"
        )
        assert stmt.authorization

    def test_view_column_list(self):
        stmt = parse_statement("create view V (p, q) as select a, b from T")
        assert stmt.column_names == ("p", "q")

    def test_drop(self):
        assert parse_statement("drop table T").kind == "table"
        assert parse_statement("drop view V").kind == "view"

    def test_grant(self):
        stmt = parse_statement("grant select on V to alice")
        assert (stmt.object_name, stmt.grantee) == ("V", "alice")


class TestDML:
    def test_insert_values(self):
        stmt = parse_statement("insert into T values (1, 'x'), (2, 'y')")
        assert len(stmt.rows) == 2

    def test_insert_with_columns(self):
        stmt = parse_statement("insert into T (a, b) values (1, 2)")
        assert stmt.columns == ("a", "b")

    def test_insert_select(self):
        stmt = parse_statement("insert into T select * from U")
        assert stmt.query is not None

    def test_update(self):
        stmt = parse_statement("update T set a = 1, b = b + 1 where c = 2")
        assert len(stmt.assignments) == 2 and stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("delete from T where a = 1")
        assert stmt.table == "T"


class TestAuthorize:
    def test_authorize_insert(self):
        stmt = parse_statement(
            "authorize insert on Registered where Registered.student_id = $user_id"
        )
        assert stmt.action == "insert" and stmt.columns == ()

    def test_authorize_update_with_columns_and_old(self):
        stmt = parse_statement(
            "authorize update on Students(address) "
            "where old(Students.student_id) = $user_id"
        )
        assert stmt.columns == ("address",)
        assert isinstance(stmt.where.left, ast.OldColumnRef)

    def test_authorize_delete(self):
        stmt = parse_statement("authorize delete on T where T.owner = $user_id")
        assert stmt.action == "delete"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "select",
            "select from T",
            "select a from",
            "select a from T where",
            "create table T()",
            "insert into T values",
            "grant insert on V to x",
            "authorize select on T",
            "select a from T group by",
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ParseError):
            parse_statement(bad)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_statement("select a from T 123")

    def test_multiple_statements(self):
        statements = parse_statements("select 1; select 2;")
        assert len(statements) == 2
