"""Unit tests for sessions, view instantiation, and the grant registry."""

import pytest

from repro.errors import GrantError, ParameterError
from repro.sql import parse_query, render
from repro.authviews.registry import PUBLIC, GrantRegistry
from repro.authviews.session import SessionContext
from repro.authviews.views import AuthorizationView
from repro.catalog.catalog import ViewDef


class TestSessionContext:
    def test_param_values(self):
        session = SessionContext(user_id="11", time="09:00", extra={"role": "ta"})
        values = session.param_values()
        assert values == {"user_id": "11", "time": "09:00", "role": "ta"}

    def test_require_missing(self):
        session = SessionContext(user_id="11")
        with pytest.raises(ParameterError):
            session.require({"user_id", "location"})

    def test_user_string(self):
        assert SessionContext(user_id=42).user == "42"
        assert SessionContext().user is None


class TestInstantiation:
    def make_view(self, sql):
        return AuthorizationView.from_def(
            ViewDef("V", parse_query(sql), authorization=True)
        )

    def test_parameter_signature(self):
        view = self.make_view(
            "select * from Grades where student_id = $user_id and x = $$1"
        )
        assert view.params == frozenset({"user_id"})
        assert view.access_params == frozenset({"1"})
        assert view.is_access_pattern

    def test_instantiate_replaces_context_params(self):
        view = self.make_view("select * from Grades where student_id = $user_id")
        instantiated = view.instantiate(SessionContext(user_id="11"))
        assert "$user_id" not in render(instantiated.query)
        assert "'11'" in render(instantiated.query)

    def test_instantiate_keeps_access_params(self):
        view = self.make_view("select * from Grades where student_id = $$1")
        instantiated = view.instantiate(SessionContext(user_id="x"))
        assert "$$1" in render(instantiated.query)

    def test_bind_access_params(self):
        view = self.make_view("select * from Grades where student_id = $$1")
        instantiated = view.instantiate(SessionContext())
        bound = instantiated.bind_access_params({"1": "42"})
        assert "'42'" in render(bound)

    def test_bind_access_params_missing(self):
        view = self.make_view("select * from Grades where student_id = $$1")
        instantiated = view.instantiate(SessionContext())
        with pytest.raises(ParameterError):
            instantiated.bind_access_params({})

    def test_missing_session_param(self):
        view = self.make_view("select * from T where a = $user_id")
        with pytest.raises(ParameterError):
            view.instantiate(SessionContext())

    def test_params_in_join_condition(self):
        view = self.make_view(
            "select g.grade from Grades g join Registered r "
            "on g.course_id = r.course_id where r.student_id = $user_id"
        )
        assert view.params == frozenset({"user_id"})


class TestGrantRegistry:
    def test_grant_and_check(self):
        registry = GrantRegistry()
        registry.grant("V", "alice")
        assert registry.is_granted("V", "alice")
        assert registry.is_granted("v", "ALICE")  # case-insensitive
        assert not registry.is_granted("V", "bob")

    def test_public_grant(self):
        registry = GrantRegistry()
        registry.grant("V", PUBLIC)
        assert registry.is_granted("V", "anyone")
        assert registry.is_granted("V", None)

    def test_revoke(self):
        registry = GrantRegistry()
        registry.grant("V", "alice")
        registry.revoke("V", "alice")
        assert not registry.is_granted("V", "alice")

    def test_revoke_without_grant(self):
        with pytest.raises(GrantError):
            GrantRegistry().revoke("V", "alice")

    def test_views_for(self):
        registry = GrantRegistry()
        registry.grant("A", "alice")
        registry.grant("B", PUBLIC)
        assert registry.views_for("alice", ["A", "B", "C"]) == ["A", "B"]
        assert registry.views_for("bob", ["A", "B", "C"]) == ["B"]

    def test_delegation_records_grantor(self):
        registry = GrantRegistry()
        registry.grant("V", "alice", grant_option=True)
        registry.grant("V", "bob", grantor="alice")
        assert registry.grantor_of("V", "bob") == "alice"


class TestDelegation:
    """Paper §6: delegated grants feed the same inference machinery."""

    def test_delegation_requires_grant_option(self):
        registry = GrantRegistry()
        registry.grant("V", "alice")  # no grant option
        with pytest.raises(GrantError):
            registry.delegate("V", from_user="alice", to_user="bob")

    def test_delegation_chain(self):
        registry = GrantRegistry()
        registry.grant("V", "alice", grant_option=True)
        registry.delegate("V", "alice", "bob", grant_option=True)
        registry.delegate("V", "bob", "carol")
        assert registry.is_granted("V", "carol")
        assert not registry.has_grant_option("V", "carol")

    def test_revocation_cascades(self):
        registry = GrantRegistry()
        registry.grant("V", "alice", grant_option=True)
        registry.delegate("V", "alice", "bob", grant_option=True)
        registry.delegate("V", "bob", "carol")
        registry.revoke("V", "alice")
        assert not registry.is_granted("V", "alice")
        assert not registry.is_granted("V", "bob")
        assert not registry.is_granted("V", "carol")

    def test_cascade_spares_independent_grants(self):
        registry = GrantRegistry()
        registry.grant("V", "alice", grant_option=True)
        registry.delegate("V", "alice", "bob")
        registry.grant("V", "bob")  # independent DBA grant
        registry.revoke("V", "alice")
        assert registry.is_granted("V", "bob")

    def test_revoke_specific_grantor(self):
        registry = GrantRegistry()
        registry.grant("V", "alice", grant_option=True)
        registry.grant("V", "dana", grant_option=True)
        registry.delegate("V", "alice", "bob")
        registry.delegate("V", "dana", "bob")
        registry.revoke("V", "bob", grantor="alice")
        assert registry.is_granted("V", "bob")  # dana's grant survives

    def test_delegated_view_usable_in_checker(self, ):
        from repro.db import Database

        db = Database()
        db.execute_script(
            """
            create table T(a int primary key, x int);
            insert into T values (1, 5);
            create authorization view VT as select * from T where x > 0;
            """
        )
        db.grants.grant("VT", "alice", grant_option=True)
        db.grants.delegate("VT", "alice", "bob")
        bob = db.connect(user_id="bob", mode="non-truman")
        assert len(bob.query("select a from T where x > 0")) == 1
        db.grants.revoke("VT", "alice")
        from repro.errors import QueryRejectedError

        with pytest.raises(QueryRejectedError):
            bob.query("select a from T where x > 0")
