"""Unit tests for the Volcano memo, expansion, marking, and cost model."""

import pytest

from repro.db import Database
from repro.sql import parse_query
from repro.algebra.translate import Translator
from repro.optimizer import CostModel, Memo, VolcanoOptimizer, best_plan
from repro.optimizer.dag import canonicalize_plan, insert_plan
from repro.optimizer.expand import expand_memo
from repro.optimizer.marking import mark_validity


@pytest.fixture
def db():
    database = Database()
    database.execute_script(
        """
        create table A(id int primary key, x int);
        create table B(id int primary key, a_id int, y int);
        create table C(id int primary key, b_id int, z int);
        insert into A values (1,1),(2,2),(3,3),(4,4);
        insert into B values (1,1,0),(2,2,0);
        insert into C values (1,1,0);
        """
    )
    return database


def plan_for(db, sql):
    return db.plan_query(parse_query(sql), db.connect().session)


class TestMemo:
    def test_hash_consing_shares_identical_subtrees(self, db):
        memo = Memo()
        p1 = plan_for(db, "select * from A where x > 1")
        p2 = plan_for(db, "select * from A where x > 1")
        r1 = insert_plan(memo, p1)
        r2 = insert_plan(memo, p2)
        assert memo.find(r1) == memo.find(r2)

    def test_different_predicates_distinct(self, db):
        memo = Memo()
        r1 = insert_plan(memo, plan_for(db, "select * from A where x > 1"))
        r2 = insert_plan(memo, plan_for(db, "select * from A where x > 2"))
        assert memo.find(r1) != memo.find(r2)

    def test_alpha_renaming_ignores_aliases(self, db):
        memo = Memo()
        r1 = insert_plan(memo, plan_for(db, "select q.x from A q where q.x = 1"))
        r2 = insert_plan(memo, plan_for(db, "select z.x from A z where z.x = 1"))
        assert memo.find(r1) == memo.find(r2)

    def test_predicate_conjunct_order_canonical(self, db):
        memo = Memo()
        r1 = insert_plan(memo, plan_for(db, "select id from A where x = 1 and id = 2"))
        r2 = insert_plan(memo, plan_for(db, "select id from A where id = 2 and x = 1"))
        assert memo.find(r1) == memo.find(r2)

    def test_merge_unifies_operations(self):
        memo = Memo()
        a = memo.add_operation("scan", ("t", "t#0"), ())
        b = memo.add_operation("scan", ("u", "u#0"), ())
        merged = memo.merge(a, b)
        assert len(memo.node(merged).operations) == 2
        assert memo.merges == 1


class TestFigure1:
    """The paper's Figure 1: DAG for A ⋈ B ⋈ C."""

    def test_three_association_orders(self, db):
        plan = plan_for(
            db,
            "select * from A, B, C where A.id = B.a_id and B.id = C.b_id",
        )
        opt = VolcanoOptimizer(lambda t: db.table(t).row_count)
        memo, root, stats = opt.expand_only(plan, joins_only=True)
        # the root join class must contain (AB)C, A(BC) and (AC)B shapes
        # (with commutative variants): at least 6 join operations
        node = memo.node(root)
        for _ in range(4):
            if any(op.kind == "join" for op in node.operations):
                break
            wrappers = [
                op for op in node.operations if op.kind in ("project", "select")
            ]
            node = memo.node(wrappers[0].children[0])
        join_ops = [op for op in node.operations if op.kind == "join"]
        assert len(join_ops) >= 6
        assert stats.plans >= 3

    def test_expansion_terminates(self, db):
        plan = plan_for(
            db,
            "select * from A, B, C where A.id = B.a_id and B.id = C.b_id",
        )
        memo = Memo()
        insert_plan(memo, plan)
        passes = expand_memo(memo)
        assert passes < 20


class TestMarking:
    def make(self, db, view_sql, query_sql):
        view_plan = Translator(db.catalog).translate(parse_query(view_sql))
        query_plan = plan_for(db, query_sql)
        opt = VolcanoOptimizer(lambda t: db.table(t).row_count)
        return opt.check_validity(query_plan, [view_plan])

    def test_identity_match(self, db):
        assert self.make(db, "select * from A where x > 1",
                         "select * from A where x > 1").valid

    def test_base_scan_never_valid(self, db):
        result = self.make(db, "select * from A where x > 1", "select * from A")
        assert not result.valid

    def test_selection_subsumption(self, db):
        assert self.make(db, "select * from A where x > 1",
                         "select * from A where x > 1 and id = 2").valid

    def test_projection_subsumption(self, db):
        assert self.make(db, "select * from A where x > 1",
                         "select id from A where x > 1").valid

    def test_join_of_views(self, db):
        view_a = Translator(db.catalog).translate(parse_query("select * from A"))
        view_b = Translator(db.catalog).translate(parse_query("select * from B"))
        query = plan_for(db, "select A.id from A, B where A.id = B.a_id")
        opt = VolcanoOptimizer(lambda t: db.table(t).row_count)
        assert opt.check_validity(query, [view_a, view_b]).valid

    def test_disjoint_view_useless(self, db):
        assert not self.make(db, "select * from C", "select * from A").valid

    def test_marking_counts(self, db):
        result = self.make(db, "select * from A where x > 1",
                           "select * from A where x > 1")
        assert result.valid_eq_nodes >= 1
        assert result.marking_seconds >= 0


class TestCostModel:
    def test_best_plan_prefers_small_intermediate(self, db):
        # joining B⋈C (2x1) first beats A⋈B (4x2) first
        plan = plan_for(
            db, "select * from A, B, C where A.id = B.a_id and B.id = C.b_id"
        )
        opt = VolcanoOptimizer(lambda t: db.table(t).row_count)
        result = opt.optimize(plan)
        assert result.plan.cost < float("inf")

        def joins(choice):
            found = []
            if choice.op is not None and choice.op.kind == "join":
                found.append(choice)
            for child in choice.children:
                found.extend(joins(child))
            return found

        top_join = joins(result.plan)[0]
        # the deepest join should involve the two smallest tables (B, C)
        deepest = joins(result.plan)[-1]
        scan_names = set()
        def scans(c):
            if c.op is not None and c.op.kind == "scan":
                scan_names.add(c.op.params[0])
            for ch in c.children:
                scans(ch)
        scans(deepest)
        assert scan_names == {"b", "c"}

    def test_rows_estimated(self, db):
        memo = Memo()
        root = insert_plan(memo, plan_for(db, "select * from A"))
        model = CostModel(lambda t: db.table(t).row_count)
        assert model.estimate_rows(memo, root) == 4.0


class TestCanonicalization:
    def test_canonical_bindings(self, db):
        plan = plan_for(db, "select t1.x from A t1, A t2 where t1.id = t2.id")
        canonical = canonicalize_plan(plan)
        from repro.algebra import ops as alg_ops

        bindings = sorted(
            leaf.binding for leaf in alg_ops.base_relations(canonical)
        )
        assert bindings == ["a#0", "a#1"]
