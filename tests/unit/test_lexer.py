"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import LexError
from repro.sql.lexer import tokenize
from repro.sql.tokens import TokenType


def kinds(source):
    return [(t.type, t.value) for t in tokenize(source)[:-1]]


class TestBasicTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT sElEcT select") == [
            (TokenType.KEYWORD, "select")
        ] * 3

    def test_identifiers_preserve_case(self):
        assert kinds("Grades") == [(TokenType.IDENT, "Grades")]

    def test_function_names_are_identifiers(self):
        # avg/count are not reserved words
        assert kinds("avg")[0][0] is TokenType.IDENT
        assert kinds("count")[0][0] is TokenType.IDENT

    def test_integer_literal(self):
        assert kinds("42") == [(TokenType.NUMBER, "42")]

    def test_decimal_literal(self):
        assert kinds("3.25") == [(TokenType.NUMBER, "3.25")]

    def test_exponent_literal(self):
        assert kinds("1e3 2.5E-2") == [
            (TokenType.NUMBER, "1e3"),
            (TokenType.NUMBER, "2.5E-2"),
        ]

    def test_leading_dot_number(self):
        assert kinds(".5") == [(TokenType.NUMBER, ".5")]

    def test_string_literal(self):
        assert kinds("'CS101'") == [(TokenType.STRING, "CS101")]

    def test_string_with_escaped_quote(self):
        assert kinds("'O''Brien'") == [(TokenType.STRING, "O'Brien")]

    def test_empty_string(self):
        assert kinds("''") == [(TokenType.STRING, "")]

    def test_quoted_identifier(self):
        assert kinds('"weird name"') == [(TokenType.IDENT, "weird name")]


class TestParameters:
    def test_context_parameter(self):
        assert kinds("$user_id") == [(TokenType.PARAM, "user_id")]

    def test_access_pattern_parameter(self):
        assert kinds("$$1") == [(TokenType.AP_PARAM, "1")]

    def test_named_access_pattern_parameter(self):
        assert kinds("$$acct") == [(TokenType.AP_PARAM, "acct")]

    def test_bare_dollar_is_error(self):
        with pytest.raises(LexError):
            tokenize("$ ")


class TestOperators:
    def test_multichar_operators_greedy(self):
        assert [v for _, v in kinds("<= >= <> != ||")] == [
            "<=", ">=", "<>", "!=", "||",
        ]

    def test_punctuation(self):
        values = [v for _, v in kinds("( ) , . ; * / % + -")]
        assert values == ["(", ")", ",", ".", ";", "*", "/", "%", "+", "-"]


class TestCommentsAndWhitespace:
    def test_line_comment(self):
        assert kinds("select -- hidden\n1") == [
            (TokenType.KEYWORD, "select"),
            (TokenType.NUMBER, "1"),
        ]

    def test_block_comment(self):
        assert kinds("select /* multi\nline */ 1") == [
            (TokenType.KEYWORD, "select"),
            (TokenType.NUMBER, "1"),
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("select /* oops")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize("select 'oops")

    def test_position_tracking(self):
        tokens = tokenize("select\n  x")
        x = tokens[1]
        assert (x.line, x.column) == (2, 3)


class TestErrorCases:
    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("select @")

    def test_eof_token_always_last(self):
        tokens = tokenize("select 1")
        assert tokens[-1].type is TokenType.EOF
        assert tokenize("")[-1].type is TokenType.EOF
