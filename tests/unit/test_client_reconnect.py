"""The blocking client's bounded reconnect-and-retry machinery.

No sockets here: ``_retry_idempotent`` is driven with stubbed
``_reconnect``/``_sleep`` hooks, so the tests pin the *schedule* (the
seeded backoff delays actually slept), the typed give-up error, and the
writes-never-retry rule without real network flakiness.
"""

import random

import pytest

from repro.cluster.health import backoff_delays
from repro.errors import (
    ConnectionDropped,
    ConnectionLostError,
    ReconnectExhausted,
)
from repro.net.client import ReproClient, _idempotent_read


def make_client(attempts=3, seed=7, reconnect=True) -> ReproClient:
    """A ReproClient shell with the retry knobs set and no socket."""
    client = ReproClient.__new__(ReproClient)
    client.reconnect = reconnect
    client.reconnect_attempts = attempts
    client.reconnect_backoff = 0.05
    client.reconnect_backoff_cap = 1.0
    client._backoff_rng = random.Random(seed)
    client.slept: list[float] = []
    client._sleep = client.slept.append
    client.redials = 0

    def fake_reconnect():
        client.redials += 1

    client._reconnect = fake_reconnect
    return client


class FlakyRead:
    """Fails with ConnectionLostError ``failures`` times, then succeeds."""

    def __init__(self, failures):
        self.failures = failures
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise ConnectionLostError(f"drop #{self.calls}")
        return "result"


class TestRetrySchedule:
    def test_no_retry_when_reconnect_disabled(self):
        client = make_client(reconnect=False)
        with pytest.raises(ConnectionLostError):
            client._retry_idempotent(FlakyRead(failures=1))
        assert client.slept == [] and client.redials == 0

    def test_retry_succeeds_after_redial(self):
        client = make_client(attempts=3)
        fn = FlakyRead(failures=1)
        assert client._retry_idempotent(fn) == "result"
        assert fn.calls == 2
        assert client.redials == 1
        assert len(client.slept) == 1

    def test_sleeps_follow_seeded_backoff_schedule(self):
        client = make_client(attempts=4, seed=99)
        client._retry_idempotent(FlakyRead(failures=4))
        expected = backoff_delays(
            4, base=0.05, cap=1.0, rng=random.Random(99)
        )
        assert client.slept == expected
        # exponential-with-jitter invariants, not just reproducibility
        for i, delay in enumerate(client.slept):
            ceiling = min(1.0, 0.05 * (2**i))
            assert ceiling / 2 <= delay <= ceiling

    def test_exhausted_budget_raises_typed_error(self):
        client = make_client(attempts=3)
        fn = FlakyRead(failures=100)
        with pytest.raises(ReconnectExhausted) as info:
            client._retry_idempotent(fn)
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, ConnectionLostError)
        assert fn.calls == 4  # the first try + one per reconnect attempt
        assert len(client.slept) == 3

    def test_give_up_error_is_a_connection_lost_error(self):
        """Callers of the single-reconnect era catch the same class."""
        exc = ReconnectExhausted("gone", attempts=2, last_error=None)
        assert isinstance(exc, ConnectionLostError)
        assert isinstance(exc, ConnectionDropped)

    def test_failed_redial_consumes_an_attempt(self):
        client = make_client(attempts=2)

        def bad_reconnect():
            client.redials += 1
            raise ConnectionLostError("refused")

        client._reconnect = bad_reconnect
        with pytest.raises(ReconnectExhausted):
            client._retry_idempotent(FlakyRead(failures=1))
        assert client.redials == 2


class TestIdempotenceGate:
    def test_only_selects_are_idempotent(self):
        assert _idempotent_read("select * from T")
        assert _idempotent_read("  SELECT 1")
        assert not _idempotent_read("insert into T values (1)")
        assert not _idempotent_read("update T set a = 1")
        assert not _idempotent_read("delete from T")
        assert not _idempotent_read("create table T (a int primary key)")

    def test_write_never_retries(self):
        """A lost connection under a write surfaces immediately — the
        first attempt may already have been applied server-side."""
        client = make_client(attempts=5)

        def lost(*args, **kwargs):
            raise ConnectionLostError("mid-write drop")

        client._ids = iter(range(1, 100))
        client.start_query = lost
        with pytest.raises(ConnectionLostError) as info:
            client.query("insert into T values (1)")
        assert not isinstance(info.value, ReconnectExhausted)
        assert client.redials == 0 and client.slept == []
