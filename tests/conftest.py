"""Shared fixtures: small hand-built databases and the paper workloads.

Also installs a whole-run watchdog: the chaos/concurrency suites assert
"no request ever hangs", and a regression there would otherwise hang
the test run itself.  When the ``pytest-timeout`` plugin is installed
(CI passes ``--timeout`` on the command line) it owns per-test limits;
as a fallback for environments without the plugin, a session-scoped
timer dumps every thread's stack and aborts the run hard if it exceeds
``REPRO_TEST_WATCHDOG_S`` (default 1200 s, 0 disables).
"""

from __future__ import annotations

import faulthandler
import os
import sys
import threading

import pytest

from repro.db import Database
from repro.workloads.bank import BankConfig, build_bank
from repro.workloads.university import UniversityConfig, build_university

WATCHDOG_DEFAULT_S = 1200.0


def _watchdog_fire(limit: float) -> None:
    sys.stderr.write(
        f"\n*** test-run watchdog: exceeded {limit:.0f}s — a test is "
        "hanging; dumping thread stacks and aborting ***\n"
    )
    faulthandler.dump_traceback(file=sys.stderr)
    sys.stderr.flush()
    os._exit(2)


@pytest.fixture(scope="session", autouse=True)
def _test_run_watchdog():
    try:
        limit = float(os.environ.get("REPRO_TEST_WATCHDOG_S", WATCHDOG_DEFAULT_S))
    except ValueError:
        limit = WATCHDOG_DEFAULT_S
    if limit <= 0:
        yield
        return
    timer = threading.Timer(limit, _watchdog_fire, args=(limit,))
    timer.daemon = True
    timer.start()
    try:
        yield
    finally:
        timer.cancel()

#: the running-example schema of paper Section 2 (plus FeesPaid, Ex. 5.4)
UNIVERSITY_SCHEMA = """
create table Students(student_id varchar(10) primary key,
    name varchar(40) not null, type varchar(10));
create table Courses(course_id varchar(10) primary key, name varchar(40));
create table Registered(student_id varchar(10), course_id varchar(10),
    primary key (student_id, course_id),
    foreign key (student_id) references Students,
    foreign key (course_id) references Courses);
create table Grades(student_id varchar(10), course_id varchar(10), grade float,
    primary key (student_id, course_id),
    foreign key (student_id) references Students,
    foreign key (course_id) references Courses);
create table FeesPaid(student_id varchar(10) primary key,
    foreign key (student_id) references Students);
"""

UNIVERSITY_DATA = """
insert into Students values
    ('11','Alice','FullTime'), ('12','Bob','PartTime'),
    ('13','Carol','FullTime'), ('14','Dave','FullTime');
insert into Courses values
    ('CS101','Intro'), ('CS102','Data Structures'), ('CS103','Algorithms');
insert into Registered values
    ('11','CS101'), ('12','CS101'), ('13','CS102'),
    ('11','CS102'), ('14','CS103');
insert into Grades values
    ('11','CS101',3.5), ('12','CS101',2.5),
    ('11','CS102',4.0), ('13','CS102',3.0);
insert into FeesPaid values ('11'), ('13');
"""


@pytest.fixture
def tiny_db() -> Database:
    """The hand-sized Section 2 schema with a few rows, no views."""
    db = Database()
    db.execute_script(UNIVERSITY_SCHEMA)
    db.execute_script(UNIVERSITY_DATA)
    return db


@pytest.fixture
def university_db() -> Database:
    """Generated university workload (100 students, views deployed)."""
    return build_university(UniversityConfig(students=60, courses=8, seed=3))


@pytest.fixture
def bank_db() -> Database:
    return build_bank(BankConfig(customers=30, seed=5))
