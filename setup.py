"""Setup shim so `pip install -e .` works offline (no wheel package).

The environment has no network access and no `wheel` distribution, so
PEP 517 editable installs fail with `invalid command 'bdist_wheel'`.
With this shim, `pip install -e . --no-use-pep517 --no-build-isolation`
(and plain `pip install -e .` on older pips) uses the legacy
`setup.py develop` path, which needs neither.
"""

from setuptools import setup

setup()
