"""E8 — cost of conditional-validity probes (§5.4, rule C3a condition 3).

Conditional validity requires executing probe queries against the
current database state (and recursively validating them).  This
experiment measures, as the database grows:

* the end-to-end check latency of a C3-accepted query vs a U2-accepted
  one (the probe premium);
* the number of probes executed per check.

Shape: the probe premium tracks the cost of the probe's (indexed or
scanned) evaluation; probe counts stay constant per query shape.
"""

import pytest

from repro.sql import parse_query
from repro.nontruman.checker import ValidityChecker
from repro.workloads.university import UniversityConfig, build_university
from repro.bench import Experiment, time_callable

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E8",
        title="conditional-validity probe overhead vs database size",
        claim="C3 checks pay a per-probe premium over U2 checks; probe count is constant",
    )
)

SIZES = [50, 200, 800]


@pytest.mark.parametrize("students", SIZES)
def test_probe_overhead(benchmark, students):
    db = build_university(
        UniversityConfig(students=students, courses=10, seed=6)
    )
    session = db.connect(user_id="11").session
    my_course = db.execute(
        "select course_id from Registered where student_id = '11' "
        "order by course_id limit 1"
    ).scalar()

    u2_query = parse_query("select grade from Grades where student_id = '11'")
    c3_query = parse_query(f"select * from Grades where course_id = '{my_course}'")
    checker = ValidityChecker(db)

    u2_s, _ = time_callable(lambda: checker.check(u2_query, session), repeat=5)
    c3_s, _ = time_callable(lambda: checker.check(c3_query, session), repeat=5)
    decision = checker.check(c3_query, session)
    assert decision.conditional

    benchmark(lambda: checker.check(c3_query, session))

    EXPERIMENT.add(
        f"{students} students",
        u2_check_ms=u2_s * 1000,
        c3_check_ms=c3_s * 1000,
        probe_premium=f"{c3_s / u2_s:.1f}x",
        probes=decision.probes_executed,
    )
    assert decision.probes_executed >= 1
    assert c3_s > u2_s  # the probe is real work
