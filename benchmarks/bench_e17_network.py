"""E17 — network front end under open-loop load: graceful shedding.

Closed-loop load tests slow their own offered load down when the server
slows down, so they cannot show what happens *past* saturation.  E17
drives the wire protocol with an **open-loop** (arrival-rate-driven)
generator instead: arrivals fire on a fixed schedule whether or not
earlier requests have returned.  The sweep measures the service's
baseline capacity, then offers multiples of it (0.5x → 4x) and gates
on the resilience contract end to end over TCP:

* every arrival is accounted to exactly one terminal outcome —
  **0 hangs** at every offered rate, including far past saturation;
* excess arrivals are shed by admission control as typed
  ``ServiceOverloaded`` errors (**shedding, not collapse**): past
  saturation the shed count must be substantial while admitted
  requests keep flowing;
* the p99 latency of *admitted* requests stays bounded by the request
  deadline mechanics rather than growing with offered load;
* the policy holds under pressure: queries the checker must reject
  never come back with rows — **0 unauthorized answers** — and valid
  queries are never silently truncated (**0 partial results**; row
  counts are exact).
"""

import time

from repro.db import Database
from repro.net import LoadQuery, NetworkService, ReproClient, run_open_loop
from repro.service import EnforcementGateway
from repro.bench import Experiment

from benchmarks.conftest import register_experiment
from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA

EXPERIMENT = register_experiment(
    Experiment(
        id="E17",
        title="network service under open-loop load (arrival-rate sweep)",
        claim=(
            "past saturation the gateway sheds arrivals with typed "
            "overload errors while admitted requests keep bounded p99 — "
            "0 hangs, 0 partial results, 0 unauthorized answers"
        ),
    )
)

WORK_ROWS = 4000
DEADLINE_S = 2.0
DURATION_S = 1.5
MULTIPLES = (0.5, 1.0, 2.0, 4.0)

#: the workload mix: mostly the heavy scan (sets the service rate),
#: plus the policy pair — a valid per-student query and a query the
#: Non-Truman checker must reject no matter how overloaded it is
HEAVY_SQL = f"select count(*) from Work where v < {WORK_ROWS // 2}"
MIX = [
    LoadQuery(HEAVY_SQL, mode="open"),
    LoadQuery(HEAVY_SQL, mode="open"),
    LoadQuery("select grade from Grades where student_id = '11'"),
    LoadQuery("select * from Grades", expect="rejected"),
]


def build_db() -> Database:
    db = Database()
    db.execute_script(UNIVERSITY_SCHEMA)
    db.execute_script(UNIVERSITY_DATA)
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant_public("MyGrades")
    db.execute("create table Work(v int primary key)")
    table = db.table("Work")
    for i in range(WORK_ROWS):
        table.insert((i,))
    return db


def measure_capacity(host: str, port: int, workers: int) -> tuple[float, float]:
    """Closed-loop baseline: mean service time of the heavy query and
    the implied capacity (requests/s) of the worker pool."""
    with ReproClient(host, port, mode="open") as client:
        client.query(HEAVY_SQL)  # warm caches / code paths
        start = time.perf_counter()
        n = 15
        for _ in range(n):
            client.query(HEAVY_SQL)
        mean_s = (time.perf_counter() - start) / n
    return mean_s, workers / mean_s


def test_open_loop_sweep_gate():
    workers = 2
    db = build_db()
    gateway = EnforcementGateway(
        db, workers=workers, queue_size=16, default_deadline=30.0,
        audit_capacity=65536, name="e17",
    )
    network = NetworkService(gateway)
    host, port = network.start()
    try:
        mean_s, capacity = measure_capacity(host, port, workers)
        EXPERIMENT.add(
            "closed-loop baseline (heavy scan)",
            offered=f"1 in flight",
            ok="-",
            shed="-",
            violations="-",
            hangs="-",
            achieved_rps=f"{1.0 / mean_s:.0f}",
            p50_ms=f"{mean_s * 1000:.2f}",
            p99_ms="-",
        )

        saturated = []
        for multiple in MULTIPLES:
            rate = max(10.0, capacity * multiple)
            report = run_open_loop(
                host, port,
                rate=rate, duration_s=DURATION_S, queries=MIX,
                user="11", mode="non-truman",
                connections=8, deadline=DEADLINE_S, seed=17,
            )
            EXPERIMENT.add(
                f"open loop {multiple:.1f}x capacity",
                offered=f"{rate:.0f}/s",
                ok=report.ok,
                shed=report.shed,
                violations=report.violations,
                hangs=report.unresolved,
                achieved_rps=f"{report.achieved_rps:.0f}",
                p50_ms=f"{report.p50_ms:.1f}",
                p99_ms=f"{report.p99_ms:.1f}",
            )

            # -- gates, at every offered rate --------------------------
            # 0 hangs: every arrival reached exactly one terminal state
            assert report.unresolved == 0, f"hangs at {multiple}x"
            assert report.terminal == report.arrivals
            # 0 unauthorized answers, 0 rows for must-reject queries
            assert report.violations == 0, f"policy violated at {multiple}x"
            # bounded p99 for admitted requests: deadline mechanics cap
            # time-in-system; latency must not grow with offered load
            assert report.p99_ms <= DEADLINE_S * 1000 * 2, (
                f"unbounded admitted latency at {multiple}x: "
                f"p99={report.p99_ms:.0f}ms"
            )
            # progress is never starved: some valid work completes
            assert report.ok > 0
            if multiple > 1.0:
                saturated.append(report)

        # past saturation the load MUST be shed (typed overload), in
        # growing proportion — backpressure, not collapse
        assert saturated, "sweep never exceeded capacity"
        total_shed = sum(r.shed for r in saturated)
        assert total_shed > 0, (
            "offered load past saturation was never shed — admission "
            "control is not exerting backpressure over the wire"
        )
        top = saturated[-1]
        shed_like = top.shed + top.timeouts + top.cancelled
        assert shed_like >= top.arrivals * 0.2, (
            f"at {MULTIPLES[-1]}x capacity only "
            f"{shed_like}/{top.arrivals} arrivals were shed or expired"
        )
    finally:
        network.stop()
        gateway.shutdown(drain=False)


def test_partial_result_guard_under_load():
    """Valid answers under concurrent load are complete: every OK
    response to the per-student query carries exactly its 2 rows (the
    streaming path must never silently truncate under pressure)."""
    db = build_db()
    gateway = EnforcementGateway(db, workers=2, queue_size=16, name="e17b")
    network = NetworkService(gateway)
    host, port = network.start()
    try:
        import asyncio

        from repro.errors import ServiceOverloaded
        from repro.net import AsyncReproClient

        async def scenario():
            client = await AsyncReproClient.connect(host, port, user="11")
            try:
                futures = [
                    (await client.submit(
                        "select grade from Grades where student_id = '11'"
                    ))[1]
                    for _ in range(200)
                ]
                return await asyncio.gather(*futures, return_exceptions=True)
            finally:
                await client.close()

        outcomes = asyncio.run(scenario())
        complete = short = shed = 0
        for outcome in outcomes:
            if isinstance(outcome, ServiceOverloaded):
                shed += 1
            elif isinstance(outcome, Exception):
                raise outcome
            elif len(outcome.rows) == 2:
                complete += 1
            else:
                short += 1
        EXPERIMENT.add(
            "200 pipelined valid queries (partial-result guard)",
            offered="burst",
            ok=complete,
            shed=shed,
            violations=short,
            hangs=0,
            achieved_rps="-",
            p50_ms="-",
            p99_ms="-",
        )
        assert short == 0, f"{short} truncated results under load"
        assert complete > 0
    finally:
        network.stop()
        gateway.shutdown(drain=False)
