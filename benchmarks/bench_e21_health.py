"""E21 — self-healing replication (repro.cluster.health, DESIGN.md §12).

Healing a replica must be cheap in proportion to what was actually
missed, and *verifying* a replica must be much cheaper than rebuilding
it — otherwise operators disable the checks and divergence goes
unnoticed.  E21 pins both economics:

Gates:

* catch-up streaming cost is bounded and linear in the WAL-tail length:
  quadrupling the tail may grow catch-up time by at most ~8x (2x slack
  over proportional), and every record of the tail is streamed exactly
  once;
* a clean anti-entropy digest pass costs **under 10%** of a full
  replica rebuild (force bootstrap) on the same data — verification is
  affordable at a cadence rebuilds never could be (CI runners get a
  30% ceiling to absorb shared-host noise);
* a seeded quarantine → catch-up → rejoin cycle completes with zero
  unresolved divergences and the replica routable again.
"""

import os

from repro.bench import Experiment, time_callable
from repro.cluster import ClusterCoordinator
from repro.cluster.health import HEALTHY, content_digests

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E21",
        title="self-healing: catch-up streaming and anti-entropy economics",
        claim="§12 — catch-up cost is linear in the missed WAL tail; digest verification costs <10% of a rebuild",
    )
)

#: local gate vs what shared CI runners can honestly promise
DIGEST_CEILING = 0.30 if os.environ.get("REPRO_BENCH_CI") else 0.10
#: 2x slack over exactly-proportional for the 4x tail-length step
LINEARITY_SLACK = 2.0

BASE_ROWS = 400


def build_cluster(**kwargs):
    kwargs.setdefault("shards", 2)
    kwargs.setdefault("replicas", 1)
    kwargs.setdefault("ship_batch", 1)
    kwargs.setdefault("catchup_chunk", 32)
    kwargs.setdefault("catchup_backoff", 0.0001)
    kwargs.setdefault("catchup_backoff_cap", 0.001)
    db = ClusterCoordinator(**kwargs)
    db.execute(
        "create table Grades (student_id varchar(10), course varchar(10), "
        "grade float)"
    )
    grades = db.table("Grades")
    for i in range(BASE_ROWS):
        grades.insert(
            (f"s{i % 50}", f"CS{i % 8}", round(1.0 + (i % 7) * 0.5, 1))
        )
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant("MyGrades", "s1")
    db.sync_replicas()
    return db


def catch_up_after_tail(db, tail):
    """Partition the replica, write ``tail`` records, heal; return the
    catch-up report (duration measured inside the coordinator)."""
    shipper = db.durability.shippers[0]
    shipper.paused = True
    for i in range(tail):
        db.execute(f"insert into Grades values ('t{i}', 'CS0', 2.0)")
    shipper.paused = False
    (report,) = db.catch_up("r0")
    return report


def test_catch_up_linear_in_tail_length():
    """The acceptance gate: catch-up streams exactly the missed tail,
    and its cost grows (at worst) proportionally with 2x slack — no
    accidental full rebuilds hiding in the stream path."""
    tails = (100, 200, 400)
    timings = {}
    for tail in tails:
        db = build_cluster()
        # warm one cycle so allocator/cache effects don't skew the 100s
        catch_up_after_tail(db, 16)
        samples = []
        for _ in range(3):
            report = catch_up_after_tail(db, tail)
            assert report["records_streamed"] == tail
            assert report["bootstrapped"] is False  # streamed, not rebuilt
            assert report["divergences"] == 0
            samples.append(report["duration_s"])
        timings[tail] = min(samples)
        EXPERIMENT.add(
            f"catch-up, {tail}-record tail",
            tail=tail,
            chunks=report["chunks"],
            records_streamed=report["records_streamed"],
            catchup_ms=round(timings[tail] * 1000, 2),
            ms_per_record=round(timings[tail] * 1000 / tail, 4),
        )
    growth = timings[400] / timings[100]
    EXPERIMENT.add(
        "linearity: 4x tail growth",
        growth_4x=round(growth, 2),
        ceiling=4 * LINEARITY_SLACK,
    )
    assert growth <= 4 * LINEARITY_SLACK, (
        f"catch-up time grew {growth:.1f}x for a 4x longer tail — "
        f"super-linear (ceiling {4 * LINEARITY_SLACK:.0f}x)"
    )


def test_digest_pass_under_rebuild_fraction():
    """Verification must be affordable: a clean anti-entropy digest
    sweep costs under {:.0%} of force-rebuilding the replica from a
    snapshot.""".format(DIGEST_CEILING)
    db = build_cluster()

    def digest_pass():
        outcomes = db.run_anti_entropy()
        assert outcomes == {"r0": "clean"}

    def full_rebuild():
        (report,) = db.catch_up("r0", force_bootstrap=True)
        assert report["bootstrapped"] is True

    digest_s, _ = time_callable(digest_pass, repeat=5)
    rebuild_s, _ = time_callable(full_rebuild, repeat=5)
    ratio = digest_s / rebuild_s
    EXPERIMENT.add(
        f"anti-entropy vs rebuild, {BASE_ROWS} rows",
        rows=BASE_ROWS,
        digest_ms=round(digest_s * 1000, 2),
        rebuild_ms=round(rebuild_s * 1000, 2),
        digest_over_rebuild=round(ratio, 3),
        ceiling=DIGEST_CEILING,
    )
    assert ratio < DIGEST_CEILING, (
        f"digest pass is {ratio:.0%} of a rebuild — over the "
        f"{DIGEST_CEILING:.0%} gate ({digest_s * 1000:.1f}ms vs "
        f"{rebuild_s * 1000:.1f}ms)"
    )


def test_quarantine_rejoin_cycle_converges():
    """A full failure-and-heal cycle ends with the replica routable,
    zero lag, zero unresolved divergences, and digests identical —
    the invariant every chaos run asserts, measured once cleanly."""
    db = build_cluster(catchup_seed=21)
    shipper = db.durability.shippers[0]
    db.health.quarantine("r0", "bench-injected partition")
    for i in range(64):
        db.execute(f"insert into Grades values ('q{i}', 'CS1', 3.0)")
    assert db.route_read() is None
    report = db.catch_up("r0")[0]
    health = db.cluster_health()
    replica = health["replicas"][0]
    EXPERIMENT.add(
        "quarantine -> catch-up -> rejoin",
        missed_records=64,
        records_streamed=report["records_streamed"],
        catchup_ms=round(report["duration_s"] * 1000, 2),
        unresolved_divergences=health["replica_divergence"],
        state=replica["state"],
        lag=replica["lag"],
    )
    assert replica["state"] == HEALTHY
    assert replica["lag"] == 0
    assert health["replica_divergence"] == 0
    assert db.route_read() is db.replicas[0]
    assert content_digests(db) == content_digests(db.replicas[0].database)
