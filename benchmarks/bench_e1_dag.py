"""E1 — Figure 1: AND-OR DAG shape for chain joins.

Paper: Figure 1 shows the DAG for A ⋈ B ⋈ C and notes that,
disregarding commutativity, there are **three** ways of evaluating the
query, and that "for the case of join ordering, the AND-OR DAG is at
worst exponential in the number of relations, but represents a much
larger number of query plans".

This experiment expands chain joins of n = 2..6 relations and records
equivalence-node count, operation-node count, and the number of
represented plans — asserting the Figure 1 quantities at n = 3 and the
DAG-much-smaller-than-plan-space claim as n grows.
"""

import pytest

from repro.db import Database
from repro.sql import parse_query
from repro.optimizer import VolcanoOptimizer
from repro.bench import Experiment

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E1",
        title="AND-OR DAG expansion for chain joins (Figure 1)",
        claim="3 association orders for A⋈B⋈C; DAG grows far slower than plan space",
    )
)

MAX_N = 6


@pytest.fixture(scope="module")
def db():
    database = Database()
    for i in range(MAX_N):
        name = chr(ord("A") + i)
        database.execute(
            f"create table {name}(id int primary key, next_id int)"
        )
        for row in range(4):
            database.execute(f"insert into {name} values ({row}, {row})")
    return database


def chain_query(n: int) -> str:
    tables = [chr(ord("A") + i) for i in range(n)]
    joins = " and ".join(
        f"{tables[i]}.next_id = {tables[i + 1]}.id" for i in range(n - 1)
    )
    where = f" where {joins}" if joins else ""
    return f"select * from {', '.join(tables)}{where}"


@pytest.mark.parametrize("n", range(2, MAX_N + 1))
def test_dag_expansion(benchmark, db, n):
    plan = db.plan_query(parse_query(chain_query(n)), db.connect().session)
    optimizer = VolcanoOptimizer(lambda t: db.table(t).row_count)

    def expand():
        # joins-only: the Figure 1 experiment concerns join reordering.
        return optimizer.expand_only(plan, joins_only=True)

    memo, root, stats = benchmark(expand)
    EXPERIMENT.add(
        f"n={n}",
        eq_nodes=stats.eq_nodes,
        op_nodes=stats.op_nodes,
        plans=stats.plans,
        merges=stats.merges,
        passes=stats.expansion_passes,
    )

    if n == 3:
        # Figure 1(c): three association orders, disregarding
        # commutativity — i.e. at least 6 join operations (3 x 2
        # commutative variants) in the root join class.
        # descend through project/select wrappers to the join class
        node = memo.node(root)
        top_join_class = None
        for _ in range(4):
            if any(op.kind == "join" for op in node.operations):
                top_join_class = node
                break
            wrappers = [
                op for op in node.operations if op.kind in ("project", "select")
            ]
            if not wrappers:
                break
            node = memo.node(wrappers[0].children[0])
        assert top_join_class is not None
        join_ops = [o for o in top_join_class.operations if o.kind == "join"]
        assert len(join_ops) >= 6
    if n >= 4:
        # the claim: plans >> operation nodes (compact representation)
        assert stats.plans > stats.op_nodes
