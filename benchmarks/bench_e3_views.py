"""E3 — scaling with the number of authorization views + pruning (§5.6).

Paper claims: "The complex inference rules do require equivalence rules
to be applied to the views, which can be somewhat expensive in the
presence of a large number of authorization views" and "Given a query,
we can eliminate authorization views that cannot possibly be of use in
validating the query".

We deploy N authorization views (a handful relevant to the test query,
the rest over disjoint relations), and measure validity-check latency
with and without relevance pruning as N grows.  Shape: without pruning,
latency grows with N; with pruning it stays near-flat.
"""

import pytest

from repro.db import Database
from repro.sql import parse_query
from repro.nontruman.checker import ValidityChecker
from repro.bench import Experiment, time_callable

from benchmarks.conftest import register_experiment
from tests.conftest import UNIVERSITY_DATA, UNIVERSITY_SCHEMA

EXPERIMENT = register_experiment(
    Experiment(
        id="E3",
        title="validity-check latency vs number of authorization views",
        claim="irrelevant-view pruning keeps latency flat as the view count grows",
    )
)

VIEW_COUNTS = [10, 50, 100, 200, 400]
QUERY = "select grade from Grades where student_id = '11'"


def build_db(total_views: int) -> Database:
    db = Database()
    db.execute_script(UNIVERSITY_SCHEMA)
    db.execute_script(UNIVERSITY_DATA)
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant_public("MyGrades")
    # Irrelevant views over dedicated tables.
    for index in range(total_views - 1):
        table = f"Aux{index}"
        db.execute(f"create table {table}(id int primary key, payload varchar(10))")
        db.execute(
            f"create authorization view AuxView{index} as "
            f"select * from {table} where id = 1"
        )
        db.grant_public(f"AuxView{index}")
    return db


@pytest.mark.parametrize("total", VIEW_COUNTS)
def test_view_scaling(benchmark, total):
    db = build_db(total)
    session = db.connect(user_id="11").session
    query = parse_query(QUERY)

    pruned_checker = ValidityChecker(db, use_pruning=True)
    unpruned_checker = ValidityChecker(db, use_pruning=False)

    pruned_s, _ = time_callable(lambda: pruned_checker.check(query, session), repeat=5)
    unpruned_s, _ = time_callable(
        lambda: unpruned_checker.check(query, session), repeat=5
    )
    decision = pruned_checker.check(query, session)
    assert decision.valid

    benchmark(lambda: pruned_checker.check(query, session))

    EXPERIMENT.add(
        f"{total} views",
        pruned_ms=pruned_s * 1000,
        unpruned_ms=unpruned_s * 1000,
        speedup=f"{unpruned_s / pruned_s:.1f}x",
        views_pruned=pruned_checker.views_pruned,
    )
    assert pruned_checker.views_pruned == total - 1
    if total >= 100:
        # the claim: pruning wins, increasingly so with more views
        assert pruned_s < unpruned_s
