"""Benchmark-suite plumbing.

Each ``bench_e*.py`` module registers one :class:`repro.bench.Experiment`
here; rows are added while the benchmark tests run and the assembled
tables — the reproduction's counterpart of the paper's figures/claims —
are printed in the terminal summary after pytest-benchmark's own table.

Every experiment that recorded rows is additionally written out as
machine-readable ``BENCH_<id>.json`` (E13–E17 alike), so the perf
trajectory is diffable across PRs instead of living only in the
EXPERIMENTS.md prose.  ``REPRO_BENCH_JSON_DIR`` overrides the output
directory (default: the repository root).
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

# Allow `from tests.conftest import ...`-style absolute imports if needed.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

_EXPERIMENTS = []


def register_experiment(experiment):
    _EXPERIMENTS.append(experiment)
    return experiment


def pytest_terminal_summary(terminalreporter):
    if not _EXPERIMENTS:
        return
    terminalreporter.write_line("")
    terminalreporter.write_line("=" * 72)
    terminalreporter.write_line("EXPERIMENT TABLES (see EXPERIMENTS.md for the paper mapping)")
    terminalreporter.write_line("=" * 72)
    for experiment in _EXPERIMENTS:
        if not experiment.rows:
            continue
        terminalreporter.write_line("")
        for line in experiment.report().splitlines():
            terminalreporter.write_line(line)
    terminalreporter.write_line("")
    out_dir = Path(
        os.environ.get(
            "REPRO_BENCH_JSON_DIR", Path(__file__).resolve().parent.parent
        )
    )
    for experiment in _EXPERIMENTS:
        if not experiment.rows:
            continue
        path = out_dir / f"BENCH_{experiment.id}.json"
        try:
            experiment.write_json(path)
        except OSError as exc:
            terminalreporter.write_line(f"could not write {path}: {exc}")
        else:
            terminalreporter.write_line(f"wrote {path}")
