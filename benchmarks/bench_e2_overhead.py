"""E2 — validity-checking overhead vs plain optimization (§5.6).

Paper claim: "Validity checking with the basic inference rules does not
require equivalence rules to be applied to the views, and hence does
not increase the cost significantly beyond normal query optimization."

We measure, for queries of 1..4 joined relations:

* plain Volcano optimization (expand + cost + extract);
* the same plus view unification and validity marking (§5.6.2);
* the full block-based checker (basic rules only);
* the full block-based checker with the complex (U3/C3) rules enabled.

The shape to reproduce: marking adds little over optimization; the
complex rules cost more (the paper expects exactly this, §5.6).
"""

import pytest

from repro.sql import parse_query
from repro.algebra.translate import Translator
from repro.authviews.views import AuthorizationView
from repro.nontruman.checker import ValidityChecker
from repro.optimizer import VolcanoOptimizer
from repro.workloads.university import UniversityConfig, build_university
from repro.bench import Experiment, time_callable

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E2",
        title="validity-check overhead vs plain optimization",
        claim="basic-rule marking adds little beyond optimization; complex rules cost more",
    )
)

QUERIES = {
    "1 relation": "select grade from Grades where student_id = '11'",
    "2 relations": (
        "select g.grade, c.name from Grades g, Courses c "
        "where g.student_id = '11' and g.course_id = c.course_id"
    ),
    "3 relations": (
        "select g.grade, c.name, r.course_id from Grades g, Courses c, Registered r "
        "where g.student_id = '11' and g.course_id = c.course_id "
        "and r.student_id = '11' and r.course_id = c.course_id"
    ),
    "aggregate": "select avg(grade) from Grades where student_id = '11'",
}


@pytest.fixture(scope="module")
def env():
    db = build_university(UniversityConfig(students=80, courses=10, seed=1))
    session = db.connect(user_id="11").session
    view_plans = []
    for view_def in db.catalog.views():
        if not view_def.authorization:
            continue
        instantiated = AuthorizationView.from_def(view_def).instantiate(session)
        try:
            view_plans.append(
                Translator(db.catalog).translate(instantiated.query)
            )
        except Exception:
            continue
    return db, session, view_plans


@pytest.mark.parametrize("label", list(QUERIES))
def test_overhead(benchmark, env, label):
    db, session, view_plans = env
    sql = QUERIES[label]
    plan = db.plan_query(parse_query(sql), session)
    optimizer = VolcanoOptimizer(lambda t: db.table(t).row_count)
    query = parse_query(sql)

    optimize_s, _ = time_callable(lambda: optimizer.optimize(plan), repeat=5)
    marking_s, _ = time_callable(
        lambda: optimizer.check_validity(plan, view_plans), repeat=5
    )
    basic_checker = ValidityChecker(db, allow_u3=False, allow_conditional=False)
    basic_s, _ = time_callable(lambda: basic_checker.check(query, session), repeat=5)
    full_checker = ValidityChecker(db)
    full_s, _ = time_callable(lambda: full_checker.check(query, session), repeat=5)

    benchmark(lambda: optimizer.check_validity(plan, view_plans))

    EXPERIMENT.add(
        label,
        optimize_ms=optimize_s * 1000,
        dag_marking_ms=marking_s * 1000,
        marking_overhead=f"{marking_s / optimize_s:.2f}x",
        block_basic_ms=basic_s * 1000,
        block_full_ms=full_s * 1000,
    )
    # The §5.6 claim: DAG validity checking stays within a small factor
    # of plain optimization for these query sizes.
    assert marking_s < optimize_s * 10
