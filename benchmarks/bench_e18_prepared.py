"""E18 — prepared statements (repro.prepared, paper §5.6).

The paper motivates decision caching with "queries [that] are
repeatedly executed, often with different values for some constants"
and suggests treating them "almost like prepared statements".  E18
measures exactly that regime on the E13 hot-query workload: the same
per-user grade lookup, re-executed with rotating literals, through the
full template cache (signature → cached decision → pre-built plan with
per-request literal binding) versus the fresh parse → check → plan
pipeline.

Gates:

* the prepared Database path is ≥10x the fresh path on the hot
  workload (≥3x under ``REPRO_BENCH_CI=1``, where shared runners make
  wall-clock ratios noisy);
* zero result mismatches between the two paths, accept and reject alike;
* a hot hit performs *zero* parse/check/plan/pushdown work — checked
  against the stage instrumentation counters, not just wall clock.
"""

import os

import pytest

from repro.db import Database
from repro.errors import QueryRejectedError
from repro.instrument import COUNTERS
from repro.service import EnforcementGateway, QueryRequest
from repro.workloads.university import (
    UniversityConfig,
    build_university,
    student_ids,
)
from repro.bench import Experiment, time_callable

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E18",
        title="prepared statements: template cache for hot queries",
        claim="§5.6 — repeated queries differing only in constants skip parse/check/plan via cached templates",
    )
)

#: local acceptance gate vs the floor CI runners can honestly promise
SPEEDUP_FLOOR = 3.0 if os.environ.get("REPRO_BENCH_CI") else 10.0

USERS = 10
ROUNDS = 20


@pytest.fixture(scope="module")
def db():
    return build_university(UniversityConfig(students=40, courses=8, seed=18))


def hot_pairs(db):
    """The E13 hot queries: one per-user grade lookup (accepted, rule
    U2) and one blanket scan (rejected) — same two skeletons for every
    user, literals rotating with the user id."""
    pairs = []
    for user in student_ids(db)[:USERS]:
        pairs.append(
            (user, f"select grade from Grades where student_id = '{user}'")
        )
        pairs.append((user, "select * from Grades"))
    return pairs


def outcome(db, sql, session, prepared):
    try:
        result = db.execute_query(
            sql, session=session, mode="non-truman", prepared=prepared
        )
    except QueryRejectedError as exc:
        return ("rejected", str(exc))
    return ("ok", result.as_multiset())


def test_prepared_speedup_hot_queries(db):
    """The acceptance gate: ≥10x (local) on the hot-query workload with
    zero mismatches against the fresh pipeline."""
    pairs = hot_pairs(db)
    sessions = {
        user: db.connect(user_id=user, mode="non-truman").session
        for user, _ in pairs
    }

    def sweep(prepared):
        return [
            outcome(db, sql, sessions[user], prepared)
            for _ in range(ROUNDS)
            for user, sql in pairs
        ]

    fresh_outcomes = sweep(False)
    prepared_outcomes = sweep(True)  # cold templates built here
    mismatches = sum(
        1 for a, b in zip(fresh_outcomes, prepared_outcomes) if a != b
    )
    assert mismatches == 0

    fresh_s, _ = time_callable(lambda: sweep(False), repeat=3)
    prepared_s, _ = time_callable(lambda: sweep(True), repeat=3)
    speedup = fresh_s / prepared_s
    n = ROUNDS * len(pairs)
    stats = db.prepared.stats()
    EXPERIMENT.add(
        f"hot workload: {len(pairs)} queries x {ROUNDS} rounds, {USERS} users",
        requests=n,
        mismatches=mismatches,
        fresh_ms=round(fresh_s * 1000, 2),
        prepared_ms=round(prepared_s * 1000, 2),
        speedup=round(speedup, 1),
        floor=SPEEDUP_FLOOR,
        fresh_qps=round(n / fresh_s),
        prepared_qps=round(n / prepared_s),
        template_hit_rate=round(stats["prepared_hit_rate"], 3),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"prepared speedup {speedup:.1f}x below the "
        f"{SPEEDUP_FLOOR:.0f}x gate (fresh {fresh_s * 1000:.1f}ms vs "
        f"prepared {prepared_s * 1000:.1f}ms)"
    )


def test_hot_hit_does_zero_pipeline_work(db):
    """The claim behind the speedup, asserted structurally: a hot hit
    bumps only ``prepared.bind`` — no parse, no validity check, no plan
    build, no pushdown, no kernel compilation."""
    session = db.connect(user_id="11", mode="non-truman").session
    sql = "select grade from Grades where student_id = '11'"
    db.execute_query(sql, session=session, mode="non-truman", prepared=True)
    snapshot = COUNTERS.snapshot()
    db.execute_query(sql, session=session, mode="non-truman", prepared=True)
    delta = COUNTERS.delta_since(snapshot)
    EXPERIMENT.add(
        "hot-hit stage counters (one request)",
        **{stage: delta.get(stage, 0)
           for stage in ("sql.parse", "validity.check", "plan.build",
                         "plan.push", "engine.compile", "prepared.bind")},
    )
    assert delta.get("sql.parse", 0) == 0
    assert delta.get("validity.check", 0) == 0
    assert delta.get("plan.build", 0) == 0
    assert delta.get("plan.push", 0) == 0
    assert delta.get("engine.compile", 0) == 0
    assert delta.get("prepared.bind") == 1


def test_gateway_prepared_throughput(db):
    """The same hot workload through the enforcement gateway, prepared
    templating on vs off: identical responses, throughput reported
    (the Database-level gate above is the hard one — worker-pool
    dispatch overhead dilutes the per-query win here)."""
    requests = [
        QueryRequest(user=user, sql=sql, mode="non-truman")
        for _ in range(5)
        for user, sql in hot_pairs(db)
    ]
    prep_gw = EnforcementGateway(
        db, workers=4, queue_size=len(requests), prepared_statements=True
    )
    fresh_gw = EnforcementGateway(
        db, workers=4, queue_size=len(requests), prepared_statements=False
    )
    try:
        prep = prep_gw.execute_many(requests)  # warm + correctness
        fresh = fresh_gw.execute_many(requests)
        mismatches = sum(
            1
            for a, b in zip(prep, fresh)
            if (a.status, a.error, a.rows) != (b.status, b.error, b.rows)
        )
        assert mismatches == 0

        prep_s, _ = time_callable(
            lambda: prep_gw.execute_many(requests), repeat=3
        )
        fresh_s, _ = time_callable(
            lambda: fresh_gw.execute_many(requests), repeat=3
        )
        snap = prep_gw.stats()
        EXPERIMENT.add(
            f"gateway, 4 workers, {len(requests)} hot requests",
            requests=len(requests),
            mismatches=mismatches,
            fresh_ms=round(fresh_s * 1000, 2),
            prepared_ms=round(prep_s * 1000, 2),
            speedup=round(fresh_s / prep_s, 1),
            fresh_qps=round(len(requests) / fresh_s),
            prepared_qps=round(len(requests) / prep_s),
            prepared_requests=snap["prepared_requests"],
            prepared_fallbacks=snap["prepared_fallbacks"],
        )
        # the gateway path must at least not regress
        assert prep_s <= fresh_s * 1.1
    finally:
        prep_gw.shutdown(drain=False)
        fresh_gw.shutdown(drain=False)
