"""E12 — ablation of the implemented future-work extensions.

The paper leaves three capabilities as future work, all implemented in
this reproduction (DESIGN.md §6):

* **overlapping covers** — "a query of the form A ⋈ B ⋈ C can be
  rewritten completely using the views only if we decompose the query
  as (A ⋈ B) ⋈ (B ⋈ C).  Extending the algorithm to handle such cases
  is a topic of future work" (§5.6.2);
* **dependent joins** over access-pattern views (§6, "we omit details");
* **re-aggregation** of finer-grained aggregate views (the [8, 14, 26]
  line of work the paper cites).

Each extension gets its own schema region whose views make a probe
query answerable *only* through that extension; turning the extension
off must flip exactly that query to rejected.
"""

import pytest

from repro.db import Database
from repro.sql import parse_query
from repro.nontruman.checker import ValidityChecker
from repro.bench import Experiment

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E12",
        title="acceptance contribution of each future-work extension",
        claim="each extension unlocks a class of queries the base rules reject",
    )
)


@pytest.fixture(scope="module")
def db():
    database = Database()
    database.execute_script(
        """
        -- region 1: overlapping covers (A ⋈ B ⋈ C from {AB, BC})
        create table A(id int primary key, b_id int, x int);
        create table B(id int primary key, y int);
        create table C(id int primary key, b_id int, z int);
        insert into B values (1,10),(2,20);
        insert into A values (1,1,100),(2,2,101);
        insert into C values (1,1,200),(2,2,201);
        create authorization view AB as
            select A.id as a_id, A.x, B.id as b_id, B.y
            from A, B where A.b_id = B.id;
        create authorization view BC as
            select B.id as b_id, B.y, C.id as c_id, C.z
            from B, C where C.b_id = B.id;

        -- region 2: dependent joins (S only reachable via $$-view)
        create table R(id int primary key, v int);
        create table S(id int primary key, r_id int, w int);
        insert into R values (1,7),(2,8);
        insert into S values (1,1,5),(2,2,6);
        create authorization view AllR as select * from R;
        create authorization view SByR as
            select * from S where r_id = $$r;

        -- region 3: re-aggregation (G only visible through group stats)
        create table G(sid varchar(5), cid varchar(5), grade float,
            primary key (sid, cid));
        insert into G values ('1','a',3.0),('2','a',4.0),('1','b',1.0);
        create authorization view GStats as
            select cid, sum(grade) as sg, count(grade) as cg, count(*) as n
            from G group by cid;
        """
    )
    for name in ("AB", "BC", "AllR", "SByR", "GStats"):
        database.grant_public(name)
    return database


#: query -> the single extension it depends on (None = base rules)
WORKLOAD = {
    "select A.x, B.y, C.z from A, B, C where A.b_id = B.id and C.b_id = B.id":
        "overlap",
    "select r.v, s.w from R r, S s where s.r_id = r.id": "dependent-join",
    "select sum(grade) from G": "re-aggregation",
    "select avg(grade) from G": "re-aggregation",
    "select v from R where id = 1": None,
    "select w from S where r_id = 2": None,  # $$ pinned directly: base §6 rule
}

CONFIGS = {
    "all extensions ON": {},
    "no overlap covers": {"enable_overlap_covers": False},
    "no dependent joins": {"enable_dependent_joins": False},
    "no re-aggregation": {"enable_reaggregation": False},
    "all extensions OFF": {
        "enable_overlap_covers": False,
        "enable_dependent_joins": False,
        "enable_reaggregation": False,
    },
}

OVERLAP_QUERY = next(q for q, k in WORKLOAD.items() if k == "overlap")
DEPJOIN_QUERY = next(q for q, k in WORKLOAD.items() if k == "dependent-join")


@pytest.mark.parametrize("config", list(CONFIGS))
def test_extension_ablation(benchmark, db, config):
    session = db.connect(user_id="u").session
    checker = ValidityChecker(db, **CONFIGS[config])

    def run():
        return {
            sql: checker.check(parse_query(sql), session).valid
            for sql in WORKLOAD
        }

    outcomes = benchmark.pedantic(run, rounds=3, iterations=1)
    accepted = sum(outcomes.values())
    EXPERIMENT.add(
        config,
        accepted=accepted,
        total=len(WORKLOAD),
        overlap="+" if outcomes[OVERLAP_QUERY] else "-",
        dep_join="+" if outcomes[DEPJOIN_QUERY] else "-",
        reagg="+" if outcomes["select sum(grade) from G"] else "-",
    )

    for sql, needs in WORKLOAD.items():
        if needs is None:
            assert outcomes[sql], (config, sql)
    flags = CONFIGS[config]
    assert outcomes[OVERLAP_QUERY] == flags.get("enable_overlap_covers", True)
    assert outcomes[DEPJOIN_QUERY] == flags.get("enable_dependent_joins", True)
    assert outcomes["select sum(grade) from G"] == flags.get(
        "enable_reaggregation", True
    )
    assert outcomes["select avg(grade) from G"] == flags.get(
        "enable_reaggregation", True
    )
