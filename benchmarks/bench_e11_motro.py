"""E11 — the three access-control philosophies on one workload (§3, §4, §7).

The paper positions the Non-Truman model against two alternatives:

* **Truman/VPD** (§3): silently modify the query — answers may be
  partial or outright wrong, with no indication;
* **Motro** (§7): modify the query but *annotate* the answer ("only
  grades of user-id 11 have been returned"); refuses aggregates/set
  ops, whose partial answers would be incorrect;
* **Non-Truman** (§4): never modify — run exactly or reject.

Over the portal workload we tabulate per model: exact answers,
silently-wrong answers, annotated-partial answers, and refusals.  The
shape: only Truman produces silent wrong answers; Motro converts most
of them into annotated partials or refusals; Non-Truman converts them
into refusals while answering everything it accepts exactly.
"""

import pytest

from repro.errors import QueryRejectedError, UnsupportedFeatureError
from repro.workloads import UniversityConfig, build_university, student_query_mix
from repro.bench import Experiment

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E11",
        title="Truman vs Motro vs Non-Truman answer semantics",
        claim="silent wrongness (Truman) -> annotated partiality (Motro) -> exactness or refusal (Non-Truman)",
    )
)

WORKLOAD = 100


@pytest.fixture(scope="module")
def env():
    db = build_university(UniversityConfig(students=40, courses=8, seed=17))
    db.set_truman_view("Grades", "MyGrades")
    queries = student_query_mix(db, "11", count=WORKLOAD, seed=9)
    return db, queries


def run(db, queries, mode):
    conn = db.connect(user_id="11", mode=mode)
    tally = {"exact": 0, "silent_wrong": 0, "annotated_partial": 0, "refused": 0}
    for query in queries:
        try:
            answer = conn.query(query.sql)
        except (QueryRejectedError, UnsupportedFeatureError):
            tally["refused"] += 1
            continue
        truth = db.execute(query.sql)
        exact = sorted(map(repr, answer.rows)) == sorted(map(repr, truth.rows))
        annotated = bool(getattr(answer, "annotations", None))
        if exact:
            tally["exact"] += 1
        elif annotated:
            tally["annotated_partial"] += 1
        else:
            tally["silent_wrong"] += 1
    return tally


@pytest.mark.parametrize("mode", ["truman", "motro", "non-truman"])
def test_model_semantics(benchmark, env, mode):
    db, queries = env
    tally = benchmark.pedantic(lambda: run(db, queries, mode), rounds=3, iterations=1)
    EXPERIMENT.add(mode, total=WORKLOAD, **tally)

    if mode == "truman":
        assert tally["silent_wrong"] > 0
        assert tally["refused"] == 0
    if mode == "motro":
        # every modified answer is labeled; nothing silently wrong
        assert tally["silent_wrong"] == 0
        assert tally["annotated_partial"] > 0
        assert tally["refused"] > 0  # aggregates refused
    if mode == "non-truman":
        assert tally["silent_wrong"] == 0
        assert tally["annotated_partial"] == 0
        assert tally["exact"] + tally["refused"] == WORKLOAD
