"""E19 — scale-out serving (repro.cluster, DESIGN.md §10).

The cluster's pitch is that sharding + WAL-shipping replication buy
read throughput *without* weakening enforcement: the checker and
prepared pipeline still run once per query on the coordinator, policy
changes propagate as epoch-stamped WAL records, and the routing gate
refuses any replica whose policy epoch lags the primary.  E19 measures
the throughput side and stress-tests the enforcement side:

Gates:

* partition-pruned point reads on a 4-shard coordinator are ≥3x the
  1-shard baseline (≥1.5x under ``REPRO_BENCH_CI=1``), with zero row
  mismatches between the two topologies;
* replica staleness stays bounded by the shipping batch size under a
  sustained write storm, and drains to zero on sync;
* a revoke-during-read storm with a mid-storm replica failover serves
  **zero** stale-policy answers and zero wrong rows.
"""

import os
import threading
import time

import pytest

from repro.authviews.session import SessionContext
from repro.bench import Experiment, time_callable
from repro.cluster import ClusterCoordinator
from repro.service import EnforcementGateway, QueryRequest

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E19",
        title="cluster: sharded + replicated serving, epoch-consistent policy",
        claim="§10 — scatter-gather sharding scales reads; epoch-gated WAL shipping keeps every answer policy-current",
    )
)

#: local acceptance gate vs the floor CI runners can honestly promise
SPEEDUP_FLOOR = 1.5 if os.environ.get("REPRO_BENCH_CI") else 3.0

STUDENTS = 600
GRADES_PER = 10
POINT_READS = 240


def build_topology(shards):
    db = ClusterCoordinator(
        shards=shards, partition_keys={"Grades": ("student_id",)}
    )
    db.execute(
        "create table Grades (student_id varchar(10), course varchar(10), "
        "grade float)"
    )
    grades = db.table("Grades")
    for s in range(STUDENTS):
        for g in range(GRADES_PER):
            grades.insert((f"s{s}", f"CS{g}", round(1.0 + (g % 7) * 0.5, 1)))
    return db


@pytest.fixture(scope="module")
def topologies():
    return build_topology(1), build_topology(4)


def point_reads(db, session):
    out = []
    for s in range(0, STUDENTS, STUDENTS // POINT_READS):
        result = db.execute_query(
            f"select course, grade from Grades where student_id = 's{s}'",
            session=session,
            mode="open",
        )
        out.append(tuple(result.rows))
    return out


def test_sharded_point_read_speedup(topologies):
    """The acceptance gate: partition pruning turns a point read into a
    1-of-4-shards scan, so the 4-shard coordinator clears ≥3x the
    1-shard baseline on the same data — byte-identically."""
    one, four = topologies
    session = SessionContext()
    baseline = point_reads(one, session)
    sharded = point_reads(four, session)
    mismatches = sum(1 for a, b in zip(baseline, sharded) if a != b)
    assert mismatches == 0

    one_s, _ = time_callable(lambda: point_reads(one, session), repeat=3)
    four_s, _ = time_callable(lambda: point_reads(four, session), repeat=3)
    speedup = one_s / four_s
    EXPERIMENT.add(
        f"point reads, {STUDENTS * GRADES_PER} rows, {POINT_READS} queries",
        queries=POINT_READS,
        mismatches=mismatches,
        one_shard_ms=round(one_s * 1000, 2),
        four_shard_ms=round(four_s * 1000, 2),
        speedup=round(speedup, 1),
        floor=SPEEDUP_FLOOR,
        one_shard_qps=round(POINT_READS / one_s),
        four_shard_qps=round(POINT_READS / four_s),
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"4-shard speedup {speedup:.1f}x below the {SPEEDUP_FLOOR:.1f}x "
        f"gate (1 shard {one_s * 1000:.1f}ms vs 4 shards "
        f"{four_s * 1000:.1f}ms)"
    )


def test_replica_staleness_bounded_under_write_storm():
    """Replica lag never exceeds the shipping batch while writes pour
    in, and drains to zero on sync — staleness is bounded, not best
    effort."""
    ship_batch = 8
    db = ClusterCoordinator(shards=2, replicas=1, ship_batch=ship_batch)
    db.execute("create table T (a int primary key, b float)")
    db.sync_replicas()
    max_lag = 0
    writes = 120
    for i in range(writes):
        db.execute(f"insert into T values ({i}, {i}.5)")
        max_lag = max(max_lag, db.replica_lag())
    lag_before_sync = db.replica_lag()
    db.sync_replicas()
    EXPERIMENT.add(
        f"write storm, {writes} inserts, ship_batch={ship_batch}",
        writes=writes,
        ship_batch=ship_batch,
        max_lag=max_lag,
        lag_after_sync=db.replica_lag(),
    )
    assert max_lag <= ship_batch
    assert lag_before_sync <= ship_batch
    assert db.replica_lag() == 0


def test_revoke_storm_with_failover_zero_stale():
    """Grant/revoke churn racing gateway reads, one replica dying
    mid-storm: every OK answer is policy-current and row-exact."""
    db = ClusterCoordinator(shards=4, replicas=2, ship_batch=1)
    db.execute(
        "create table Grades (student_id varchar(10), course varchar(10), "
        "grade float)"
    )
    for i in range(40):
        db.execute(
            f"insert into Grades values ('{10 + i % 20}', 'CS{i % 5}', "
            f"{round(1.0 + (i % 6) * 0.5, 1)})"
        )
    db.execute(
        "create authorization view MyGrades as "
        "select * from Grades where student_id = $user_id"
    )
    db.grant("MyGrades", "11")
    db.sync_replicas()
    expected_rows = tuple(
        db.execute_query(
            "select grade from MyGrades",
            session=SessionContext(user_id="11"),
            mode="non-truman",
        ).rows
    )
    gateway = EnforcementGateway(db, workers=4)
    state_lock = threading.Lock()
    state = [0, True]  # (flip counter, currently granted)
    stop = threading.Event()

    def snapshot():
        with state_lock:
            return state[0], state[1]

    def churn():
        while not stop.is_set():
            with state_lock:
                db.grants.revoke("MyGrades", "11")
                state[0] += 1
                state[1] = False
            time.sleep(0.0005)
            with state_lock:
                db.grant("MyGrades", "11")
                state[0] += 1
                state[1] = True
            time.sleep(0.0005)

    reads = 300
    stale = wrong = served_ok = replica_served = 0
    churner = threading.Thread(target=churn, daemon=True)
    try:
        churner.start()
        for i in range(reads):
            if i == reads // 2:  # failover: one replica goes silent
                db.durability.shippers[0].paused = True
            flips_before, granted_before = snapshot()
            response = gateway.execute(
                QueryRequest(
                    user="11",
                    sql="select grade from MyGrades",
                    mode="non-truman",
                    tag=f"e19-{i}",
                )
            )
            flips_after, _ = snapshot()
            if response.ok:
                served_ok += 1
                if response.replica is not None:
                    replica_served += 1
                if tuple(response.rows) != expected_rows:
                    wrong += 1
                # the user was revoked for the *entire* request, yet
                # got an answer: only stale policy state can do that
                if not granted_before and flips_after == flips_before:
                    stale += 1
    finally:
        stop.set()
        churner.join(timeout=10)
        gateway.shutdown(drain=False)
    # while the dead replica is still silent, routing only offers the
    # survivor (a paused shipper never ships, even on sync)
    live = db.durability.shippers[1].replica
    db.grant("MyGrades", "11")
    db.sync_replicas()
    routed = {db.route_read().name for _ in range(10)}
    db.durability.shippers[0].paused = False
    EXPERIMENT.add(
        f"revoke storm, {reads} reads, failover at {reads // 2}",
        reads=reads,
        served_ok=served_ok,
        replica_served=replica_served,
        stale_policy_answers=stale,
        wrong_rows=wrong,
        surviving_replicas=len(routed),
    )
    assert stale == 0
    assert wrong == 0
    assert served_ok > 0 and replica_served > 0
    assert routed == {live.name}
