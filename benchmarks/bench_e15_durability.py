"""E15 — durable storage: WAL group commit and crash recovery.

The durability layer (repro.durability) must not undo the service
layer's concurrency story: per-operation fsync would serialize the
gateway's worker pool behind the disk.  E15 measures:

* **group commit leverage** — 8 concurrent gateway sessions streaming
  single-row inserts under the ``group`` sync policy vs the ``always``
  (fsync-per-operation) baseline; the acceptance gate requires group
  commit to cut fsyncs by ≥3x;
* **recovery time vs WAL length** — wall-clock ``Database.open`` as the
  un-checkpointed WAL tail grows, and the effect of a checkpoint;
* **recovery fidelity** — a crash-injection sweep over the write-path
  crash points; the gate requires 0 mismatches against the
  never-crashed oracle.
"""

import pytest

from repro.db import Database
from repro.service import EnforcementGateway, QueryRequest, RequestStatus
from repro.bench import Experiment, time_callable

from benchmarks.conftest import register_experiment
from tests.integration.test_recovery import (
    CRASH_POSITIONS,
    WAL_POINTS,
    fingerprint,
    run_crash,
)

EXPERIMENT = register_experiment(
    Experiment(
        id="E15",
        title="durable storage: group commit + crash recovery",
        claim="group commit amortizes fsync across sessions; recovery restores the oracle state",
    )
)

SESSIONS = 8
INSERTS = 256


def insert_workload(db: Database, gateway: EnforcementGateway) -> dict:
    """Stream INSERTS single-row inserts through the gateway; returns
    the WAL stats snapshot taken right after the last response."""
    requests = [
        QueryRequest(
            user=None,
            sql=f"insert into Ledger values ({i}, {i * 3})",
            mode="open",
        )
        for i in range(INSERTS)
    ]
    responses = gateway.execute_many(requests)
    assert all(r.status is RequestStatus.OK for r in responses)
    return db.durability.wal_stats()


def run_policy(tmp_path, policy: str) -> dict:
    data_dir = str(tmp_path / f"e15-{policy}")
    db = Database.open(data_dir, sync=policy)
    db.execute("create table Ledger(id int primary key, v int)")
    db.checkpoint()  # fold DDL away so the run measures inserts only
    gateway = EnforcementGateway(
        db, workers=SESSIONS, queue_size=INSERTS + SESSIONS
    )
    try:
        import time

        start = time.perf_counter()
        stats = insert_workload(db, gateway)
        stats["elapsed_s"] = time.perf_counter() - start
    finally:
        gateway.shutdown(drain=True)
        db.close()
    assert stats["wal_records"] == INSERTS
    return stats


def test_group_commit_beats_per_op_fsync(tmp_path):
    """Acceptance gate: ≥3x fewer fsyncs than the per-operation
    baseline under 8 concurrent gateway sessions."""
    group = run_policy(tmp_path, "group")
    always = run_policy(tmp_path, "always")

    assert always["wal_fsyncs"] >= INSERTS  # baseline: one per insert
    ratio = always["wal_fsyncs"] / max(group["wal_fsyncs"], 1)
    for stats in (group, always):
        EXPERIMENT.add(
            f"{INSERTS} inserts, {SESSIONS} sessions, sync={stats['sync_policy']}",
            fsyncs=stats["wal_fsyncs"],
            fsyncs_per_op=f"{stats['wal_fsyncs'] / INSERTS:.3f}",
            throughput_ops=f"{INSERTS / stats['elapsed_s']:.0f}",
        )
    EXPERIMENT.add(
        "group-commit leverage (gate: >= 3x)",
        fsync_reduction=f"{ratio:.1f}x",
    )
    assert ratio >= 3.0, (
        f"group commit managed only {ratio:.1f}x fewer fsyncs than "
        f"per-operation fsync under {SESSIONS} concurrent sessions"
    )


@pytest.mark.parametrize("wal_records", [100, 1000, 4000])
def test_recovery_time_scales_with_wal_length(tmp_path, wal_records):
    data_dir = str(tmp_path / f"e15-recover-{wal_records}")
    db = Database.open(data_dir, sync="none")  # building the tail fast
    db.execute("create table Ledger(id int primary key, v int)")
    for i in range(wal_records):
        db.execute(f"insert into Ledger values ({i}, {i})", sync=False)
    db.durability.writer.fsync_now()
    expected = wal_records

    def recover():
        recovered = Database.open(data_dir)
        count = len(recovered.table("Ledger"))
        replayed = recovered.durability.recovery_info["wal_records_replayed"]
        recovered.close(checkpoint=False)
        return count, replayed

    (count, replayed) = recover()
    assert count == expected and replayed >= wal_records
    median_s, _ = time_callable(recover, repeat=3, warmup=0)
    EXPERIMENT.add(
        f"recovery, {wal_records}-record WAL tail",
        recover_ms=f"{median_s * 1000:.1f}",
        records_per_s=f"{replayed / median_s:.0f}",
    )

    # a checkpoint collapses the tail: recovery becomes snapshot-only
    db.checkpoint()
    db.close(checkpoint=False)
    snap_s, _ = time_callable(recover, repeat=3, warmup=0)
    EXPERIMENT.add(
        f"recovery after checkpoint ({wal_records} rows in snapshot)",
        recover_ms=f"{snap_s * 1000:.1f}",
    )


def test_crash_sweep_zero_oracle_mismatches(tmp_path):
    """Acceptance gate: every (crash point × position) recovery in the
    sweep must reproduce the oracle state exactly."""
    mismatches = 0
    cases = 0
    for point in WAL_POINTS:
        for position in CRASH_POSITIONS:
            cases += 1
            recovered, oracle, _ = run_crash(
                tmp_path / f"{point}-{position}", point, position,
                seed=position * 13 + 1,
            )
            if fingerprint(recovered) != fingerprint(oracle):
                mismatches += 1
            recovered.close(checkpoint=False)
    EXPERIMENT.add(
        f"crash-injection sweep ({cases} point x position cases)",
        oracle_mismatches=mismatches,
    )
    assert mismatches == 0
