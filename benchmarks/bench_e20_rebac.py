"""E20 — relationship-tuple policies compiled to views (repro.rebac).

The ReBAC subsystem's pitch is that tuple-graph policies cost nothing
at query time: the closure compiler materializes who-can-what into the
``RebacGrants`` relation up front, so the Non-Truman checker sees
ordinary authorization views and a deep delegation chain prices the
same as a direct grant.  E20 measures the compile side and stress-tests
the consistency side:

Gates:

* the closure fixpoint over the collab graph — and a 4x larger one —
  compiles within the budget, and recompiles are *incremental* (one
  recompile per tuple write, never a from-scratch policy redeploy);
* checking a query justified by a 10-link tuple chain is as cheap as a
  1-link check (same views, same probes), and the decision cache
  serves repeats without re-probing;
* a revoke-tuple storm racing gateway reads over a replicated cluster
  serves **zero** stale answers — the epoch gate holds for tuple
  writes exactly as it does for grant/revoke DDL.
"""

import os
import threading
import time

import pytest

from repro.authviews.session import SessionContext
from repro.bench import Experiment, time_callable
from repro.cluster import ClusterCoordinator
from repro.errors import QueryRejectedError
from repro.rebac.compiler import compute_closure
from repro.rebac.trace import explain_query
from repro.service import EnforcementGateway, QueryRequest
from repro.workloads.collab import (
    CollabConfig,
    build_collab,
    collab_namespace,
    user_name,
)

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E20",
        title="rebac: tuple policies compiled to authorization views",
        claim="§3.3/§6 — policy as data: closure compilation moves graph traversal out of the query path; epoch gating keeps tuple revokes stale-free",
    )
)

#: compile budget for the scaled-up graph (seconds); CI runners get slack
CLOSURE_BUDGET_S = 5.0 if os.environ.get("REPRO_BENCH_CI") else 2.0

SMALL = CollabConfig()
LARGE = CollabConfig(
    teams=8, users_per_team=8, folder_depth=12, documents=96, seed=11
)
TIME = SMALL.base_time


@pytest.fixture(scope="module")
def collab_db():
    return build_collab(SMALL)


def test_compile_cost(collab_db):
    """Closure compilation cost at two graph scales.  The fixpoint over
    the 4x graph must clear the budget, and attaching the policy must
    have materialized exactly the closure's grant rows."""
    namespace = collab_namespace()
    rows = []
    for label, config in (("collab 4x4x8", SMALL), ("collab 8x8x12", LARGE)):
        db = build_collab(config) if config is not SMALL else collab_db
        snapshot = db.rebac.store.snapshot()
        closure_s, _ = time_callable(
            lambda: compute_closure(namespace, snapshot), repeat=3
        )
        stats = db.rebac.stats()
        (grant_rows,) = db.execute(
            "select count(*) from RebacGrants", sync=False
        ).rows[0]
        EXPERIMENT.add(
            label,
            tuples=stats["rebac_tuples"],
            grant_rows=grant_rows,
            views=stats["rebac_views"],
            closure_ms=round(closure_s * 1000, 2),
        )
        rows.append((closure_s, grant_rows, stats["rebac_grant_rows"]))
    for closure_s, materialized, tracked in rows:
        assert materialized == tracked
    assert rows[-1][0] <= CLOSURE_BUDGET_S, (
        f"closure over the scaled graph took {rows[-1][0]:.2f}s, over the "
        f"{CLOSURE_BUDGET_S:.1f}s budget"
    )


def test_deep_chain_check_latency(collab_db):
    """A 10-link delegation chain prices like a direct grant: both
    compile to the same one-view rewriting, so probe counts match and
    the decision cache covers repeats of either."""
    deep_user = user_name(0, 0)  # reaches d0 through 10 tuple links
    direct_user = "bench_direct"
    collab_db.rebac.write_tuple(
        "document:d0", "viewer", f"user:{direct_user}"
    )
    sql = "select title from Documents where doc_id = 'd0'"

    def check(user):
        return explain_query(
            collab_db, sql, SessionContext(user_id=user, time=TIME)
        )

    collab_db.checker_options["use_cache"] = True
    try:
        deep = check(deep_user)
        direct = check(direct_user)
        assert deep.valid and direct.valid
        assert len(deep.chains[0].chain) == 10
        assert len(direct.chains[0].chain) == 1
        assert deep.views_used == direct.views_used
        assert deep.probes_executed == direct.probes_executed
        assert check(deep_user).from_cache

        deep_s, _ = time_callable(lambda: check(deep_user), repeat=5)
        direct_s, _ = time_callable(lambda: check(direct_user), repeat=5)
    finally:
        collab_db.checker_options.pop("use_cache", None)
        collab_db.rebac.delete_tuple(
            "document:d0", "viewer", f"user:{direct_user}"
        )
    EXPERIMENT.add(
        "validity check, 10-link chain vs direct grant",
        chain_links=10,
        probes=deep.probes_executed,
        deep_check_ms=round(deep_s * 1000, 3),
        direct_check_ms=round(direct_s * 1000, 3),
    )


def test_epoch_churn_invalidation_storm():
    """Tuple churn recompiles incrementally: one recompile per write,
    the cluster's policy epoch bumps in lockstep, and the post-storm
    answers are exact."""
    db = build_collab(SMALL, db=ClusterCoordinator(shards=2, replicas=1))
    db.sync_replicas()
    user = "bench_churn"
    subject = f"user:{user}"
    sql = "select title from Documents where doc_id = 'd0'"
    session = SessionContext(user_id=user, time=TIME)
    cycles = 40
    recompiles_before = db.rebac.recompiles
    epoch_before = db.policy_epoch

    start = time.perf_counter()
    for _ in range(cycles):
        db.rebac.write_tuple("document:d0", "viewer", subject)
        db.rebac.delete_tuple("document:d0", "viewer", subject)
    elapsed = time.perf_counter() - start

    writes = 2 * cycles
    recompiles = db.rebac.recompiles - recompiles_before
    epochs = db.policy_epoch - epoch_before
    EXPERIMENT.add(
        f"tuple churn, {writes} writes",
        tuple_writes=writes,
        recompiles=recompiles,
        epoch_bumps=epochs,
        writes_per_s=round(writes / elapsed),
    )
    assert recompiles == writes
    assert epochs == writes
    # churned user ends revoked; the standing 10-link chain still holds
    with pytest.raises(QueryRejectedError):
        db.execute_query(sql, session=session, mode="non-truman")
    assert db.execute_query(
        sql,
        session=SessionContext(user_id=user_name(0, 0), time=TIME),
        mode="non-truman",
    ).rows == [("plan 0",)]


def test_revoke_tuple_storm_zero_stale():
    """The acceptance gate: tuple grant/revoke churn racing routed
    reads on a sharded, replicated cluster — with replication shippers
    flapping — serves zero stale answers."""
    db = build_collab(SMALL, db=ClusterCoordinator(shards=2, replicas=2))
    db.sync_replicas()
    user = "bench_storm"
    subject = f"user:{user}"
    gateway = EnforcementGateway(db, workers=4)
    state_lock = threading.Lock()
    state = [0, False]  # (flip counter, currently granted)
    stop = threading.Event()

    def snapshot():
        with state_lock:
            return state[0], state[1]

    def churn():
        while not stop.is_set():
            with state_lock:
                db.rebac.write_tuple("document:d0", "viewer", subject)
                state[0] += 1
                state[1] = True
            time.sleep(0.0005)
            with state_lock:
                db.rebac.delete_tuple("document:d0", "viewer", subject)
                state[0] += 1
                state[1] = False
            time.sleep(0.0005)

    def pause_wiggle():
        while not stop.is_set():
            for shipper in db.durability.shippers:
                shipper.paused = not shipper.paused
            time.sleep(0.002)

    reads = 200
    stale = served_ok = replica_served = 0
    churner = threading.Thread(target=churn, daemon=True)
    wiggler = threading.Thread(target=pause_wiggle, daemon=True)
    try:
        churner.start()
        wiggler.start()
        for i in range(reads):
            flips_before, granted_before = snapshot()
            response = gateway.execute(
                QueryRequest(
                    user=user,
                    sql="select title from Documents where doc_id = 'd0'",
                    mode="non-truman",
                    params={"time": TIME},
                    tag=f"e20-{i}",
                )
            )
            flips_after, _ = snapshot()
            if response.ok:
                served_ok += 1
                if response.replica is not None:
                    replica_served += 1
                if not granted_before and flips_after == flips_before:
                    stale += 1
    finally:
        stop.set()
        churner.join(timeout=10)
        wiggler.join(timeout=10)
        for shipper in db.durability.shippers:
            shipper.paused = False
        gateway.shutdown(drain=False)
    EXPERIMENT.add(
        f"revoke-tuple storm, {reads} reads",
        reads=reads,
        served_ok=served_ok,
        replica_served=replica_served,
        stale_answers=stale,
    )
    assert stale == 0
