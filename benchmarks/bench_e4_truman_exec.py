"""E4 — execution characteristics: Truman-modified vs original query (§3.3).

Paper claim: "The rewritten query executed by the system may be
different from the query posed by the user, and may have very different
execution characteristics ... the Truman-modified query may also
contain redundant joins ... the redundant joins would result in wasted
execution time.  The Non-Truman model does not suffer from this
problem."

Setup: the authorization view CoStudentGrades joins Grades with
Registered; the user's query already performs the same registration
test.  Under Truman, substituting the view re-introduces the join
(redundantly); under the Non-Truman model the original query runs
unmodified.  We sweep database size and measure wall time and join
pairs examined.
"""

import pytest

from repro.sql import parse_query
from repro.engine.executor import Executor
from repro.db import _QueryContext
from repro.truman.rewrite import truman_rewrite
from repro.workloads.university import UniversityConfig, build_university
from repro.bench import Experiment, time_callable

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E4",
        title="Truman redundant-join execution overhead",
        claim="Truman-substituted queries carry redundant joins; Non-Truman runs the original",
    )
)

SIZES = [50, 150, 400]

QUERY = (
    "select g.grade from Grades g, Registered r "
    "where r.student_id = $user_id and g.course_id = r.course_id"
)


def build(students: int):
    db = build_university(
        UniversityConfig(students=students, courses=12, seed=2)
    )
    db.set_truman_view("Grades", "CoStudentGrades")
    return db


@pytest.mark.parametrize("students", SIZES)
def test_truman_vs_original_execution(benchmark, students):
    db = build(students)
    session = db.connect(user_id="11").session

    original = parse_query(QUERY)
    modified = truman_rewrite(db, original, session)

    original_plan = db.plan_query(original, session)
    truman_plan = db.plan_query(modified, session)

    def run(plan):
        executor = Executor(_QueryContext(db, session))
        rows = executor.execute(plan)
        return executor, rows

    original_s, _ = time_callable(lambda: run(original_plan), repeat=5)
    truman_s, _ = time_callable(lambda: run(truman_plan), repeat=5)

    executor_orig, rows_orig = run(original_plan)
    executor_truman, rows_truman = run(truman_plan)

    benchmark(lambda: run(truman_plan))

    EXPERIMENT.add(
        f"{students} students",
        original_ms=original_s * 1000,
        truman_ms=truman_s * 1000,
        slowdown=f"{truman_s / original_s:.2f}x",
        join_pairs_original=executor_orig.join_pairs_examined,
        join_pairs_truman=executor_truman.join_pairs_examined,
    )

    # The modified query does strictly more join work (the redundant
    # registration join), while returning the same rows here (the user
    # query already restricted itself to co-registered courses).
    assert executor_truman.join_pairs_examined > executor_orig.join_pairs_examined
    assert sorted(rows_orig) == sorted(rows_truman)
