"""E16 — robustness: cancellation latency, chaos sweep, degraded mode.

The resilience controls (repro.service.context / breaker / chaos) only
matter if they hold under measurement:

* **cancellation latency** — how far past its deadline a runaway query
  actually runs before the cooperative check kills it, for a pure
  scan/join (both engines) and for the Non-Truman checker's inference
  loops; the gate requires the overshoot to stay well under the
  query's own runtime (killing is cheap and timely);
* **chaos sweep** — randomized requests against a gateway with faults
  armed at every serving-path point; the gate requires 0 hangs,
  0 partial answers, and every request audited exactly once;
* **degraded mode** — WAL commit faults must trip the breaker into
  read-only serving and the half-open probe must recover it, while
  reads keep answering throughout.
"""

import threading
import time

from repro.db import Database
from repro.errors import PendingTimeout, ServiceOverloaded
from repro.service import ChaosInjector, EnforcementGateway, QueryRequest, RequestStatus
from repro.bench import Experiment

from benchmarks.conftest import register_experiment
from tests.integration.test_chaos import (
    BIG_JOIN_SQL,
    PATHOLOGICAL_SQL,
    TERMINAL,
    build_pathological_db,
    install_university,
    serial_outcome,
)

EXPERIMENT = register_experiment(
    Experiment(
        id="E16",
        title="robustness: cancellation, chaos sweep, degraded mode",
        claim="deadlines kill runaway work promptly; under injected faults every request ends cleanly and audited",
    )
)

SWEEP_REQUESTS = 200
DEADLINE_S = 0.15


def build_join_db(rows: int = 700) -> Database:
    db = Database()
    db.execute("create table L(a int primary key)")
    db.execute("create table R(b int primary key)")
    values = ", ".join(f"({i})" for i in range(rows))
    db.execute(f"insert into L values {values}")
    db.execute(f"insert into R values {values}")
    return db


def test_cancellation_latency_mid_scan():
    """Gate: a deadline kills the 490k-pair join soon after expiring —
    the overshoot (extra time past the deadline) must be a small
    fraction of the uncancelled runtime."""
    db = build_join_db()
    gateway = EnforcementGateway(db, workers=1)
    try:
        # uncancelled baseline per engine
        for engine in ("row", "vectorized"):
            full = gateway.execute(
                QueryRequest(user=None, mode="open", sql=BIG_JOIN_SQL,
                             engine=engine)
            )
            assert full.ok
            baseline_s = full.timing.total_s

            start = time.perf_counter()
            killed = gateway.execute(
                QueryRequest(user=None, mode="open", sql=BIG_JOIN_SQL,
                             engine=engine, deadline=DEADLINE_S)
            )
            elapsed = time.perf_counter() - start
            assert killed.status is RequestStatus.TIMEOUT, killed.status
            overshoot = max(0.0, elapsed - DEADLINE_S)
            EXPERIMENT.add(
                f"mid-scan kill, {engine} engine",
                uncancelled_ms=f"{baseline_s * 1000:.0f}",
                deadline_ms=f"{DEADLINE_S * 1000:.0f}",
                overshoot_ms=f"{overshoot * 1000:.1f}",
            )
            # the kill must not cost anywhere near a full execution
            assert elapsed < max(1.0, baseline_s * 3)
    finally:
        gateway.shutdown(drain=False)


def test_cancellation_latency_mid_inference():
    """Gate: the pathological validity check dies at its deadline while
    concurrent healthy sessions keep serving."""
    db = build_pathological_db()
    gateway = EnforcementGateway(db, workers=3)
    try:
        poison = gateway.submit(
            QueryRequest(user="11", sql=PATHOLOGICAL_SQL, deadline=1.0)
        )
        wait_until = time.time() + 10
        while gateway.metrics.gauge("workers_busy").value < 1:
            assert time.time() < wait_until
            time.sleep(0.001)
        served = 0
        start = time.perf_counter()
        while not poison.done():
            response = gateway.execute(
                QueryRequest(user="11", sql="select * from MyGrades",
                             deadline=5.0)
            )
            assert response.ok, response.error
            served += 1
        elapsed = time.perf_counter() - start
        response = poison.result(timeout=5)
        assert response.status is RequestStatus.TIMEOUT
        assert served >= 3
        EXPERIMENT.add(
            "mid-inference kill (self-join blowup, deadline 1.0s)",
            healthy_served_meanwhile=served,
            healthy_rate_per_s=f"{served / max(elapsed, 1e-9):.0f}",
        )
    finally:
        gateway.shutdown(drain=False)


def test_chaos_sweep_gate(tmp_path):
    """Acceptance gate: >=200 randomized requests with faults armed at
    six serving-path points — 0 hangs, 0 partial or unauthorized
    answers, every request audited exactly once."""
    import random

    chaos = ChaosInjector(seed=16)
    db = Database.open(str(tmp_path / "e16-data"), injector=chaos)
    install_university(db)
    db.execute("create table Ledger(id int primary key, v int)")

    rng = random.Random(16)
    users = ("11", "12", "13", "14")
    reads = [
        lambda u: f"select grade from Grades where student_id = '{u}'",
        lambda u: "select * from MyGrades",
        lambda u: "select * from Grades",  # rejected by the checker
    ]
    requests = []
    for i in range(SWEEP_REQUESTS):
        if rng.random() < 0.25:
            requests.append(QueryRequest(
                user=None, mode="open", tag=f"e16-{i}",
                sql=f"insert into Ledger values ({i}, {i})",
            ))
        else:
            user = users[rng.randrange(len(users))]
            requests.append(QueryRequest(
                user=user, sql=reads[rng.randrange(len(reads))](user),
                tag=f"e16-{i}",
                deadline=0.001 if rng.random() < 0.1 else None,
            ))
    oracle = {
        r.tag: serial_outcome(db, r)
        for r in requests
        if not r.sql.lstrip().lower().startswith("insert")
    }

    gateway = EnforcementGateway(
        db, workers=4, queue_size=SWEEP_REQUESTS + 8, audit_capacity=4096,
        default_deadline=30.0, retry_backoff=0.001,
        breaker_cooldown=0.05, chaos=chaos, retry_seed=16,
    )
    chaos.inject("gateway.dequeue", "delay", probability=0.2, delay_s=0.002)
    chaos.inject("gateway.before_check", "transient", probability=0.15)
    chaos.inject("gateway.before_execute", "worker-crash", probability=0.05)
    chaos.inject("gateway.before_commit", "io-error", probability=0.25)
    chaos.inject("wal.before_fsync", "io-error", probability=0.15)
    chaos.inject("wal.before_append", "delay", probability=0.1, delay_s=0.001)

    hangs = partials = unauthorized = 0
    responses = []
    start = time.perf_counter()
    try:
        pendings = []
        for request in requests:
            try:
                pendings.append((request, gateway.submit(request)))
            except ServiceOverloaded:
                continue
            if rng.random() < 0.08:
                timer = threading.Timer(rng.random() * 0.01,
                                        pendings[-1][1].cancel)
                timer.daemon = True
                timer.start()
        for request, pending in pendings:
            try:
                responses.append((request, pending.result(timeout=60)))
            except PendingTimeout:
                hangs += 1
        elapsed = time.perf_counter() - start
    finally:
        gateway.shutdown(drain=False)

    for request, response in responses:
        assert response.status in TERMINAL
        expected = oracle.get(request.tag)
        if expected is None:
            continue
        status, rows = expected
        if response.status is RequestStatus.OK:
            if status != "ok":
                unauthorized += 1
            elif response.result.as_multiset() != rows:
                partials += 1

    audited = {}
    for record in gateway.audit.tail(4096):
        if record.tag and record.tag.startswith("e16-"):
            audited[record.tag] = audited.get(record.tag, 0) + 1
    audit_dups = sum(1 for count in audited.values() if count != 1)
    audit_missing = SWEEP_REQUESTS - len(audited)

    EXPERIMENT.add(
        f"chaos sweep, {SWEEP_REQUESTS} requests, 6 fault points "
        f"(gate: 0 hangs / 0 partials / audit exactly-once)",
        fault_firings=sum(chaos.stats().values()),
        hangs=hangs,
        partial_answers=partials,
        unauthorized_answers=unauthorized,
        audit_anomalies=audit_dups + audit_missing,
        throughput_rps=f"{len(responses) / elapsed:.0f}",
    )
    assert hangs == 0
    assert partials == 0
    assert unauthorized == 0
    assert audit_dups == 0 and audit_missing == 0


def test_degraded_mode_trip_and_recovery(tmp_path):
    """Gate: WAL commit faults trip the breaker to read-only; reads
    keep serving while open; the half-open probe recovers writes."""
    chaos = ChaosInjector(seed=9)
    db = Database.open(str(tmp_path / "e16-breaker"), injector=chaos)
    db.execute("create table Ledger(id int primary key, v int)")
    gateway = EnforcementGateway(
        db, workers=2, breaker_threshold=2, breaker_cooldown=0.05,
        chaos=chaos,
    )
    try:
        chaos.inject("gateway.before_commit", "io-error", probability=1.0)
        writes_to_trip = 0
        while gateway.breaker.state != "open":
            response = gateway.execute(QueryRequest(
                user=None, mode="open",
                sql=f"insert into Ledger values ({writes_to_trip}, 0)",
            ))
            assert response.status is RequestStatus.DEGRADED
            writes_to_trip += 1
            assert writes_to_trip < 10

        reads_while_open = 0
        for _ in range(20):
            response = gateway.execute(QueryRequest(
                user=None, mode="open", sql="select count(*) from Ledger",
            ))
            assert response.ok
            reads_while_open += 1

        chaos.clear("gateway.before_commit")
        time.sleep(0.06)
        recover_start = time.perf_counter()
        probe = gateway.execute(QueryRequest(
            user=None, mode="open", sql="insert into Ledger values (100, 1)",
        ))
        recovery_s = time.perf_counter() - recover_start
        assert probe.ok
        assert gateway.breaker.state == "closed"

        stats = gateway.stats()
        EXPERIMENT.add(
            "WAL-fault degraded mode (gate: reads serve while open; probe recovers)",
            writes_to_trip=writes_to_trip,
            reads_served_while_open=reads_while_open,
            breaker_trips=stats["breaker_trips"],
            breaker_recoveries=stats["breaker_recoveries"],
            probe_recovery_ms=f"{recovery_s * 1000:.1f}",
        )
        assert stats["breaker_trips"] == 1
        assert stats["breaker_recoveries"] == 1
    finally:
        gateway.shutdown(drain=False)
