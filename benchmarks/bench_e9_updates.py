"""E9 — update-authorization throughput (§4.4).

Paper claim: "checking validity of updates is a simpler task than
validity checking for queries.  We consider updates individually, and
checking if the insertion/deletion/update of a particular tuple is
authorized only requires evaluation of a (fully instantiated)
predicate".

We measure per-statement throughput of authorized INSERT/UPDATE/DELETE
against the unchecked (open-mode) baseline.  Shape: the authorization
overhead is a small constant factor — far below a query validity check
on the same session.
"""

import pytest

from repro.sql import parse_query
from repro.nontruman.checker import ValidityChecker
from repro.workloads.university import UniversityConfig, build_university
from repro.bench import Experiment, time_callable

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E9",
        title="update authorization overhead (per-tuple predicate checks)",
        claim="update checks are constant-cost predicate evaluations, far cheaper than query checks",
    )
)

BATCH = 200


@pytest.fixture()
def db():
    database = build_university(UniversityConfig(students=30, courses=30, seed=12))
    database.execute(
        "authorize insert on Registered where Registered.student_id = $user_id"
    )
    database.execute(
        "authorize delete on Registered where Registered.student_id = $user_id"
    )
    database.execute(
        "authorize update on Students(name) "
        "where old(Students.student_id) = $user_id"
    )
    return database


def insert_delete_batch(conn, courses):
    for course in courses:
        conn.execute(f"insert into Registered values ('11', '{course}')")
    for course in courses:
        conn.execute(
            f"delete from Registered where student_id = '11' "
            f"and course_id = '{course}'"
        )


def test_update_authorization_throughput(benchmark, db):
    registered = {
        row[0]
        for row in db.execute(
            "select course_id from Registered where student_id = '11'"
        ).rows
    }
    free_courses = [
        row[0]
        for row in db.execute("select course_id from Courses").rows
        if row[0] not in registered
    ][:20]
    assert free_courses

    open_conn = db.connect(user_id="11", mode="open")
    checked_conn = db.connect(user_id="11", mode="non-truman")

    open_s, _ = time_callable(lambda: insert_delete_batch(open_conn, free_courses), repeat=5)
    checked_s, _ = time_callable(
        lambda: insert_delete_batch(checked_conn, free_courses), repeat=5
    )

    # name updates
    update_open_s, _ = time_callable(
        lambda: open_conn.execute("update Students set name = 'A' where student_id = '11'"),
        repeat=5,
    )
    update_checked_s, _ = time_callable(
        lambda: checked_conn.execute(
            "update Students set name = 'A' where student_id = '11'"
        ),
        repeat=5,
    )

    # reference point: a query validity check on the same session
    query_check_s, _ = time_callable(
        lambda: ValidityChecker(db).check(
            parse_query("select grade from Grades where student_id = '11'"),
            checked_conn.session,
        ),
        repeat=5,
    )

    benchmark(lambda: insert_delete_batch(checked_conn, free_courses))

    per_stmt_open = open_s / (len(free_courses) * 2)
    per_stmt_checked = checked_s / (len(free_courses) * 2)
    EXPERIMENT.add(
        "insert+delete per statement",
        open_us=per_stmt_open * 1e6,
        authorized_us=per_stmt_checked * 1e6,
        overhead=f"{per_stmt_checked / per_stmt_open:.2f}x",
        query_check_us=query_check_s * 1e6,
    )
    EXPERIMENT.add(
        "update statement",
        open_us=update_open_s * 1e6,
        authorized_us=update_checked_s * 1e6,
        overhead=f"{update_checked_s / update_open_s:.2f}x",
        query_check_us=query_check_s * 1e6,
    )
    # §4.4's "simpler task" claim: authorized DML costs far less than a
    # query validity check.
    assert per_stmt_checked < query_check_s
