"""E10 — access-pattern views and dependent joins (§6).

Paper: "the above query can be evaluated by stepping through each tuple
of r and finding matching tuples of s; thus the query (r ⋈ s) is valid
since it can be computed from available authorized information.  The
above technique for joining r and s is called a *dependent join*."

We measure, as the driving relation grows:

* validity-check latency for the dependent-join inference;
* execution cost of the dependent-join witness (one view invocation
  per distinct join key) vs the unrestricted hash join the open mode
  runs — quantifying the price of the access-pattern restriction.
"""

import pytest

from repro.sql import parse_query
from repro.nontruman.checker import ValidityChecker
from repro.workloads.bank import BankConfig, build_bank
from repro.bench import Experiment, time_callable

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E10",
        title="access-pattern views: dependent-join inference and execution",
        claim="r ⋈ s valid via per-tuple $$-bound view calls; costs one view call per key",
    )
)

SIZES = [20, 60, 150]

QUERY = (
    "select c.name, a.balance from Customers c, Accounts a "
    "where c.cust_id = a.cust_id"
)


def build(customers: int):
    db = build_bank(BankConfig(customers=customers, accounts_per_customer=2, seed=3))
    # auditor: may see all customers, and accounts only by customer id
    db.execute(
        "create authorization view AccountsByCustomer as "
        "select * from Accounts where cust_id = $$cid"
    )
    db.execute("create authorization view AllCustomers as select * from Customers")
    db.grant("AccountsByCustomer", "auditor")
    db.grant("AllCustomers", "auditor")
    return db


@pytest.mark.parametrize("customers", SIZES)
def test_dependent_join(benchmark, customers):
    db = build(customers)
    session = db.connect(user_id="auditor").session
    query = parse_query(QUERY)
    checker = ValidityChecker(db)

    check_s, _ = time_callable(lambda: checker.check(query, session), repeat=5)
    decision = checker.check(query, session)
    assert decision.unconditional, decision.describe()
    assert any(step.rule == "AP" for step in decision.trace)

    open_exec_s, _ = time_callable(lambda: db.execute(QUERY), repeat=5)
    witness_exec_s, _ = time_callable(
        lambda: db.run_plan(decision.witness, session), repeat=5
    )

    # correctness of the dependent join at every size
    truth = db.execute(QUERY)
    witness_rows = db.run_plan(decision.witness, session)
    assert sorted(truth.rows) == sorted(witness_rows.rows)

    benchmark(lambda: db.run_plan(decision.witness, session))

    EXPERIMENT.add(
        f"{customers} customers",
        check_ms=check_s * 1000,
        hash_join_ms=open_exec_s * 1000,
        dependent_join_ms=witness_exec_s * 1000,
        dj_premium=f"{witness_exec_s / open_exec_s:.1f}x",
        rows=len(truth),
    )


def test_direct_instantiation(benchmark):
    """$$ parameter pinned by the query itself: no dependent join."""
    db = build(40)
    session = db.connect(user_id="auditor").session
    cust = db.execute("select cust_id from Customers order by cust_id limit 1").scalar()
    query = parse_query(
        f"select balance from Accounts where cust_id = '{cust}'"
    )
    checker = ValidityChecker(db)
    decision = benchmark(lambda: checker.check(query, session))
    assert decision.unconditional
    witness_rows = db.run_plan(decision.witness, session)
    truth = db.execute(
        f"select balance from Accounts where cust_id = '{cust}'"
    )
    assert sorted(witness_rows.rows) == sorted(truth.rows)
    EXPERIMENT.add(
        "pinned $$ (no dependent join)",
        check_ms="-",
        hash_join_ms="-",
        dependent_join_ms="-",
        dj_premium="1.0x",
        rows=len(truth),
    )
