"""E6 — misleading answers: Truman vs Non-Truman over a query workload (§3.3).

Paper claim: under the Truman model, queries like ``select avg(grade)
from Grades`` silently return answers computed over the user's
restricted view ("giving her an impression that her average grade is
the same as the overall average grade"); the Non-Truman model "removes
this limitation ... either the user query is executed without any
modification or rejected outright".

Over a labeled student-portal workload we tabulate, per model:

* correct answers (equal to the unrestricted ground truth);
* **misleading** answers (returned, but different from ground truth);
* rejections.

Shape to reproduce: Truman returns misleading answers for the
aggregate-style queries and *never rejects*; Non-Truman never returns a
misleading answer — every accepted query's answer equals ground truth.
"""

import pytest

from repro.errors import QueryRejectedError
from repro.workloads import UniversityConfig, build_university, student_query_mix
from repro.bench import Experiment

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E6",
        title="answer quality per access-control model",
        claim="Truman: misleading answers, no rejections; Non-Truman: no misleading answers",
    )
)

WORKLOAD_SIZE = 120


@pytest.fixture(scope="module")
def env():
    db = build_university(UniversityConfig(students=60, courses=8, seed=8))
    db.set_truman_view("Grades", "MyGrades")
    db.vpd_policies.add_policy("Registered", "student_id = $user_id")
    queries = student_query_mix(db, "11", count=WORKLOAD_SIZE, seed=13)
    return db, queries


def classify(db, conn, sql):
    """-> 'correct' | 'misleading' | 'rejected'"""
    try:
        answer = conn.query(sql)
    except QueryRejectedError:
        return "rejected"
    truth = db.execute(sql)
    if sorted(map(repr, answer.rows)) == sorted(map(repr, truth.rows)):
        return "correct"
    return "misleading"


def run_model(db, queries, mode):
    conn = db.connect(user_id="11", mode=mode)
    tally = {"correct": 0, "misleading": 0, "rejected": 0}
    for query in queries:
        tally[classify(db, conn, query.sql)] += 1
    return tally


def test_truman_answer_quality(benchmark, env):
    db, queries = env
    tally = benchmark.pedantic(
        lambda: run_model(db, queries, "truman"), rounds=3, iterations=1
    )
    EXPERIMENT.add(
        "Truman",
        correct=tally["correct"],
        misleading=tally["misleading"],
        rejected=tally["rejected"],
        total=WORKLOAD_SIZE,
    )
    assert tally["rejected"] == 0  # Truman never rejects
    assert tally["misleading"] > 0  # ... and that is the problem


def test_nontruman_answer_quality(benchmark, env):
    db, queries = env
    tally = benchmark.pedantic(
        lambda: run_model(db, queries, "non-truman"), rounds=3, iterations=1
    )
    EXPERIMENT.add(
        "Non-Truman",
        correct=tally["correct"],
        misleading=tally["misleading"],
        rejected=tally["rejected"],
        total=WORKLOAD_SIZE,
    )
    # The paper's guarantee: accepted queries run unmodified, so no
    # accepted answer can deviate from ground truth.
    assert tally["misleading"] == 0
    assert tally["correct"] > 0
    assert tally["rejected"] > 0  # unauthorized/misleading queries bounce


def test_open_baseline(benchmark, env):
    db, queries = env
    tally = benchmark.pedantic(
        lambda: run_model(db, queries, "open"), rounds=3, iterations=1
    )
    EXPERIMENT.add(
        "open (no access control)",
        correct=tally["correct"],
        misleading=tally["misleading"],
        rejected=tally["rejected"],
        total=WORKLOAD_SIZE,
    )
    assert tally == {"correct": WORKLOAD_SIZE, "misleading": 0, "rejected": 0}
