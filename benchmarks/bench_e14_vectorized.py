"""E14 — vectorized batch executor vs the row engine.

The paper's enforcement models rewrite queries and then *execute* them;
every measured overhead sits on top of executor cost.  E14 quantifies
the columnar batch executor (:mod:`repro.engine.vectorized`) against
the row-at-a-time oracle on the bank and university workloads:

* executor throughput — plans are built once, then executed repeatedly
  through ``Database.run_plan`` under each engine, so the comparison
  isolates execution (parse/bind/rewrite cost is identical for both);
* differential correctness — every benchmarked query is bag-compared
  between the engines; the acceptance bar is **zero** mismatches;
* acceptance bar — ≥3× speedup on index-pushable point scans and ≥3×
  on the scan/join-heavy basket overall; aggregation-heavy queries are
  reported (hash aggregation is accumulator-bound) but not gated;
* gateway parity — the same requests through the concurrent
  enforcement gateway with ``QueryRequest.engine`` switching engines,
  again with zero result mismatches.
"""

from collections import Counter

import pytest

from repro.bench import Experiment, time_callable
from repro.db import SessionContext
from repro.service import EnforcementGateway, QueryRequest
from repro.sql.parser import parse_statement
from repro.workloads.bank import BankConfig, build_bank, grant_teller
from repro.workloads.university import UniversityConfig, build_university

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E14",
        title="vectorized batch executor vs row engine",
        claim="batch execution with compiled predicates and index pushdown beats tuple-at-a-time by >=3x on scan/join workloads, with identical results",
    )
)

#: repetitions of each plan inside one timed sample
INNER_RUNS = 5

#: (label, sql, category); category "gated" queries participate in the
#: >=3x scan/join basket, "reported" ones are informational
BANK_QUERIES = [
    (
        "point scan via pk index",
        "select cust_id, balance from Accounts where acct_id = 'A10807'",
        "pushable",
    ),
    (
        "filter scan (range + <>)",
        "select acct_id from Accounts where balance > 20000.0 and branch <> 'Harbor'",
        "gated",
    ),
    (
        "equi-join accounts x customers",
        "select c.name, a.balance from Accounts a, Customers c "
        "where a.cust_id = c.cust_id and a.branch = 'Downtown'",
        "gated",
    ),
    (
        "3-way predicate scan",
        "select acct_id, balance from Accounts "
        "where branch = 'Campus' and balance between 5000.0 and 45000.0",
        "gated",
    ),
    (
        "group-by aggregation",
        "select branch, count(*), sum(balance), avg(balance) "
        "from Accounts group by branch",
        "reported",
    ),
]

UNIVERSITY_QUERIES = [
    (
        "point scan via pk index",
        "select name, type from Students where student_id = '57'",
        "pushable",
    ),
    (
        "grades filter scan",
        "select student_id, grade from Grades where grade >= 3.0",
        "gated",
    ),
    (
        "students x grades join",
        "select s.name, g.grade from Students s, Grades g "
        "where s.student_id = g.student_id and g.grade > 2.0",
        "gated",
    ),
    (
        "3-way join with filter",
        "select s.name, c.name from Students s, Registered r, Courses c "
        "where s.student_id = r.student_id and r.course_id = c.course_id "
        "and s.type = 'FullTime'",
        "gated",
    ),
    (
        "per-course aggregation",
        "select course_id, count(*), avg(grade) from Grades group by course_id",
        "reported",
    ),
]


@pytest.fixture(scope="module")
def bank():
    return build_bank(BankConfig(customers=400, accounts_per_customer=4, seed=7))


@pytest.fixture(scope="module")
def university():
    return build_university(UniversityConfig(students=150, courses=10, seed=21))


def measure_engines(db, sql):
    """(row_s, vec_s, mismatch) for one query, plan built once."""
    session = SessionContext()
    plan = db.plan_query(parse_statement(sql), session, None)
    row_result = db.run_plan(plan, session, engine="row")
    vec_result = db.run_plan(plan, session, engine="vectorized")
    mismatch = Counter(row_result.rows) != Counter(vec_result.rows)
    row_s, _ = time_callable(
        lambda: [db.run_plan(plan, session, engine="row") for _ in range(INNER_RUNS)]
    )
    vec_s, _ = time_callable(
        lambda: [
            db.run_plan(plan, session, engine="vectorized")
            for _ in range(INNER_RUNS)
        ]
    )
    return row_s / INNER_RUNS, vec_s / INNER_RUNS, mismatch


def run_workload(db, queries, workload_name):
    mismatches = 0
    basket_row = basket_vec = 0.0
    pushable_speedups = []
    for label, sql, category in queries:
        row_s, vec_s, mismatch = measure_engines(db, sql)
        mismatches += mismatch
        speedup = row_s / vec_s if vec_s else float("inf")
        if category in ("pushable", "gated"):
            basket_row += row_s
            basket_vec += vec_s
        if category == "pushable":
            pushable_speedups.append(speedup)
        EXPERIMENT.add(
            f"{workload_name}: {label}",
            row_ms=f"{row_s * 1000:.2f}",
            vectorized_ms=f"{vec_s * 1000:.2f}",
            speedup=f"{speedup:.1f}x",
            gated="yes" if category != "reported" else "no",
            mismatch=mismatch,
        )
    basket_speedup = basket_row / basket_vec
    EXPERIMENT.add(
        f"{workload_name}: scan/join basket",
        row_ms=f"{basket_row * 1000:.2f}",
        vectorized_ms=f"{basket_vec * 1000:.2f}",
        speedup=f"{basket_speedup:.1f}x",
        gated="yes",
        mismatch=0,
    )
    return mismatches, basket_speedup, pushable_speedups


def test_bank_standalone(benchmark, bank):
    mismatches, basket, pushable = run_workload(bank, BANK_QUERIES, "bank")
    assert mismatches == 0
    assert basket >= 3.0, f"bank scan/join basket speedup {basket:.1f}x < 3x"
    assert all(s >= 3.0 for s in pushable), pushable

    session = SessionContext()
    plan = bank.plan_query(parse_statement(BANK_QUERIES[2][1]), session, None)
    benchmark(lambda: bank.run_plan(plan, session, engine="vectorized"))


def test_university_standalone(benchmark, university):
    mismatches, basket, pushable = run_workload(
        university, UNIVERSITY_QUERIES, "university"
    )
    assert mismatches == 0
    assert basket >= 3.0, f"university basket speedup {basket:.1f}x < 3x"
    assert all(s >= 3.0 for s in pushable), pushable

    session = SessionContext()
    plan = university.plan_query(
        parse_statement(UNIVERSITY_QUERIES[2][1]), session, None
    )
    benchmark(lambda: university.run_plan(plan, session, engine="vectorized"))


def test_index_pushdown_scans_fewer_rows(bank):
    """The pushable point scan touches only the probed rows."""
    from repro.db import _QueryContext
    from repro.engine import make_executor

    session = SessionContext()
    sql = BANK_QUERIES[0][1]
    plan = bank.plan_query(parse_statement(sql), session, None)

    row_exec = make_executor("row", _QueryContext(bank, session, None))
    vec_exec = make_executor("vectorized", _QueryContext(bank, session, None))
    row_rows = row_exec.execute(plan)
    vec_rows = vec_exec.execute(plan)

    assert Counter(row_rows) == Counter(vec_rows)
    assert vec_exec.index_probes == 1
    assert vec_exec.rows_scanned <= 1
    assert row_exec.rows_scanned >= 1000
    EXPERIMENT.add(
        "bank: point-scan instrumentation",
        row_ms=None,
        vectorized_ms=None,
        speedup=None,
        gated="no",
        mismatch=0,
        rows_scanned_row=row_exec.rows_scanned,
        rows_scanned_vectorized=vec_exec.rows_scanned,
        index_probes=vec_exec.index_probes,
    )


def test_gateway_engine_switch(benchmark, bank):
    """The same requests through the enforcement gateway under both
    engines: identical status and result multisets, zero mismatches."""
    grant_teller(bank, "teller1")
    open_sqls = [sql for _, sql, _ in BANK_QUERIES]
    truman_sqls = [
        "select acct_id, balance from Accounts where balance > 30000.0",
        "select branch, count(*) from Accounts group by branch",
    ]

    def requests(engine):
        reqs = [
            QueryRequest(user=None, sql=sql, mode="open", engine=engine)
            for sql in open_sqls
        ]
        reqs += [
            QueryRequest(user="teller1", sql=sql, mode="truman", engine=engine)
            for sql in truman_sqls
        ]
        return reqs

    gateway = EnforcementGateway(bank, workers=4, queue_size=64)
    try:
        row_responses = gateway.execute_many(requests("row"))
        vec_responses = gateway.execute_many(requests("vectorized"))
        mismatches = 0
        for row_resp, vec_resp in zip(row_responses, vec_responses):
            if row_resp.status is not vec_resp.status:
                mismatches += 1
            elif Counter(row_resp.rows) != Counter(vec_resp.rows):
                mismatches += 1
        assert mismatches == 0

        row_s, _ = time_callable(lambda: gateway.execute_many(requests("row")))
        vec_s, _ = time_callable(
            lambda: gateway.execute_many(requests("vectorized"))
        )
        count = len(requests("row"))
        EXPERIMENT.add(
            "gateway: mixed open/truman requests",
            row_ms=f"{row_s * 1000:.2f}",
            vectorized_ms=f"{vec_s * 1000:.2f}",
            speedup=f"{row_s / vec_s:.1f}x",
            gated="no",
            mismatch=mismatches,
            throughput_rps=f"{count / vec_s:.0f}",
        )
        benchmark(lambda: gateway.execute_many(requests("vectorized")))
    finally:
        gateway.shutdown(drain=False)
