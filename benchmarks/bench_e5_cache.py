"""E5 — validity-decision caching and prepared statements (§5.6).

Paper claims: "If the same query is reissued multiple times in a
session, we can cache the results of the validity check" and "for
ODBC/JDBC prepared statements, we can analyze the query without the
actual parameters ... and come up with a cheap test that is used each
time the query is executed".

We measure cold vs cached check latency, and the amortized per-query
cost of a prepared-statement-style workload (same skeleton, per-user
constants) with the cache on and off.
"""

import pytest

from repro.sql import parse_query
from repro.nontruman.checker import ValidityChecker
from repro.workloads.university import UniversityConfig, build_university, student_ids
from repro.bench import Experiment, time_callable

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E5",
        title="validity-check caching / prepared statements",
        claim="repeat checks are near-free from the cache; skeleton reuse amortizes",
    )
)


@pytest.fixture(scope="module")
def db():
    return build_university(UniversityConfig(students=100, courses=10, seed=4))


def test_cold_vs_cached(benchmark, db):
    session = db.connect(user_id="11").session
    query = parse_query("select grade from Grades where student_id = '11'")

    cold_checker = ValidityChecker(db, use_cache=False)
    cold_s, _ = time_callable(lambda: cold_checker.check(query, session), repeat=5)

    warm_checker = ValidityChecker(db, use_cache=True)
    warm_checker.check(query, session)  # populate
    warm_s, _ = time_callable(lambda: warm_checker.check(query, session), repeat=5)

    benchmark(lambda: warm_checker.check(query, session))

    assert warm_checker.check(query, session).from_cache
    EXPERIMENT.add(
        "repeat same query",
        cold_us=cold_s * 1e6,
        cached_us=warm_s * 1e6,
        speedup=f"{cold_s / warm_s:.0f}x",
    )
    assert warm_s < cold_s


def test_prepared_statement_workload(benchmark, db):
    """Each user issues the same application query with her own id —
    the §5.6 prepared-statement scenario."""
    users = student_ids(db)[:40]

    def run_workload(use_cache: bool) -> float:
        db.validity_cache.clear()
        db.validity_cache.hits = db.validity_cache.misses = 0
        checker = ValidityChecker(db, use_cache=use_cache)

        def body():
            for user in users:
                session = db.connect(user_id=user).session
                query = parse_query(
                    f"select grade from Grades where student_id = '{user}'"
                )
                decision = checker.check(query, session)
                assert decision.valid
        seconds, _ = time_callable(body, repeat=3)
        return seconds

    uncached_s = run_workload(False)
    cached_s = run_workload(True)

    benchmark(lambda: run_workload(True))

    EXPERIMENT.add(
        f"{len(users)}-user prepared workload",
        uncached_ms=uncached_s * 1000,
        cached_ms=cached_s * 1000,
        speedup=f"{uncached_s / cached_s:.1f}x",
        cache_entries=db.validity_cache.size,
    )
    # each user gets her own (user, skeleton) entry; repeats hit
    assert db.validity_cache.hits > 0


def test_conditional_decisions_respect_data_changes(benchmark, db):
    """Caching must not serve stale conditional decisions (E5 safety)."""
    session = db.connect(user_id="11").session
    checker = ValidityChecker(db, use_cache=True)
    my_course = db.execute(
        "select course_id from Registered where student_id = '11' "
        "order by course_id limit 1"
    ).scalar()
    query = parse_query(f"select * from Grades where course_id = '{my_course}'")

    first = checker.check(query, session)
    assert first.conditional

    def checked_roundtrip():
        db.execute(
            f"delete from Registered where student_id = '11' "
            f"and course_id = '{my_course}'"
        )
        after_delete = checker.check(query, session)
        db.execute(f"insert into Registered values ('11', '{my_course}')")
        after_restore = checker.check(query, session)
        return after_delete, after_restore

    after_delete, after_restore = benchmark(checked_roundtrip)
    assert not after_delete.valid
    assert after_restore.valid
    EXPERIMENT.add(
        "conditional decision after DML",
        stale_served="no",
        revalidated="yes",
    )
