"""E7 — inference-rule coverage tiers (§5.5).

Paper: the rule set is sound but incomplete; each rule family widens
the class of accepted queries.  "We believe that our inference rules
are likely to handle most common queries."

Over the authorized portion of the student-portal workload — every
query in it IS answerable from the user's views — we measure the
acceptance rate under increasing rule tiers:

* **basic** — U1/U2 only (the Motro / Rosenthal-et-al. notion of
  unconditional validity via plain rewriting);
* **+U3** — adds integrity-constraint subexpression inference;
* **+C3 (full)** — adds conditional validity, the paper's novel class.

Shape: acceptance strictly grows by tier, reaching 100% on this
workload at the full rule set; rejected-but-answerable queries at lower
tiers quantify what each rule family buys.
"""

import pytest

from repro.sql import parse_query
from repro.nontruman.checker import ValidityChecker
from repro.workloads import UniversityConfig, build_university, student_query_mix
from repro.bench import Experiment

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E7",
        title="acceptance rate by inference-rule tier",
        claim="each rule family (U2 < +U3 < +C3) strictly widens accepted queries",
    )
)

TIERS = {
    "U1/U2 only": dict(allow_u3=False, allow_conditional=False),
    "+U3": dict(allow_u3=True, allow_conditional=False),
    "+C3 (full)": dict(allow_u3=True, allow_conditional=True),
}


@pytest.fixture(scope="module")
def env():
    db = build_university(UniversityConfig(students=60, courses=8, seed=21))
    queries = [
        q
        for q in student_query_mix(db, "11", count=200, seed=3)
        if q.label == "authorized"
    ]
    session = db.connect(user_id="11").session
    return db, session, queries


@pytest.mark.parametrize("tier", list(TIERS))
def test_rule_tier_acceptance(benchmark, env, tier):
    db, session, queries = env
    checker = ValidityChecker(db, **TIERS[tier])

    def run():
        accepted = by_needed_tier = 0
        per_tier = {"U2": [0, 0], "U3": [0, 0], "C3": [0, 0]}
        for query in queries:
            decision = checker.check(parse_query(query.sql), session)
            bucket = per_tier[query.tier]
            bucket[1] += 1
            if decision.valid:
                accepted += 1
                bucket[0] += 1
        return accepted, per_tier

    accepted, per_tier = benchmark.pedantic(run, rounds=3, iterations=1)
    EXPERIMENT.add(
        tier,
        accepted=accepted,
        total=len(queries),
        rate=f"{accepted / len(queries):.0%}",
        u2_queries=f"{per_tier['U2'][0]}/{per_tier['U2'][1]}",
        u3_queries=f"{per_tier['U3'][0]}/{per_tier['U3'][1]}",
        c3_queries=f"{per_tier['C3'][0]}/{per_tier['C3'][1]}",
    )

    # All tiers accept every U2-answerable query.
    assert per_tier["U2"][0] == per_tier["U2"][1]
    if tier == "U1/U2 only":
        assert per_tier["U3"][0] == 0 and per_tier["C3"][0] == 0
    if tier == "+U3":
        assert per_tier["U3"][0] == per_tier["U3"][1]
        assert per_tier["C3"][0] == 0
    if tier == "+C3 (full)":
        # the paper's full rule set handles the whole answerable workload
        assert accepted == len(queries)
