"""E13 — concurrent enforcement gateway (repro.service).

The paper (§2) places enforcement *inside* the database server, which
serves many user sessions at once; §5.6 motivates decision caching by
"queries [that] are repeatedly executed".  E13 measures the
reproduction's gateway under that regime: a closed-loop, multi-user,
mixed Truman/Non-Truman workload dispatched over a worker pool.

Measured here:

* correctness — every concurrent decision (accept/reject) and every
  result multiset matches serial execution of the same requests;
* shared validity-cache hit rate and latency percentiles under load;
* backpressure — admission beyond the bounded queue is rejected with a
  structured ``ServiceOverloaded``, and admitted work still completes;
* deadlines — an expired request yields a structured TIMEOUT response
  without wedging a worker.
"""

import pytest

from repro.errors import QueryRejectedError, ServiceOverloaded
from repro.service import EnforcementGateway, QueryRequest, RequestStatus
from repro.workloads.university import (
    UniversityConfig,
    build_university,
    student_ids,
)
from repro.bench import Experiment, time_callable

from benchmarks.conftest import register_experiment

EXPERIMENT = register_experiment(
    Experiment(
        id="E13",
        title="concurrent enforcement gateway (service layer)",
        claim="parallel enforcement preserves serial decisions; the shared cache amortizes checks",
    )
)

WORKERS = 4


@pytest.fixture(scope="module")
def db():
    return build_university(UniversityConfig(students=40, courses=8, seed=13))


def mixed_workload(db, per_user: int = 4) -> list[QueryRequest]:
    """≥100 requests mixing modes and accept/reject outcomes."""
    requests: list[QueryRequest] = []
    for user in student_ids(db)[:30]:
        requests += [
            # non-truman, unconditionally valid (U2), cacheable skeleton
            QueryRequest(
                user=user,
                sql=f"select grade from Grades where student_id = '{user}'",
            ),
            # non-truman, invalid — must be rejected, also cacheable
            QueryRequest(user=user, sql="select * from Grades"),
            # truman: silently rewritten against the user's views
            QueryRequest(
                user=user, sql="select grade from Grades", mode="truman"
            ),
            # open-mode control query
            QueryRequest(
                user=user, sql="select count(*) from Courses", mode="open"
            ),
        ][:per_user]
    return requests


def serial_outcome(db, request: QueryRequest):
    """(status, multiset of rows) of running one request on its own."""
    session = db.connect(user_id=request.user, mode=request.mode).session
    try:
        result = db.execute_query(
            request.sql, session=session, mode=request.mode
        )
    except QueryRejectedError:
        return ("rejected", None)
    return ("ok", result.as_multiset())


def test_mixed_workload_matches_serial(benchmark, db):
    """The acceptance run: ≥4 workers, ≥100 mixed requests, decisions
    and result multisets identical to serial execution."""
    requests = mixed_workload(db)
    assert len(requests) >= 100
    expected = [serial_outcome(db, r) for r in requests]
    serial_s, _ = time_callable(
        lambda: [serial_outcome(db, r) for r in requests], repeat=3
    )

    gateway = EnforcementGateway(db, workers=WORKERS, queue_size=len(requests))
    try:
        responses = gateway.execute_many(requests)  # warm + correctness run
        mismatches = 0
        for request, response, (status, rows) in zip(
            requests, responses, expected
        ):
            if response.status.value != status:
                mismatches += 1
            elif rows is not None and response.result.as_multiset() != rows:
                mismatches += 1
        assert mismatches == 0

        concurrent_s, _ = time_callable(
            lambda: gateway.execute_many(requests), repeat=3
        )
        benchmark(lambda: gateway.execute_many(requests))

        snap = gateway.stats()
        assert snap["cache_hit_rate"] > 0  # repeats hit the shared cache
        EXPERIMENT.add(
            f"{len(requests)}-request mixed workload, {WORKERS} workers",
            mismatches_vs_serial=mismatches,
            serial_ms=serial_s * 1000,
            gateway_ms=concurrent_s * 1000,
            throughput_rps=f"{len(requests) / concurrent_s:.0f}",
            cache_hit_rate=f"{snap['cache_hit_rate']:.2f}",
        )
        EXPERIMENT.add(
            "latency percentiles under load",
            p50_ms=f"{snap['latency_ms_p50']:.2f}",
            p95_ms=f"{snap['latency_ms_p95']:.2f}",
            p99_ms=f"{snap['latency_ms_p99']:.2f}",
        )
    finally:
        gateway.shutdown(drain=False)


def test_backpressure_bounds_admission(db):
    """Past the admission queue the gateway says no instead of hanging."""
    gateway = EnforcementGateway(db, workers=1, queue_size=4)
    blocker_released = False
    try:
        # Pin the only worker: DML needs the write lock, which we hold.
        gateway._rwlock.acquire_read()
        pinned = gateway.submit(
            QueryRequest(
                user=None,
                sql="insert into Courses values ('CS999', 'Overload')",
                mode="open",
            )
        )
        while gateway.metrics.gauge("workers_busy").value < 1:
            pass

        admitted = []
        rejected = 0
        probe = QueryRequest(
            user="11", sql="select count(*) from Courses", mode="open"
        )
        for _ in range(32):
            try:
                admitted.append(gateway.submit(probe))
            except ServiceOverloaded:
                rejected += 1
        assert rejected > 0  # bounded queue pushed back
        assert len(admitted) <= 4

        gateway._rwlock.release_read()
        blocker_released = True
        assert pinned.result(timeout=10).ok
        for pending in admitted:
            assert pending.result(timeout=10).ok  # admitted work completes
        db.execute("delete from Courses where course_id = 'CS999'")
        EXPERIMENT.add(
            "overload (1 worker pinned, queue=4, 32 offered)",
            admitted=len(admitted),
            rejected_with_ServiceOverloaded=rejected,
            admitted_completed="all",
        )
    finally:
        if not blocker_released:
            gateway._rwlock.release_read()
        gateway.shutdown(drain=False)


def test_deadline_exceeded_is_structured(benchmark, db):
    """An expired deadline produces a TIMEOUT response; the pool keeps
    serving afterwards (no wedged worker, no leaked connection)."""
    gateway = EnforcementGateway(db, workers=WORKERS, queue_size=16)
    try:
        expired = gateway.execute(
            QueryRequest(
                user="11",
                sql="select grade from Grades where student_id = '11'",
                deadline=0.0,
            )
        )
        assert expired.status is RequestStatus.TIMEOUT
        assert "deadline" in expired.error

        follow_up = QueryRequest(
            user="11", sql="select grade from Grades where student_id = '11'"
        )
        response = benchmark(lambda: gateway.execute(follow_up))
        assert response.ok
        EXPERIMENT.add(
            "deadline=0 request",
            response_status=expired.status.value,
            pool_blocked="no",
            follow_up=response.status.value,
        )
    finally:
        gateway.shutdown(drain=False)
