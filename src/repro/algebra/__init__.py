"""Logical relational algebra: operators, translation from SQL, predicate tools.

Bound scalar expressions reuse the AST node types from
:mod:`repro.sql.ast`, with the invariant that every
:class:`~repro.sql.ast.ColumnRef` is qualified with the *binding name*
(table alias) of a relation instance in scope.  The binder/translator
establishes this invariant.
"""

from repro.algebra.ops import (
    Aggregate,
    Alias,
    Distinct,
    Join,
    Limit,
    Operator,
    OutCol,
    Project,
    Rel,
    Select,
    SetOperation,
    Sort,
    ViewRel,
)
from repro.algebra.translate import Translator, translate_query
from repro.algebra import expr as exprs

__all__ = [
    "Operator",
    "OutCol",
    "Alias",
    "Rel",
    "ViewRel",
    "Select",
    "Project",
    "Distinct",
    "Join",
    "Aggregate",
    "SetOperation",
    "Sort",
    "Limit",
    "Translator",
    "translate_query",
    "exprs",
]
