"""Predicate normalization.

Puts bound predicates into a canonical conjunct form used by the
implication prover and the view-matching engine:

* AND trees are flattened into conjunct lists;
* ``BETWEEN`` expands to two comparisons;
* ``NOT`` is pushed through comparisons, IS NULL, IN, BETWEEN;
* comparisons are oriented (column on the left where possible;
  column=column sides ordered lexicographically);
* double negation is eliminated; TRUE conjuncts are dropped.

Disjunctions are kept as atomic conjuncts (matched syntactically).
"""

from __future__ import annotations

from typing import Optional

from repro.sql import ast
from repro.algebra import expr as exprs

_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
_NEGATE = {"=": "<>", "<>": "=", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
_COMPARISONS = frozenset(_FLIP)


def normalize_predicate(pred: Optional[ast.Expr]) -> tuple[ast.Expr, ...]:
    """Normalize a predicate into a canonical tuple of conjuncts."""
    if pred is None:
        return ()
    result: list[ast.Expr] = []
    for conjunct in exprs.conjuncts(pred):
        result.extend(_normalize_conjunct(conjunct))
    # Deduplicate, preserving order.
    seen: set[ast.Expr] = set()
    unique = []
    for conjunct in result:
        if conjunct not in seen:
            seen.add(conjunct)
            unique.append(conjunct)
    return tuple(unique)


def _normalize_conjunct(conj: ast.Expr) -> list[ast.Expr]:
    conj = _push_not(conj)
    if isinstance(conj, ast.Literal) and conj.value is True:
        return []
    if isinstance(conj, ast.BinaryOp) and conj.op == "and":
        return _normalize_conjunct(conj.left) + _normalize_conjunct(conj.right)
    if isinstance(conj, ast.Between) and not conj.negated:
        return _normalize_conjunct(
            ast.BinaryOp(">=", conj.operand, conj.low)
        ) + _normalize_conjunct(ast.BinaryOp("<=", conj.operand, conj.high))
    if isinstance(conj, ast.BinaryOp) and conj.op in _COMPARISONS:
        return [_orient(conj)]
    if isinstance(conj, ast.InList) and not conj.negated and len(conj.items) == 1:
        return _normalize_conjunct(ast.BinaryOp("=", conj.operand, conj.items[0]))
    if isinstance(conj, ast.InList):
        # Canonicalize literal item order for stable matching.
        literals = [i for i in conj.items if isinstance(i, ast.Literal)]
        others = [i for i in conj.items if not isinstance(i, ast.Literal)]
        ordered = tuple(
            sorted(literals, key=lambda l: repr(l.value)) + others
        )
        return [ast.InList(conj.operand, ordered, conj.negated)]
    return [conj]


def _push_not(conj: ast.Expr) -> ast.Expr:
    if not (isinstance(conj, ast.UnaryOp) and conj.op == "not"):
        return conj
    inner = _push_not(conj.operand)
    if isinstance(inner, ast.UnaryOp) and inner.op == "not":
        return _push_not(inner.operand)
    if isinstance(inner, ast.BinaryOp) and inner.op in _NEGATE:
        return ast.BinaryOp(_NEGATE[inner.op], inner.left, inner.right)
    if isinstance(inner, ast.IsNull):
        return ast.IsNull(inner.operand, not inner.negated)
    if isinstance(inner, ast.InList):
        return ast.InList(inner.operand, inner.items, not inner.negated)
    if isinstance(inner, ast.InSubquery):
        return ast.InSubquery(inner.operand, inner.query, not inner.negated)
    if isinstance(inner, ast.ExistsSubquery):
        return ast.ExistsSubquery(inner.query, not inner.negated)
    if isinstance(inner, ast.Between):
        return ast.Between(inner.operand, inner.low, inner.high, not inner.negated)
    if isinstance(inner, ast.BinaryOp) and inner.op == "or":
        return ast.BinaryOp(
            "and",
            _push_not(ast.UnaryOp("not", inner.left)),
            _push_not(ast.UnaryOp("not", inner.right)),
        )
    return ast.UnaryOp("not", inner)


def _orient(comparison: ast.BinaryOp) -> ast.BinaryOp:
    """Column on the left; col=col ordered by (binding, name)."""
    left, right, op = comparison.left, comparison.right, comparison.op
    left_is_col = isinstance(left, ast.ColumnRef)
    right_is_col = isinstance(right, ast.ColumnRef)
    if left_is_col and right_is_col:
        if _col_key(left) > _col_key(right) and op in ("=", "<>"):
            left, right = right, left
        elif _col_key(left) > _col_key(right):
            left, right = right, left
            op = _FLIP[op]
        return ast.BinaryOp(op, left, right)
    if right_is_col and not left_is_col:
        return ast.BinaryOp(_FLIP[op], right, left)
    return ast.BinaryOp(op, left, right)


def _col_key(col: ast.ColumnRef) -> tuple[str, str]:
    return ((col.table or "").lower(), col.name.lower())


def predicate_columns(conjuncts: tuple[ast.Expr, ...]) -> set[ast.ColumnRef]:
    cols: set[ast.ColumnRef] = set()
    for conjunct in conjuncts:
        cols |= exprs.columns_in(conjunct)
    return cols
