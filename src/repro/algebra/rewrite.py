"""Lightweight physical-ish plan rewrites applied before execution.

``push_selections`` distributes WHERE conjuncts over join trees so the
executor's hash-join path sees equi-join predicates instead of a cross
product followed by a filter.  This is a correctness-preserving rewrite
(standard selection pushdown for inner/cross joins); it applies to both
user queries and the witness rewritings the validity checker builds
(whose shape is cross-joins of view scans + a residual selection).
"""

from __future__ import annotations

from typing import Optional

from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra import ops


def push_selections(plan: ops.Operator) -> ops.Operator:
    """Push selection conjuncts down through inner/cross joins."""
    from repro.instrument import COUNTERS

    COUNTERS.bump("plan.push")
    return _push(plan, [])


def _bindings_of(plan: ops.Operator) -> set[str]:
    return {c.binding.lower() for c in plan.columns if c.binding}


def _push(plan: ops.Operator, pending: list[ast.Expr]) -> ops.Operator:
    if isinstance(plan, ops.Select):
        return _push(plan.child, pending + exprs.conjuncts(plan.predicate))

    if isinstance(plan, ops.Join) and plan.kind in ("inner", "cross"):
        conjuncts = list(pending)
        if plan.predicate is not None:
            conjuncts.extend(exprs.conjuncts(plan.predicate))
        left_bind = _bindings_of(plan.left)
        right_bind = _bindings_of(plan.right)
        left_only, right_only, cross = exprs.split_join_predicate(
            conjuncts, left_bind, right_bind
        )
        # Conjuncts that reference neither side (constants or columns
        # with no binding) stay at the join to be safe.
        safe_left = [c for c in left_only if exprs.bindings_in(c) or not _has_cols(c)]
        unresolved = [c for c in left_only if c not in safe_left]
        left = _push(plan.left, safe_left)
        right = _push(plan.right, right_only)
        predicate = exprs.make_conjunction(cross + unresolved)
        kind = "inner" if predicate is not None else "cross"
        return ops.Join(left, right, kind=kind, predicate=predicate)

    # Any other operator: re-apply pending conjuncts here and recurse
    # into children independently.
    rebuilt = _rebuild_children(plan)
    if pending:
        return ops.Select(rebuilt, exprs.make_conjunction(pending))
    return rebuilt


def _has_cols(conj: ast.Expr) -> bool:
    return bool(exprs.columns_in(conj))


def _rebuild_children(plan: ops.Operator) -> ops.Operator:
    if isinstance(plan, (ops.Rel, ops.ViewRel)):
        return plan
    if isinstance(plan, ops.Select):  # handled above; defensive
        return ops.Select(_push(plan.child, []), plan.predicate)
    if isinstance(plan, ops.Project):
        return ops.Project(_push(plan.child, []), plan.exprs)
    if isinstance(plan, ops.Distinct):
        return ops.Distinct(_push(plan.child, []))
    if isinstance(plan, ops.Alias):
        return ops.Alias(_push(plan.child, []), plan.binding)
    if isinstance(plan, ops.Join):
        # left/outer joins: do not move predicates across
        return ops.Join(
            _push(plan.left, []),
            _push(plan.right, []),
            plan.kind,
            plan.predicate,
        )
    if isinstance(plan, ops.DependentJoin):
        return ops.DependentJoin(
            _push(plan.left, []),
            plan.view_name,
            plan.view_binding,
            plan.view_columns,
            plan.param_name,
            plan.key_expr,
            plan.predicate,
        )
    if isinstance(plan, ops.Aggregate):
        return ops.Aggregate(
            _push(plan.child, []), plan.group_exprs, plan.aggregates
        )
    if isinstance(plan, ops.SetOperation):
        return ops.SetOperation(
            plan.op, plan.all, _push(plan.left, []), _push(plan.right, [])
        )
    if isinstance(plan, ops.Sort):
        return ops.Sort(_push(plan.child, []), plan.keys)
    if isinstance(plan, ops.Limit):
        return ops.Limit(_push(plan.child, []), plan.limit, plan.offset)
    return plan
