"""Logical relational-algebra operators.

Operators are immutable dataclasses forming a tree.  Every operator
exposes ``columns`` — its output schema as a tuple of :class:`OutCol`.
Column references in predicates/expressions use the *binding name*
stored in each OutCol.

Multiset (bag) semantics throughout: ``Project`` does **not** eliminate
duplicates; :class:`Distinct` does.  This mirrors the paper's careful
treatment of SQL multiset semantics in rules U3a/U3b/U3c.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional

from repro.sql import ast


@dataclass(frozen=True)
class OutCol:
    """One output column: ``binding`` qualifier plus column name."""

    binding: Optional[str]
    name: str

    def ref(self) -> ast.ColumnRef:
        return ast.ColumnRef(self.binding, self.name)

    def __str__(self) -> str:
        return f"{self.binding}.{self.name}" if self.binding else self.name


class Operator:
    """Base class for logical operators."""

    __slots__ = ()

    @property
    def columns(self) -> tuple[OutCol, ...]:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def children(self) -> tuple["Operator", ...]:
        return ()

    def pretty(self, indent: int = 0) -> str:
        """Indented multi-line rendering of the operator tree."""
        pad = "  " * indent
        lines = [pad + self._describe()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def _describe(self) -> str:  # pragma: no cover - overridden
        return type(self).__name__


@dataclass(frozen=True)
class Rel(Operator):
    """Scan of a base relation under a binding name (alias)."""

    name: str
    binding: str
    schema_columns: tuple[str, ...]

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return tuple(OutCol(self.binding, c) for c in self.schema_columns)

    def _describe(self) -> str:
        alias = f" AS {self.binding}" if self.binding != self.name else ""
        return f"Rel({self.name}{alias})"


@dataclass(frozen=True)
class ViewRel(Operator):
    """Scan of an *instantiated authorization view* (used in witnesses).

    The validity checker produces rewritings whose leaves are
    authorization-view scans; the executor evaluates them by running the
    stored view definition.  ``access_args`` carries ``$$`` parameter
    values the checker chose for access-pattern views (paper Section 6).
    """

    name: str
    binding: str
    schema_columns: tuple[str, ...]
    access_args: tuple[tuple[str, object], ...] = ()

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return tuple(OutCol(self.binding, c) for c in self.schema_columns)

    def _describe(self) -> str:
        alias = f" AS {self.binding}" if self.binding != self.name else ""
        args = ""
        if self.access_args:
            args = "; " + ", ".join(f"$${k}={v!r}" for k, v in self.access_args)
        return f"ViewRel({self.name}{alias}{args})"


@dataclass(frozen=True)
class Select(Operator):
    """σ — filter rows by a predicate."""

    child: Operator
    predicate: ast.Expr

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return self.child.columns

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return f"Select[{self.predicate}]"


@dataclass(frozen=True)
class Project(Operator):
    """π — compute output expressions (no duplicate elimination).

    Output columns have ``binding=None`` and the given names.
    """

    child: Operator
    exprs: tuple[tuple[ast.Expr, str], ...]

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return tuple(OutCol(None, name) for _, name in self.exprs)

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def _describe(self) -> str:
        rendered = ", ".join(f"{e} AS {n}" for e, n in self.exprs)
        return f"Project[{rendered}]"


@dataclass(frozen=True)
class Distinct(Operator):
    """δ — duplicate elimination."""

    child: Operator

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return self.child.columns

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return "Distinct"


@dataclass(frozen=True)
class Join(Operator):
    """⋈ — inner/left/cross join with optional predicate."""

    left: Operator
    right: Operator
    kind: str = "inner"  # "inner" | "left" | "cross"
    predicate: Optional[ast.Expr] = None

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return self.left.columns + self.right.columns

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)

    def _describe(self) -> str:
        pred = f" ON {self.predicate}" if self.predicate is not None else ""
        return f"Join[{self.kind}]{pred}"


@dataclass(frozen=True)
class SemiJoin(Operator):
    """Semi/anti join desugared from [NOT] IN / [NOT] EXISTS subqueries.

    Output = left rows only.  With ``operand`` set (IN form), a left row
    qualifies when its operand value matches the right side's single
    output column; ``negated`` gives NOT IN with SQL's null-aware
    semantics (any NULL on either side blocks the row).  With
    ``operand=None`` (EXISTS form, uncorrelated), qualification depends
    only on whether the right side is non-empty.
    """

    left: Operator
    right: Operator
    operand: Optional[ast.Expr] = None
    negated: bool = False

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return self.left.columns

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)

    def _describe(self) -> str:
        kind = "anti" if self.negated else "semi"
        via = f" ON {self.operand} IN (...)" if self.operand is not None else " EXISTS"
        return f"SemiJoin[{kind}]{via}"


@dataclass(frozen=True)
class DependentJoin(Operator):
    """Dependent join against an access-pattern view (paper Section 6).

    For each row of ``left``, the ``param_name`` access-pattern
    parameter of authorization view ``view_name`` is bound to the value
    of ``key_expr`` (an expression over ``left``'s columns) and the view
    is evaluated; matching view rows are appended to the left row.
    This is how ``r ⋈_{r.B = s.A} s`` is computed when ``s`` is only
    reachable through an access-pattern view ``σ_{A=$$p}(s)``.
    """

    left: Operator
    view_name: str
    view_binding: str
    view_columns: tuple[str, ...]
    param_name: str
    key_expr: ast.Expr
    #: residual predicate over the combined row (may be None)
    predicate: Optional[ast.Expr] = None

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return self.left.columns + tuple(
            OutCol(self.view_binding, c) for c in self.view_columns
        )

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.left,)

    def _describe(self) -> str:
        pred = f" WHERE {self.predicate}" if self.predicate is not None else ""
        return (
            f"DependentJoin[{self.view_name} AS {self.view_binding}; "
            f"$${self.param_name} := {self.key_expr}]{pred}"
        )


@dataclass(frozen=True)
class Aggregate(Operator):
    """γ — grouping and aggregation.

    ``group_exprs`` are (expr, name) pairs; ``aggregates`` are
    (FuncCall, name) pairs.  Output columns are the group columns
    followed by the aggregate columns, all with ``binding=None``.
    An Aggregate with no group expressions produces exactly one row
    (SQL scalar-aggregate semantics).
    """

    child: Operator
    group_exprs: tuple[tuple[ast.Expr, str], ...]
    aggregates: tuple[tuple[ast.FuncCall, str], ...]

    @property
    def columns(self) -> tuple[OutCol, ...]:
        names = [name for _, name in self.group_exprs]
        names += [name for _, name in self.aggregates]
        return tuple(OutCol(None, n) for n in names)

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def _describe(self) -> str:
        groups = ", ".join(f"{e} AS {n}" for e, n in self.group_exprs)
        aggs = ", ".join(f"{a} AS {n}" for a, n in self.aggregates)
        return f"Aggregate[by: {groups or '()'}; aggs: {aggs}]"


@dataclass(frozen=True)
class SetOperation(Operator):
    """UNION / INTERSECT / EXCEPT, each with ALL or DISTINCT semantics."""

    op: str  # "union" | "intersect" | "except"
    all: bool
    left: Operator
    right: Operator

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return tuple(OutCol(None, c.name) for c in self.left.columns)

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.left, self.right)

    def _describe(self) -> str:
        return f"SetOperation[{self.op}{' all' if self.all else ''}]"


@dataclass(frozen=True)
class Alias(Operator):
    """Re-qualify the child's output columns under one binding name.

    Used for derived tables ``(SELECT ...) AS t`` and expanded view
    references: isolates the inner scope and exposes columns as
    ``binding.name``.  Child output names must be unique.
    """

    child: Operator
    binding: str

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return tuple(OutCol(self.binding, c.name) for c in self.child.columns)

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return f"Alias[{self.binding}]"


@dataclass(frozen=True)
class Sort(Operator):
    child: Operator
    keys: tuple[tuple[ast.Expr, bool], ...]  # (expr, descending)

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return self.child.columns

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def _describe(self) -> str:
        keys = ", ".join(f"{e}{' DESC' if d else ''}" for e, d in self.keys)
        return f"Sort[{keys}]"


@dataclass(frozen=True)
class Limit(Operator):
    child: Operator
    limit: int
    offset: int = 0

    @property
    def columns(self) -> tuple[OutCol, ...]:
        return self.child.columns

    @property
    def children(self) -> tuple[Operator, ...]:
        return (self.child,)

    def _describe(self) -> str:
        return f"Limit[{self.limit} OFFSET {self.offset}]"


def walk(op: Operator):
    """Yield ``op`` and all descendants, pre-order."""
    yield op
    for child in op.children:
        yield from walk(child)


def base_relations(op: Operator) -> list[Rel]:
    """All base-relation leaves of an operator tree."""
    return [node for node in walk(op) if isinstance(node, Rel)]


def view_relations(op: Operator) -> list[ViewRel]:
    return [node for node in walk(op) if isinstance(node, ViewRel)]
