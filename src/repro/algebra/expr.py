"""Utilities over bound scalar expressions.

A *bound* expression is an :mod:`repro.sql.ast` expression in which all
column references carry the binding name (alias) of some relation
instance.  These helpers provide conjunct manipulation, column
collection, substitution, and renaming — the workhorses of predicate
normalization, view matching, and the validity inference rules.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional

from repro.sql import ast


TRUE = ast.Literal(True)


def conjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    """Flatten an AND tree into a list of conjuncts (TRUE → [])."""
    if expr is None or expr == TRUE:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def make_conjunction(parts: Iterable[ast.Expr]) -> Optional[ast.Expr]:
    """Combine conjuncts into one AND tree; returns None for the empty set."""
    result: Optional[ast.Expr] = None
    for part in parts:
        result = part if result is None else ast.BinaryOp("and", result, part)
    return result


def disjuncts(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinaryOp) and expr.op == "or":
        return disjuncts(expr.left) + disjuncts(expr.right)
    return [expr]


def columns_in(expr: ast.Expr) -> set[ast.ColumnRef]:
    """All column references appearing in ``expr``."""
    return {node for node in ast.walk_expr(expr) if isinstance(node, ast.ColumnRef)}


def bindings_in(expr: ast.Expr) -> set[str]:
    """All binding names (table qualifiers) referenced by ``expr``."""
    return {col.table for col in columns_in(expr) if col.table is not None}


def params_in(expr: ast.Expr) -> set[str]:
    return {
        node.name for node in ast.walk_expr(expr) if isinstance(node, ast.Param)
    }


def access_params_in(expr: ast.Expr) -> set[str]:
    return {
        node.name for node in ast.walk_expr(expr) if isinstance(node, ast.AccessParam)
    }


def transform(expr: ast.Expr, fn: Callable[[ast.Expr], Optional[ast.Expr]]) -> ast.Expr:
    """Bottom-up rewrite: apply ``fn`` to each node; None keeps the node."""
    rebuilt = _rebuild(expr, fn)
    replacement = fn(rebuilt)
    return replacement if replacement is not None else rebuilt


def _rebuild(expr: ast.Expr, fn) -> ast.Expr:
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, transform(expr.left, fn), transform(expr.right, fn))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, transform(expr.operand, fn))
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(transform(expr.operand, fn), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(
            transform(expr.operand, fn),
            tuple(transform(i, fn) for i in expr.items),
            expr.negated,
        )
    if isinstance(expr, ast.InSubquery):
        return ast.InSubquery(
            transform(expr.operand, fn), expr.query, expr.negated
        )
    if isinstance(expr, ast.Between):
        return ast.Between(
            transform(expr.operand, fn),
            transform(expr.low, fn),
            transform(expr.high, fn),
            expr.negated,
        )
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(
            expr.name, tuple(transform(a, fn) for a in expr.args), expr.distinct
        )
    if isinstance(expr, ast.CaseExpr):
        return ast.CaseExpr(
            tuple(
                (transform(cond, fn), transform(value, fn))
                for cond, value in expr.branches
            ),
            transform(expr.default, fn) if expr.default is not None else None,
        )
    return expr


def substitute_params(expr: ast.Expr, values: Mapping[str, object]) -> ast.Expr:
    """Replace ``$param`` nodes with literals from ``values``."""

    def visit(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.Param) and node.name in values:
            return ast.Literal(values[node.name])
        return None

    return transform(expr, visit)


def substitute_access_params(expr: ast.Expr, values: Mapping[str, object]) -> ast.Expr:
    """Replace ``$$param`` nodes with literals from ``values``."""

    def visit(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.AccessParam) and node.name in values:
            return ast.Literal(values[node.name])
        return None

    return transform(expr, visit)


def rename_bindings(expr: ast.Expr, mapping: Mapping[str, str]) -> ast.Expr:
    """Rename table qualifiers of column references per ``mapping``."""

    def visit(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.ColumnRef) and node.table in mapping:
            return ast.ColumnRef(mapping[node.table], node.name)
        return None

    return transform(expr, visit)


def substitute_columns(
    expr: ast.Expr, mapping: Mapping[ast.ColumnRef, ast.Expr]
) -> ast.Expr:
    """Replace whole column references by expressions per ``mapping``."""

    def visit(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.ColumnRef) and node in mapping:
            return mapping[node]
        return None

    return transform(expr, visit)


def is_constant(expr: ast.Expr) -> bool:
    """True if ``expr`` contains no column references or parameters."""
    for node in ast.walk_expr(expr):
        if isinstance(node, (ast.ColumnRef, ast.OldColumnRef, ast.Param, ast.Star)):
            return False
        # Access-pattern parameters are treated as opaque constants during
        # inference (paper Section 6), so they do not disqualify constancy.
    return True


def equality_pairs(pred_conjuncts: Iterable[ast.Expr]) -> list[tuple[ast.ColumnRef, ast.ColumnRef]]:
    """Extract column=column equality pairs from a set of conjuncts."""
    pairs = []
    for conj in pred_conjuncts:
        if (
            isinstance(conj, ast.BinaryOp)
            and conj.op == "="
            and isinstance(conj.left, ast.ColumnRef)
            and isinstance(conj.right, ast.ColumnRef)
        ):
            pairs.append((conj.left, conj.right))
    return pairs


def split_join_predicate(
    pred_conjuncts: Iterable[ast.Expr], left_bindings: set[str], right_bindings: set[str]
) -> tuple[list[ast.Expr], list[ast.Expr], list[ast.Expr]]:
    """Partition conjuncts into (left-only, right-only, cross) groups.

    Binding comparison is case-insensitive (callers may pass sets in
    any case).  Constant conjuncts (no column refs) land in the
    left-only group.
    """
    left_lower = {b.lower() for b in left_bindings}
    right_lower = {b.lower() for b in right_bindings}
    left_parts: list[ast.Expr] = []
    right_parts: list[ast.Expr] = []
    cross_parts: list[ast.Expr] = []
    for conj in pred_conjuncts:
        refs = {b.lower() for b in bindings_in(conj)}
        if refs <= left_lower:
            left_parts.append(conj)
        elif refs <= right_lower:
            right_parts.append(conj)
        else:
            cross_parts.append(conj)
    return left_parts, right_parts, cross_parts
