"""A sound (incomplete) implication prover for conjunctive predicates.

``implies(premises, conclusion)`` decides whether a conjunction of
normalized atoms logically entails another atom, over SQL semantics
(rows where predicates evaluate to TRUE).  The prover handles:

* equality closure over columns and constants (union-find);
* interval reasoning for ``<``, ``<=``, ``>``, ``>=`` against constants;
* ``IN`` lists as finite domains (and ``NOT IN`` exclusions);
* ``IS [NOT] NULL`` (any satisfied comparison implies NOT NULL);
* contradiction detection (unsatisfiable premises imply everything);
* syntactic fallback after rewriting columns to class representatives.

Soundness matters here: the validity checker uses ``implies`` both to
drop query conjuncts enforced by a view and to verify a view predicate
does not over-filter, so a false positive would admit an unauthorized
query.  The prover is deliberately conservative — when unsure it
answers "not implied".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.sql import ast
from repro.algebra.normalize import normalize_predicate

_Term = Union[ast.ColumnRef, "_Const"]


@dataclass(frozen=True)
class _Const:
    """Wrapper making constants usable as union-find terms."""

    value: object


@dataclass
class _Bounds:
    low: Optional[object] = None
    low_strict: bool = False
    high: Optional[object] = None
    high_strict: bool = False
    not_equal: set = field(default_factory=set)
    domain: Optional[frozenset] = None  # from IN lists

    def add_low(self, value, strict: bool) -> None:
        if self.low is None or value > self.low or (value == self.low and strict):
            self.low = value
            self.low_strict = strict

    def add_high(self, value, strict: bool) -> None:
        if self.high is None or value < self.high or (value == self.high and strict):
            self.high = value
            self.high_strict = strict

    def restrict_domain(self, values: frozenset) -> None:
        self.domain = values if self.domain is None else self.domain & values

    def contradicts(self, value) -> bool:
        """True if ``term = value`` is impossible under these bounds."""
        try:
            if self.low is not None and (
                value < self.low or (value == self.low and self.low_strict)
            ):
                return True
            if self.high is not None and (
                value > self.high or (value == self.high and self.high_strict)
            ):
                return True
        except TypeError:
            return False
        if value in self.not_equal:
            return True
        if self.domain is not None and value not in self.domain:
            return True
        return False

    def empty(self) -> bool:
        if self.low is not None and self.high is not None:
            try:
                if self.low > self.high:
                    return True
                if self.low == self.high and (self.low_strict or self.high_strict):
                    return True
            except TypeError:
                return False
        if self.domain is not None:
            if not self.domain:
                return True
            if all(self.contradicts_in_domain(v) for v in self.domain):
                return True
        return False

    def contradicts_in_domain(self, value) -> bool:
        try:
            if self.low is not None and (
                value < self.low or (value == self.low and self.low_strict)
            ):
                return True
            if self.high is not None and (
                value > self.high or (value == self.high and self.high_strict)
            ):
                return True
        except TypeError:
            return False
        return value in self.not_equal


class _UnionFind:
    def __init__(self):
        self.parent: dict[_Term, _Term] = {}

    def find(self, term: _Term) -> _Term:
        if term not in self.parent:
            self.parent[term] = term
            return term
        root = term
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[term] != root:
            self.parent[term], term = root, self.parent[term]
        return root

    def union(self, a: _Term, b: _Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Prefer constants as representatives so lookups are direct.
            if isinstance(ra, _Const):
                self.parent[rb] = ra
            else:
                self.parent[ra] = rb


class PredicateTheory:
    """The deductive closure of a set of premise conjuncts."""

    def __init__(self, premises: Iterable[ast.Expr]):
        self.premises = list(premises)
        self.uf = _UnionFind()
        self.bounds: dict[_Term, _Bounds] = {}
        self.not_null: set[_Term] = set()
        self.is_null: set[_Term] = set()
        self.other: set[ast.Expr] = set()
        self.unsat = False
        self._build()

    # -- construction ----------------------------------------------------

    def _term(self, expr: ast.Expr) -> Optional[_Term]:
        if isinstance(expr, ast.ColumnRef):
            return expr
        if isinstance(expr, ast.Literal):
            return _Const(expr.value)
        if isinstance(expr, ast.AccessParam):
            # $$ params act as opaque constants during inference (§6).
            return _Const(("$$", expr.name))
        return None

    def _build(self) -> None:
        pending_bounds: list[tuple[_Term, str, object]] = []
        for premise in self.premises:
            self._absorb(premise, pending_bounds)
        # Equality closure first, then attach bounds to representatives.
        for term, op, value in pending_bounds:
            root = self.uf.find(term)
            bounds = self.bounds.setdefault(root, _Bounds())
            if op == ">":
                bounds.add_low(value, strict=True)
            elif op == ">=":
                bounds.add_low(value, strict=False)
            elif op == "<":
                bounds.add_high(value, strict=True)
            elif op == "<=":
                bounds.add_high(value, strict=False)
            elif op == "<>":
                bounds.not_equal.add(value)
            elif op == "in":
                bounds.restrict_domain(value)
        self._check_consistency()

    def _absorb(self, premise: ast.Expr, pending) -> None:
        if isinstance(premise, ast.BinaryOp) and premise.op == "=":
            left = self._term(premise.left)
            right = self._term(premise.right)
            if left is not None and right is not None:
                self.uf.union(left, right)
                self.not_null.add(left)
                self.not_null.add(right)
                return
        if isinstance(premise, ast.BinaryOp) and premise.op in ("<", "<=", ">", ">=", "<>"):
            left = self._term(premise.left)
            right = self._term(premise.right)
            if (
                isinstance(left, ast.ColumnRef)
                and isinstance(right, _Const)
                and right.value is not None
            ):
                pending.append((left, premise.op, right.value))
                self.not_null.add(left)
                return
            if left is not None and right is not None:
                self.not_null.add(left)
                self.not_null.add(right)
                self.other.add(premise)
                return
        if isinstance(premise, ast.IsNull):
            term = self._term(premise.operand)
            if isinstance(term, ast.ColumnRef):
                (self.not_null if premise.negated else self.is_null).add(term)
                return
        if isinstance(premise, ast.InList) and not premise.negated:
            term = self._term(premise.operand)
            values = []
            for item in premise.items:
                if isinstance(item, ast.Literal) and item.value is not None:
                    values.append(item.value)
                else:
                    self.other.add(premise)
                    return
            if isinstance(term, ast.ColumnRef):
                pending.append((term, "in", frozenset(values)))
                self.not_null.add(term)
                return
        if isinstance(premise, ast.InList) and premise.negated:
            term = self._term(premise.operand)
            if isinstance(term, ast.ColumnRef):
                ok = True
                for item in premise.items:
                    if isinstance(item, ast.Literal) and item.value is not None:
                        pending.append((term, "<>", item.value))
                    else:
                        ok = False
                if ok:
                    self.not_null.add(term)
                    return
        self.other.add(premise)

    def _check_consistency(self) -> None:
        # Two distinct constants in one class → unsatisfiable.
        constants: dict[_Term, object] = {}
        for term in list(self.uf.parent):
            if isinstance(term, _Const):
                root = self.uf.find(term)
                if root in constants and constants[root] != term.value:
                    self.unsat = True
                    return
                constants.setdefault(root, term.value)
        # A class equal to a constant violating its bounds → unsat.
        for root, bounds in self.bounds.items():
            root = self.uf.find(root)
            if root in constants and bounds.contradicts(constants[root]):
                self.unsat = True
                return
            if bounds.empty():
                self.unsat = True
                return
        # NULL and NOT NULL on the same class → unsat.
        null_roots = {self.uf.find(t) for t in self.is_null}
        not_null_roots = {self.uf.find(t) for t in self.not_null}
        if null_roots & not_null_roots:
            self.unsat = True
        self._constants = constants

    # -- queries --------------------------------------------------------------

    def constant_of(self, expr: ast.Expr) -> Optional[object]:
        """The constant a column is pinned to, if any (None value ≠ pinned)."""
        term = self._term(expr)
        if term is None:
            return None
        root = self.uf.find(term)
        value = self._constants.get(root)
        return value

    def pinned(self, expr: ast.Expr) -> bool:
        term = self._term(expr)
        if term is None:
            return isinstance(expr, ast.Literal)
        return self.uf.find(term) in self._constants

    def same_class(self, a: ast.Expr, b: ast.Expr) -> bool:
        ta, tb = self._term(a), self._term(b)
        if ta is None or tb is None:
            return False
        return self.uf.find(ta) == self.uf.find(tb)

    def _bounds_of(self, term: _Term) -> _Bounds:
        return self.bounds.get(self.uf.find(term), _Bounds())

    def _rep_expr(self, expr: ast.Expr) -> ast.Expr:
        """Rewrite columns in ``expr`` to class representatives."""
        from repro.algebra import expr as exprs

        def visit(node: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(node, ast.ColumnRef):
                root = self.uf.find(node)
                if isinstance(root, _Const):
                    if isinstance(root.value, tuple) and root.value and root.value[0] == "$$":
                        return ast.AccessParam(root.value[1])
                    return ast.Literal(root.value)
                return root
            return None

        return exprs.transform(expr, visit)

    # -- entailment ------------------------------------------------------------

    def entails(self, conclusion: ast.Expr) -> bool:
        if self.unsat:
            return True
        for atom in normalize_predicate(conclusion):
            if not self._entails_atom(atom):
                return False
        return True

    def _entails_atom(self, atom: ast.Expr) -> bool:
        # Syntactic presence (after representative rewriting).
        if atom in self.premises or atom in self.other:
            return True
        rep = self._rep_expr(atom)
        rep_premises = {self._rep_expr(p) for p in self.other}
        if rep in rep_premises:
            return True

        if isinstance(atom, ast.BinaryOp) and atom.op == "=":
            return self._entails_equality(atom)
        if isinstance(atom, ast.BinaryOp) and atom.op in ("<", "<=", ">", ">="):
            return self._entails_range(atom)
        if isinstance(atom, ast.BinaryOp) and atom.op == "<>":
            return self._entails_disequality(atom)
        if isinstance(atom, ast.IsNull):
            return self._entails_nullness(atom)
        if isinstance(atom, ast.InList) and not atom.negated:
            return self._entails_in(atom)
        if isinstance(atom, ast.InList) and atom.negated:
            # col NOT IN (v1..vn) is TRUE iff col is non-null and differs
            # from every (non-null) member.
            if any(
                not isinstance(i, ast.Literal) or i.value is None
                for i in atom.items
            ):
                return False
            if not self._entails_nullness(ast.IsNull(atom.operand, negated=True)):
                return False
            return all(
                self._entails_disequality(
                    ast.BinaryOp("<>", atom.operand, item)
                )
                for item in atom.items
            )
        # Evaluate ground atoms (constants on both sides).
        ground = self._try_ground(rep)
        if ground is not None:
            return ground
        return False

    def _entails_equality(self, atom: ast.BinaryOp) -> bool:
        if atom.left == atom.right:
            # Reflexive equality is NOT a tautology under SQL 3VL: on a
            # NULL value `a = a` is UNKNOWN.  It holds only when the
            # operand is known non-null.
            return self._entails_nullness(ast.IsNull(atom.left, negated=True))
        if self.same_class(atom.left, atom.right):
            # Distinct terms reach one class only through null-rejecting
            # equality premises, so non-nullness is already implied.
            return True
        # x >= c AND x <= c pins x to c; so does a singleton IN domain.
        term = self._term(atom.left)
        if (
            term is not None
            and isinstance(atom.right, ast.Literal)
            and atom.right.value is not None
        ):
            bounds = self._bounds_of(term)
            target = atom.right.value
            if (
                bounds.low == target
                and bounds.high == target
                and not bounds.low_strict
                and not bounds.high_strict
                and target not in bounds.not_equal
            ):
                return True
            if bounds.domain == frozenset({target}):
                return True
        ground = self._try_ground(self._rep_expr(atom))
        return ground is True

    def _entails_range(self, atom: ast.BinaryOp) -> bool:
        term = self._term(atom.left)
        if term is None or not isinstance(atom.right, ast.Literal):
            ground = self._try_ground(self._rep_expr(atom))
            return ground is True
        target = atom.right.value
        if target is None:
            return False
        value = self.constant_of(atom.left)
        if self.pinned(atom.left):
            return self._compare_safe(atom.op, value, target) is True
        bounds = self._bounds_of(term)
        try:
            if atom.op == "<":
                return bounds.high is not None and (
                    bounds.high < target or (bounds.high == target and bounds.high_strict)
                )
            if atom.op == "<=":
                return bounds.high is not None and bounds.high <= target
            if atom.op == ">":
                return bounds.low is not None and (
                    bounds.low > target or (bounds.low == target and bounds.low_strict)
                )
            if atom.op == ">=":
                return bounds.low is not None and bounds.low >= target
        except TypeError:
            return False
        return False

    def _entails_disequality(self, atom: ast.BinaryOp) -> bool:
        left_term = self._term(atom.left)
        if (
            left_term is not None
            and isinstance(atom.right, ast.Literal)
            and atom.right.value is not None
        ):
            if self.pinned(atom.left):
                return self.constant_of(atom.left) != atom.right.value
            bounds = self._bounds_of(left_term)
            if atom.right.value in bounds.not_equal:
                return True
            if bounds.domain is not None and atom.right.value not in bounds.domain:
                return True
            if bounds.contradicts(atom.right.value):
                return True
        ground = self._try_ground(self._rep_expr(atom))
        return ground is True

    def _entails_nullness(self, atom: ast.IsNull) -> bool:
        term = self._term(atom.operand)
        if not isinstance(term, ast.ColumnRef):
            return False
        if atom.negated:
            return self.uf.find(term) in {self.uf.find(t) for t in self.not_null} or self.pinned(atom.operand)
        return self.uf.find(term) in {self.uf.find(t) for t in self.is_null}

    def _entails_in(self, atom: ast.InList) -> bool:
        values = set()
        for item in atom.items:
            if isinstance(item, ast.Literal) and item.value is not None:
                values.add(item.value)
            else:
                return False
        if self.pinned(atom.operand):
            return self.constant_of(atom.operand) in values
        term = self._term(atom.operand)
        if term is None:
            return False
        bounds = self._bounds_of(term)
        if bounds.domain is not None and bounds.domain <= values:
            return True
        return False

    @staticmethod
    def _compare_safe(op: str, left, right) -> Optional[bool]:
        from repro.engine.evaluator import compare

        try:
            return compare(op, left, right)
        except Exception:
            return None

    def _try_ground(self, expr: ast.Expr) -> Optional[bool]:
        """Evaluate an expression that references no columns."""
        from repro.algebra import expr as exprs
        from repro.engine.evaluator import Evaluator, RowResolver

        if not exprs.is_constant(expr):
            return None
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.AccessParam):
                return None
        try:
            result = Evaluator(RowResolver(())).evaluate(expr, ())
        except Exception:
            return None
        if isinstance(result, bool):
            return result
        return None


def implies(premises: Iterable[ast.Expr], conclusion: ast.Expr) -> bool:
    """Do the premise conjuncts entail the conclusion?  Sound, incomplete."""
    return PredicateTheory(premises).entails(conclusion)


def implies_all(premises: Iterable[ast.Expr], conclusions: Iterable[ast.Expr]) -> bool:
    theory = PredicateTheory(premises)
    return all(theory.entails(c) for c in conclusions)


def equivalent(
    a: Iterable[ast.Expr], b: Iterable[ast.Expr]
) -> bool:
    """Mutual entailment of two conjunct sets."""
    a_list, b_list = list(a), list(b)
    return implies_all(a_list, b_list) and implies_all(b_list, a_list)


def unsatisfiable(premises: Iterable[ast.Expr]) -> bool:
    return PredicateTheory(premises).unsat
