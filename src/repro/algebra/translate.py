"""Binder/translator: SQL AST → logical algebra.

Responsibilities:

* resolve table references against the catalog, expanding view
  definitions inline (under an :class:`~repro.algebra.ops.Alias`);
* qualify every column reference with its binding name, rejecting
  unknown/ambiguous columns;
* expand ``*`` / ``T.*``;
* build ``Join``/``Select``/``Aggregate``/``Project``/``Distinct``/
  ``Sort``/``Limit`` trees with SQL's evaluation order;
* substitute ``$param`` context parameters with session values.

Nested subqueries in WHERE (scalar/EXISTS/IN-subquery) are outside the
paper's fragment (Section 5 assumes no nested subqueries) and raise
:class:`~repro.errors.UnsupportedFeatureError`.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from repro.errors import (
    AmbiguousColumnError,
    BindError,
    ParameterError,
    UnknownColumnError,
    UnknownTableError,
    UnsupportedFeatureError,
)
from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra import ops
from repro.catalog.catalog import Catalog, ViewDef


class _Scope:
    """Column namespace for one SELECT block: binding → output columns."""

    def __init__(self):
        self.order: list[str] = []  # binding names in FROM order
        self.columns: dict[str, tuple[ops.OutCol, ...]] = {}

    def add(self, binding: str, columns: tuple[ops.OutCol, ...]) -> None:
        key = binding.lower()
        if key in self.columns:
            raise BindError(f"duplicate table alias {binding!r}")
        self.order.append(key)
        self.columns[key] = columns

    def resolve(self, ref: ast.ColumnRef) -> ops.OutCol:
        if ref.table is not None:
            cols = self.columns.get(ref.table.lower())
            if cols is None:
                raise UnknownTableError(ref.table)
            for col in cols:
                if col.name.lower() == ref.name.lower():
                    return col
            raise UnknownColumnError(ref.name, context=ref.table)
        matches = []
        for binding in self.order:
            for col in self.columns[binding]:
                if col.name.lower() == ref.name.lower():
                    matches.append(col)
        if not matches:
            raise UnknownColumnError(ref.name)
        if len(matches) > 1:
            raise AmbiguousColumnError(ref.name, [str(m) for m in matches])
        return matches[0]

    def all_columns(self) -> list[ops.OutCol]:
        result: list[ops.OutCol] = []
        for binding in self.order:
            result.extend(self.columns[binding])
        return result

    def binding_columns(self, binding: str) -> tuple[ops.OutCol, ...]:
        cols = self.columns.get(binding.lower())
        if cols is None:
            raise UnknownTableError(binding)
        return cols


class Translator:
    """Translates parsed queries into logical algebra trees."""

    def __init__(
        self,
        catalog: Catalog,
        param_values: Optional[Mapping[str, object]] = None,
        access_param_values: Optional[Mapping[str, object]] = None,
        view_filter: Optional[Callable[[ViewDef], bool]] = None,
        keep_view_scans: bool = False,
        allow_access_params: bool = False,
    ):
        """``view_filter`` decides whether a view reference may be expanded
        (the Database facade uses it to gate authorization views on
        grants).  With ``keep_view_scans`` view references become
        :class:`~repro.algebra.ops.ViewRel` leaves instead of being
        inlined — used when building witness rewritings.  With
        ``allow_access_params``, unbound ``$$`` parameters survive
        binding (the inference engine treats them as opaque constants);
        execution paths leave it False so a missing binding fails fast
        with :class:`~repro.errors.ParameterError`.
        """
        self.catalog = catalog
        self.param_values = dict(param_values or {})
        self.access_param_values = dict(access_param_values or {})
        self.view_filter = view_filter
        self.keep_view_scans = keep_view_scans
        self.allow_access_params = allow_access_params

    # -- public entry points ------------------------------------------------

    def translate(self, query: ast.QueryExpr) -> ops.Operator:
        if isinstance(query, ast.SetOp):
            left = self.translate(query.left)
            right = self.translate(query.right)
            if len(left.columns) != len(right.columns):
                raise BindError(
                    f"set operation arity mismatch: {len(left.columns)} vs "
                    f"{len(right.columns)} columns"
                )
            return ops.SetOperation(query.op, query.all, left, right)
        if isinstance(query, ast.SelectStmt):
            return self._translate_select(query)
        raise BindError(f"cannot translate {type(query).__name__}")

    # -- SELECT ----------------------------------------------------------------

    def _translate_select(self, stmt: ast.SelectStmt) -> ops.Operator:
        scope = _Scope()
        plan: Optional[ops.Operator] = None
        for table_expr in stmt.from_items:
            part = self._translate_table_expr(table_expr, scope)
            plan = part if plan is None else ops.Join(plan, part, kind="cross")
        if plan is None:
            # SELECT without FROM: single empty row source.
            plan = _DUAL

        if stmt.where is not None:
            plain, subqueries = self._split_subquery_conjuncts(stmt.where)
            if plain is not None:
                where = self._bind_expr(plain, scope, allow_aggregates=False)
                plan = ops.Select(plan, where)
            for node in subqueries:
                plan = self._apply_subquery_conjunct(plan, node, scope)

        has_aggregates = stmt.group_by or any(
            ast.contains_aggregate(item.expr) for item in stmt.items
        ) or (stmt.having is not None)

        if has_aggregates:
            plan, output_map = self._translate_aggregate(stmt, plan, scope)
            item_exprs = output_map["items"]
            if stmt.having is not None:
                plan = ops.Select(plan, output_map["having"])
        else:
            item_exprs = self._bind_select_items(stmt, scope)

        project_exprs = tuple(item_exprs)
        plan_before_project = plan
        plan = ops.Project(plan, project_exprs)

        if stmt.distinct:
            plan = ops.Distinct(plan)

        if stmt.order_by:
            keys = []
            for order_item in stmt.order_by:
                key = self._resolve_order_expr(
                    order_item.expr, project_exprs, scope, has_aggregates
                )
                keys.append((key, order_item.descending))
            plan = ops.Sort(plan, tuple(keys))

        if stmt.limit is not None:
            plan = ops.Limit(plan, stmt.limit, stmt.offset or 0)
        return plan

    def _bind_select_items(
        self, stmt: ast.SelectStmt, scope: _Scope
    ) -> list[tuple[ast.Expr, str]]:
        items: list[tuple[ast.Expr, str]] = []
        for index, item in enumerate(stmt.items):
            if isinstance(item.expr, ast.Star):
                cols = (
                    scope.binding_columns(item.expr.table)
                    if item.expr.table
                    else scope.all_columns()
                )
                items.extend((col.ref(), col.name) for col in cols)
                continue
            bound = self._bind_expr(item.expr, scope, allow_aggregates=False)
            items.append((bound, self._output_name(item, bound, index)))
        return items

    @staticmethod
    def _output_name(item: ast.SelectItem, bound: ast.Expr, index: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(bound, ast.ColumnRef):
            return bound.name
        if isinstance(item.expr, ast.FuncCall):
            return item.expr.name
        return f"col{index + 1}"

    # -- nested subqueries (paper future work) ----------------------------------

    def _split_subquery_conjuncts(self, where: ast.Expr):
        """Separate top-level [NOT] IN/EXISTS subquery conjuncts.

        Returns (plain_predicate_or_None, list_of_subquery_nodes).
        Subquery expressions anywhere else (under OR, in HAVING, ...)
        are rejected — the paper's fragment excludes general nesting.
        """
        plain: list[ast.Expr] = []
        subqueries: list[ast.Expr] = []
        for conj in exprs.conjuncts(where):
            node = conj
            negate = False
            while isinstance(node, ast.UnaryOp) and node.op == "not":
                negate = not negate
                node = node.operand
            if isinstance(node, ast.InSubquery):
                if negate:
                    node = ast.InSubquery(node.operand, node.query, not node.negated)
                subqueries.append(node)
                continue
            if isinstance(node, ast.ExistsSubquery):
                if negate:
                    node = ast.ExistsSubquery(node.query, not node.negated)
                subqueries.append(node)
                continue
            for sub in ast.walk_expr(conj):
                if isinstance(sub, (ast.InSubquery, ast.ExistsSubquery)):
                    raise UnsupportedFeatureError(
                        "subqueries are only supported as top-level WHERE "
                        "conjuncts ([NOT] IN / [NOT] EXISTS)"
                    )
            plain.append(conj)
        return exprs.make_conjunction(plain), subqueries

    def _apply_subquery_conjunct(
        self, plan: ops.Operator, node: ast.Expr, scope: _Scope
    ) -> ops.Operator:
        query = node.query
        try:
            inner = self.translate(query)
        except (UnknownColumnError, UnknownTableError) as exc:
            raise UnsupportedFeatureError(
                f"correlated (or unresolvable) subquery: {exc}"
            ) from exc
        if isinstance(node, ast.InSubquery):
            if len(inner.columns) != 1:
                raise BindError("IN subquery must produce exactly one column")
            operand = self._bind_expr(node.operand, scope, allow_aggregates=False)
            return ops.SemiJoin(plan, inner, operand=operand, negated=node.negated)
        return ops.SemiJoin(plan, inner, operand=None, negated=node.negated)

    # -- FROM items -------------------------------------------------------------

    def _translate_table_expr(
        self, table_expr: ast.TableExpr, scope: _Scope
    ) -> ops.Operator:
        if isinstance(table_expr, ast.TableRef):
            return self._translate_table_ref(table_expr, scope)
        if isinstance(table_expr, ast.SubqueryRef):
            inner = self.translate(table_expr.query)
            self._check_unique_names(inner, f"subquery {table_expr.alias!r}")
            aliased = ops.Alias(inner, table_expr.alias)
            scope.add(table_expr.alias, aliased.columns)
            return aliased
        if isinstance(table_expr, ast.JoinRef):
            left = self._translate_table_expr(table_expr.left, scope)
            right = self._translate_table_expr(table_expr.right, scope)
            condition = None
            if table_expr.condition is not None:
                condition = self._bind_expr(
                    table_expr.condition, scope, allow_aggregates=False
                )
            kind = table_expr.kind
            if kind == "right":
                # Normalize RIGHT JOIN to LEFT JOIN with swapped inputs; the
                # output column order follows the rewritten operand order.
                left, right = right, left
                kind = "left"
            if kind == "full":
                raise UnsupportedFeatureError("FULL OUTER JOIN is not supported")
            return ops.Join(left, right, kind=kind, predicate=condition)
        raise BindError(f"cannot translate table expression {type(table_expr).__name__}")

    def _translate_table_ref(self, ref: ast.TableRef, scope: _Scope) -> ops.Operator:
        binding = ref.binding_name
        if self.catalog.has_table(ref.name):
            schema = self.catalog.table(ref.name)
            rel = ops.Rel(schema.name, binding, schema.column_names)
            scope.add(binding, rel.columns)
            return rel
        if self.catalog.has_view(ref.name):
            view = self.catalog.view(ref.name)
            if self.view_filter is not None and not self.view_filter(view):
                raise UnknownTableError(ref.name)
            if self.keep_view_scans:
                names = self.view_output_names(view)
                leaf = ops.ViewRel(view.name, binding, names)
                scope.add(binding, leaf.columns)
                return leaf
            inner = self.translate_view(view)
            self._check_unique_names(inner, f"view {view.name!r}")
            aliased = ops.Alias(inner, binding)
            scope.add(binding, aliased.columns)
            return aliased
        raise UnknownTableError(ref.name)

    def translate_view(self, view: ViewDef) -> ops.Operator:
        """Translate a view body, instantiating parameters and renaming
        output columns per the view's declared column list."""
        query = self._instantiate(view.query)
        inner = self.translate(query)
        if view.column_names:
            if len(view.column_names) != len(inner.columns):
                raise BindError(
                    f"view {view.name!r} declares {len(view.column_names)} columns "
                    f"but its query produces {len(inner.columns)}"
                )
            renames = tuple(
                (col.ref(), name)
                for col, name in zip(inner.columns, view.column_names)
            )
            inner = ops.Project(inner, renames)
        return inner

    def view_output_names(self, view: ViewDef) -> tuple[str, ...]:
        """Output column names of a view (expanding its body if needed)."""
        if view.column_names:
            return view.column_names
        inner = self.translate_view(view)
        return tuple(c.name for c in inner.columns)

    def _instantiate(self, query: ast.QueryExpr) -> ast.QueryExpr:
        """Substitute $params (and provided $$params) throughout a query."""
        return _map_query_exprs(query, self._instantiate_expr)

    def _instantiate_expr(self, expr: ast.Expr) -> ast.Expr:
        expr = exprs.substitute_params(expr, self.param_values)
        if self.access_param_values:
            expr = exprs.substitute_access_params(expr, self.access_param_values)
        return expr

    @staticmethod
    def _check_unique_names(plan: ops.Operator, context: str) -> None:
        seen: set[str] = set()
        for col in plan.columns:
            key = col.name.lower()
            if key in seen:
                raise BindError(f"duplicate output column {col.name!r} in {context}")
            seen.add(key)

    # -- expressions ---------------------------------------------------------------

    def _bind_expr(
        self, expr: ast.Expr, scope: _Scope, allow_aggregates: bool
    ) -> ast.Expr:
        expr = self._instantiate_expr(expr)

        def visit(node: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(node, ast.ColumnRef):
                return scope.resolve(node).ref()
            if isinstance(node, ast.Param):
                raise ParameterError(f"unbound parameter ${node.name}")
            if isinstance(node, ast.AccessParam) and not self.allow_access_params:
                raise ParameterError(
                    f"access-pattern parameter $${node.name} requires a "
                    "value at access time"
                )
            if isinstance(node, (ast.InSubquery, ast.ExistsSubquery)):
                raise UnsupportedFeatureError(
                    "subqueries are only supported as top-level WHERE conjuncts"
                )
            if isinstance(node, ast.OldColumnRef):
                raise BindError("old(...) is only allowed in AUTHORIZE predicates")
            if isinstance(node, ast.Star):
                return None  # legal only inside count(*); checked below
            if not allow_aggregates and ast.is_aggregate_call(node):
                raise BindError(
                    f"aggregate {node.name}() not allowed in this clause"
                )
            return None

        bound = exprs.transform(expr, visit)
        self._check_star_usage(bound)
        return bound

    @staticmethod
    def _check_star_usage(expr: ast.Expr) -> None:
        """Reject '*' anywhere except as the argument of count(*)."""
        if isinstance(expr, ast.Star):
            raise BindError("'*' is only allowed as a select item or in count(*)")
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.FuncCall):
                for arg in node.args:
                    if isinstance(arg, ast.Star) and node.name != "count":
                        raise BindError("'*' argument is only allowed in count(*)")

    # -- aggregation ------------------------------------------------------------------

    def _translate_aggregate(
        self, stmt: ast.SelectStmt, plan: ops.Operator, scope: _Scope
    ):
        group_exprs: list[tuple[ast.Expr, str]] = []
        group_index: dict[ast.Expr, str] = {}
        for index, group in enumerate(stmt.group_by):
            bound = self._bind_expr(group, scope, allow_aggregates=False)
            if isinstance(bound, ast.ColumnRef):
                name = bound.name
            else:
                name = f"group{index + 1}"
            if bound not in group_index:
                group_index[bound] = name
                group_exprs.append((bound, name))

        aggregates: list[tuple[ast.FuncCall, str]] = []
        agg_index: dict[ast.FuncCall, str] = {}

        def register_aggregate(call: ast.FuncCall) -> str:
            if call in agg_index:
                return agg_index[call]
            name = f"agg{len(aggregates) + 1}"
            agg_index[call] = name
            aggregates.append((call, name))
            return name

        def rewrite_with_aggregates(expr: ast.Expr) -> ast.Expr:
            """Bind an expression in the post-aggregation scope."""
            bound = self._bind_agg_operand(expr, scope)
            return self._fold_into_groups(
                bound, group_index, register_aggregate
            )

        item_exprs: list[tuple[ast.Expr, str]] = []
        for index, item in enumerate(stmt.items):
            if isinstance(item.expr, ast.Star):
                raise BindError("'*' select item is not allowed with GROUP BY")
            rewritten = rewrite_with_aggregates(item.expr)
            item_exprs.append(
                (rewritten, self._output_name(item, rewritten, index))
            )

        having_expr: Optional[ast.Expr] = None
        if stmt.having is not None:
            having_expr = rewrite_with_aggregates(stmt.having)

        agg_op = ops.Aggregate(plan, tuple(group_exprs), tuple(aggregates))
        output = {"items": item_exprs}
        if having_expr is not None:
            output["having"] = having_expr
        return agg_op, output

    def _bind_agg_operand(self, expr: ast.Expr, scope: _Scope) -> ast.Expr:
        """Bind column refs (incl. inside aggregate args) without rejecting
        aggregate calls."""
        expr = self._instantiate_expr(expr)

        def visit(node: ast.Expr) -> Optional[ast.Expr]:
            if isinstance(node, ast.ColumnRef):
                return scope.resolve(node).ref()
            if isinstance(node, ast.Param):
                raise ParameterError(f"unbound parameter ${node.name}")
            return None

        return exprs.transform(expr, visit)

    def _fold_into_groups(
        self,
        expr: ast.Expr,
        group_index: Mapping[ast.Expr, str],
        register_aggregate,
    ) -> ast.Expr:
        """Rewrite a bound expression into the Aggregate's output scope.

        Occurrences of group expressions become references to the group
        output columns; aggregate calls are registered and become
        references to aggregate output columns.  Any remaining base
        column reference is an error (non-grouped column).
        """
        if expr in group_index:
            return ast.ColumnRef(None, group_index[expr])
        if ast.is_aggregate_call(expr):
            name = register_aggregate(expr)
            return ast.ColumnRef(None, name)
        if isinstance(expr, ast.ColumnRef):
            raise BindError(
                f"column {expr} must appear in GROUP BY or inside an aggregate"
            )
        rebuilt = self._rebuild_children(
            expr, lambda child: self._fold_into_groups(child, group_index, register_aggregate)
        )
        return rebuilt

    @staticmethod
    def _rebuild_children(expr: ast.Expr, fn) -> ast.Expr:
        if isinstance(expr, ast.BinaryOp):
            return ast.BinaryOp(expr.op, fn(expr.left), fn(expr.right))
        if isinstance(expr, ast.UnaryOp):
            return ast.UnaryOp(expr.op, fn(expr.operand))
        if isinstance(expr, ast.IsNull):
            return ast.IsNull(fn(expr.operand), expr.negated)
        if isinstance(expr, ast.InList):
            return ast.InList(fn(expr.operand), tuple(fn(i) for i in expr.items), expr.negated)
        if isinstance(expr, ast.Between):
            return ast.Between(fn(expr.operand), fn(expr.low), fn(expr.high), expr.negated)
        if isinstance(expr, ast.FuncCall):
            return ast.FuncCall(expr.name, tuple(fn(a) for a in expr.args), expr.distinct)
        if isinstance(expr, ast.CaseExpr):
            return ast.CaseExpr(
                tuple((fn(c), fn(v)) for c, v in expr.branches),
                fn(expr.default) if expr.default is not None else None,
            )
        return expr

    # -- ORDER BY -------------------------------------------------------------------

    def _resolve_order_expr(
        self,
        expr: ast.Expr,
        project_exprs: tuple[tuple[ast.Expr, str], ...],
        scope: _Scope,
        has_aggregates: bool,
    ) -> ast.Expr:
        # 1. Match structurally against a projected expression.
        try:
            bound = (
                self._bind_agg_operand(expr, scope)
                if has_aggregates
                else self._bind_expr(expr, scope, allow_aggregates=False)
            )
        except (UnknownColumnError, UnknownTableError, AmbiguousColumnError):
            bound = None
        if bound is not None:
            for proj_expr, name in project_exprs:
                if proj_expr == bound:
                    return ast.ColumnRef(None, name)
        # 2. Match by output alias/name (also covers refs that were folded
        # through an Aggregate, e.g. ORDER BY s.name with output "name").
        if isinstance(expr, ast.ColumnRef):
            for _, name in project_exprs:
                if name.lower() == expr.name.lower():
                    return ast.ColumnRef(None, name)
        raise BindError(
            f"ORDER BY expression {expr} must appear in the select list"
        )


class _Dual(ops.Operator):
    """One-row, zero-column relation backing FROM-less SELECTs."""

    __slots__ = ()

    @property
    def columns(self) -> tuple[ops.OutCol, ...]:
        return ()

    def _describe(self) -> str:
        return "Dual"

    def __eq__(self, other) -> bool:
        return isinstance(other, _Dual)

    def __hash__(self) -> int:
        return hash(_Dual)


_DUAL = _Dual()


def _map_query_exprs(query: ast.QueryExpr, base_fn) -> ast.QueryExpr:
    """Apply ``base_fn`` to every scalar expression in a query AST,
    recursing into nested IN/EXISTS subqueries."""
    if isinstance(query, ast.SetOp):
        return ast.SetOp(
            query.op,
            query.all,
            _map_query_exprs(query.left, base_fn),
            _map_query_exprs(query.right, base_fn),
        )
    assert isinstance(query, ast.SelectStmt)

    def fn(expr: ast.Expr) -> ast.Expr:
        expr = base_fn(expr)

        def visit(node: ast.Expr):
            if isinstance(node, ast.InSubquery):
                return ast.InSubquery(
                    node.operand, _map_query_exprs(node.query, base_fn), node.negated
                )
            if isinstance(node, ast.ExistsSubquery):
                return ast.ExistsSubquery(
                    _map_query_exprs(node.query, base_fn), node.negated
                )
            return None

        return exprs.transform(expr, visit)

    def map_table(table_expr: ast.TableExpr) -> ast.TableExpr:
        if isinstance(table_expr, ast.SubqueryRef):
            return ast.SubqueryRef(_map_query_exprs(table_expr.query, fn), table_expr.alias)
        if isinstance(table_expr, ast.JoinRef):
            return ast.JoinRef(
                map_table(table_expr.left),
                map_table(table_expr.right),
                table_expr.kind,
                fn(table_expr.condition) if table_expr.condition is not None else None,
            )
        return table_expr

    return ast.SelectStmt(
        items=tuple(
            ast.SelectItem(
                item.expr if isinstance(item.expr, ast.Star) else fn(item.expr),
                item.alias,
            )
            for item in query.items
        ),
        from_items=tuple(map_table(t) for t in query.from_items),
        where=fn(query.where) if query.where is not None else None,
        group_by=tuple(fn(g) for g in query.group_by),
        having=fn(query.having) if query.having is not None else None,
        distinct=query.distinct,
        order_by=tuple(
            ast.OrderItem(fn(o.expr), o.descending) for o in query.order_by
        ),
        limit=query.limit,
        offset=query.offset,
    )


def translate_query(
    query: ast.QueryExpr,
    catalog: Catalog,
    param_values: Optional[Mapping[str, object]] = None,
    **kwargs,
) -> ops.Operator:
    """Convenience wrapper around :class:`Translator`."""
    return Translator(catalog, param_values=param_values, **kwargs).translate(query)
