"""The durability manager: glue between a Database and its data_dir.

One :class:`DurabilityManager` owns a data directory: the WAL writer,
checkpoint/truncation logic, and the mutation hooks that turn logical
changes into WAL records.  Attachment has two shapes:

* **fresh or existing directory** (``Database.open`` /
  ``Database(data_dir=...)``): if the directory holds durable state the
  target database must be empty and is recovered from it; otherwise an
  initial checkpoint of the (possibly pre-populated, for
  ``Database.save``) state is published at LSN 0;
* after attachment every table gets an ``on_mutate`` hook and the grant
  registry an ``on_change`` hook, so mutations are logged no matter
  which API level performed them — including the compensating writes a
  transaction ROLLBACK issues.

Record kinds: ``ddl`` (CREATE TABLE / CREATE VIEW / DROP / AUTHORIZE,
replayed as SQL), ``row`` (insert/update/delete with stable row ids and
the validity-cache data version), ``index``, ``grant``/``revoke`` (with
the resulting registry version — the policy epoch), ``truman``, and
``participation``.
"""

from __future__ import annotations

import os
import threading
from typing import TYPE_CHECKING, Optional

from repro.errors import DurabilityError
from repro.durability import layout
from repro.durability.faults import FaultInjector
from repro.durability.recovery import recover
from repro.durability.snapshot import (
    _participation_state,
    capture_state,
    write_snapshot,
)
from repro.durability.wal import WalWriter

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database
    from repro.storage.table import Table


class DurabilityManager:
    """Write-ahead logging, checkpoints, and recovery for one Database."""

    def __init__(
        self,
        data_dir: str,
        sync_policy: str = "group",
        injector: Optional[FaultInjector] = None,
    ):
        self.data_dir = data_dir
        self.sync_policy = sync_policy
        self.injector = injector
        self.db: Optional["Database"] = None
        self.writer: Optional[WalWriter] = None
        self.snapshot_lsn = 0
        self.recovery_info: dict = {}
        self.closed = False
        self.commits = 0
        self.checkpoints = 0
        self._checkpoint_lock = threading.Lock()

    # -- attachment ------------------------------------------------------

    def attach(self, db: "Database") -> None:
        os.makedirs(self.data_dir, exist_ok=True)
        self.db = db
        if layout.has_durable_data(self.data_dir):
            if db.catalog.tables() or db.catalog.views():
                raise DurabilityError(
                    f"{self.data_dir!r} already holds durable state; it can "
                    "only be opened into an empty database "
                    "(use Database.open, not save)"
                )
            self.recovery_info = recover(db, self.data_dir)
            self.snapshot_lsn = self.recovery_info["snapshot_lsn"]
            segments = layout.list_segments(self.data_dir)
            tail_base = segments[-1][0] if segments else self.snapshot_lsn
            self.writer = WalWriter(
                layout.segment_path(self.data_dir, tail_base),
                start_lsn=self.recovery_info["last_lsn"] + 1,
                sync_policy=self.sync_policy,
                injector=self.injector,
            )
        else:
            # fresh directory: initial checkpoint of the current state
            # (empty for open(), populated for save()) at LSN 0
            write_snapshot(
                layout.snapshot_path(self.data_dir, 0),
                capture_state(db, 0),
                self.injector,
            )
            self.snapshot_lsn = 0
            self.writer = WalWriter(
                layout.segment_path(self.data_dir, 0),
                start_lsn=1,
                sync_policy=self.sync_policy,
                injector=self.injector,
            )
        db.durability = self
        for table in db._tables.values():
            self.register_table(table)
        db.grants.on_change = self._registry_change
        db.vpd_policies.on_change = self._vpd_change

    # -- logging hooks ---------------------------------------------------

    def _append(self, payload: dict) -> int:
        if self.closed:
            raise DurabilityError(
                f"durable database at {self.data_dir!r} is closed"
            )
        return self.writer.append(payload)

    def log_ddl(self, sql: str) -> int:
        return self._append({"kind": "ddl", "sql": sql})

    def log_truman(self, table_name: str, view_name: str) -> int:
        return self._append(
            {"kind": "truman", "table": table_name, "view": view_name}
        )

    def log_participation(self, constraint) -> int:
        return self._append(
            {
                "kind": "participation",
                "constraint": _participation_state(constraint),
            }
        )

    def register_table(self, table: "Table") -> None:
        """Install the mutation hook emitting WAL records for one table."""
        name = table.schema.name.lower()

        def hook(event: str, *args) -> None:
            if event == "insert":
                rid, row = args
                self._append(
                    {
                        "kind": "row",
                        "op": "insert",
                        "table": name,
                        "rid": rid,
                        "row": list(row),
                        "dv": self.db.validity_cache.data_version,
                    }
                )
            elif event == "update":
                rid, row, _old = args
                self._append(
                    {
                        "kind": "row",
                        "op": "update",
                        "table": name,
                        "rid": rid,
                        "row": list(row),
                        "dv": self.db.validity_cache.data_version,
                    }
                )
            elif event == "delete":
                rid, _row = args
                self._append(
                    {
                        "kind": "row",
                        "op": "delete",
                        "table": name,
                        "rid": rid,
                        "dv": self.db.validity_cache.data_version,
                    }
                )
            elif event == "index":
                columns, unique = args
                self._append(
                    {
                        "kind": "index",
                        "table": name,
                        "columns": list(columns),
                        "unique": unique,
                    }
                )

        table.on_mutate = hook

    def _registry_change(self, event: str, info: dict) -> None:
        payload = {"kind": event}
        payload.update(info)
        self._append(payload)

    def _vpd_change(self, table: str, text: Optional[str], version: int) -> None:
        # callable policies have no serializable form; they stay
        # process-local exactly as before VPD records existed
        if text is None:
            return
        self.log_vpd(table, text, version)

    def log_vpd(self, table: str, predicate: str, version: int) -> int:
        return self._append(
            {"kind": "vpd", "table": table, "predicate": predicate,
             "vv": version}
        )

    def log_rebac(self, payload: dict) -> int:
        """Append a ReBAC policy record (``rebac_namespace`` attaches
        the compiled-policy manager on replay; ``rebac_tuple`` carries
        one relationship-tuple write/delete)."""
        return self._append(dict(payload))

    # -- commit / checkpoint ---------------------------------------------

    def commit(self) -> None:
        """Make everything appended so far durable (group commit)."""
        if self.closed:
            return
        self.commits += 1
        self.writer.sync()

    def checkpoint(self) -> int:
        """Snapshot the current state and truncate the log behind it.

        The caller must have quiesced DML (the gateway checkpoints after
        drain; the CLI and direct API are single-threaded).  Returns the
        checkpoint LSN.
        """
        with self._checkpoint_lock:
            if self.closed:
                raise DurabilityError(
                    f"durable database at {self.data_dir!r} is closed"
                )
            if self.injector is not None:
                self.injector.fire("checkpoint.before_snapshot")
            last_lsn = self.writer.last_appended_lsn
            self.writer.fsync_now()
            write_snapshot(
                layout.snapshot_path(self.data_dir, last_lsn),
                capture_state(self.db, last_lsn),
                self.injector,
            )
            if self.injector is not None:
                self.injector.fire("checkpoint.after_snapshot")
            # rotate the log so replay after this snapshot starts empty
            self.writer.close()
            self.writer = WalWriter(
                layout.segment_path(self.data_dir, last_lsn),
                start_lsn=last_lsn + 1,
                sync_policy=self.sync_policy,
                injector=self.injector,
            )
            self.snapshot_lsn = last_lsn
            # truncate: drop snapshots and segments the new pair obsoletes
            for lsn, path in layout.list_snapshots(self.data_dir):
                if lsn < last_lsn:
                    os.remove(path)
            for base, path in layout.list_segments(self.data_dir):
                if base < last_lsn:
                    os.remove(path)
            if self.injector is not None:
                self.injector.fire("checkpoint.after_truncate")
            self.checkpoints += 1
            return last_lsn

    def close(self, checkpoint: bool = True) -> None:
        if self.closed:
            return
        if checkpoint:
            self.checkpoint()
        self.writer.close()
        self.closed = True

    # -- observability ---------------------------------------------------

    def wal_stats(self) -> dict[str, object]:
        stats: dict[str, object] = {
            "data_dir": self.data_dir,
            "sync_policy": self.sync_policy,
            "wal_records": self.writer.records_appended,
            "wal_bytes": self.writer.bytes_appended,
            "wal_fsyncs": self.writer.fsync_count,
            "wal_commits": self.commits,
            "wal_last_lsn": self.writer.last_appended_lsn,
            "wal_synced_lsn": self.writer.synced_lsn,
            "snapshot_lsn": self.snapshot_lsn,
            "checkpoints": self.checkpoints,
        }
        if self.recovery_info:
            stats["recovered_wal_records"] = self.recovery_info[
                "wal_records_replayed"
            ]
            stats["recovered_torn_tail"] = self.recovery_info["torn_truncated"]
            stats["recovery_s"] = round(self.recovery_info["recover_s"], 6)
        return stats
