"""Snapshot (checkpoint) files: full serialized database state.

A snapshot captures everything a recovered process needs in order to
continue as if it had never stopped: the catalog (tables, constraints,
views — re-rendered to canonical DDL and replayed through the normal
``CREATE`` path on load, which also rebuilds primary-key/unique
indexes), row storage with **stable row ids** (WAL records address rows
by id, so ids must survive), extra hash indexes, the grant registry
with its delegation records, Truman policy mappings, AUTHORIZE update
policies, manually declared participation constraints, and the three
counters that make up the authorization state's version — the validity
cache's data version and the policy epoch (grant-registry version,
catalog views version).  Chirkova & Yu's determinacy observation is the
design rule here: what a view reveals depends on the instance, so the
instance and the policy state are checkpointed *together* under one
LSN, never separately.

File format: a one-line header ``REPRO-SNAPSHOT 1 <crc32> <length>``
followed by a canonical JSON body.  Snapshots are published atomically
(write temp file, fsync, rename), so a crash mid-checkpoint leaves the
previous snapshot in force; a CRC or length mismatch marks the file
invalid and recovery falls back to the next older snapshot.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import TYPE_CHECKING, Optional

from repro.sql import ast, parse_statement, render
from repro.authviews.registry import GrantRecord
from repro.catalog.constraints import TotalParticipation
from repro.durability.faults import FaultInjector, InjectedCrash

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database

MAGIC = "REPRO-SNAPSHOT"
FORMAT = 1


# -- expression round-tripping ----------------------------------------------


def _render_pred(expr: Optional[ast.Expr]) -> Optional[str]:
    return None if expr is None else render(expr)


def _parse_pred(sql: Optional[str]) -> Optional[ast.Expr]:
    if sql is None:
        return None
    statement = parse_statement(f"select * from _snapshot_ where {sql}")
    return statement.where


# -- catalog -> canonical DDL ------------------------------------------------


def _table_ddl(db: "Database", schema) -> str:
    """Reconstruct a CREATE TABLE statement from catalog metadata."""
    catalog = db.catalog
    columns = tuple(
        ast.ColumnDef(
            name=col.name,
            type_name=col.dtype.value,
            not_null=col.not_null,
        )
        for col in schema.columns
    )
    pk = catalog.primary_key(schema.name)
    statement = ast.CreateTable(
        name=schema.name,
        columns=columns,
        primary_key=pk.columns if pk is not None else (),
        foreign_keys=tuple(
            ast.ForeignKeySpec(fk.columns, fk.ref_table, fk.ref_columns)
            for fk in catalog.foreign_keys_for(schema.name)
        ),
        uniques=tuple(u.columns for u in catalog.uniques_for(schema.name)),
        checks=tuple(
            ast.CheckSpec(c.predicate) for c in catalog.checks_for(schema.name)
        ),
    )
    return render(statement)


def _participation_state(constraint: TotalParticipation) -> dict:
    return {
        "core_table": constraint.core_table,
        "remainder_table": constraint.remainder_table,
        "join_pairs": [list(pair) for pair in constraint.join_pairs],
        "core_pred": _render_pred(constraint.core_pred),
        "remainder_pred": _render_pred(constraint.remainder_pred),
        "visible_to": (
            None
            if constraint.visible_to is None
            else sorted(constraint.visible_to)
        ),
        "name": constraint.name,
    }


def load_participation(state: dict) -> TotalParticipation:
    return TotalParticipation(
        core_table=state["core_table"],
        remainder_table=state["remainder_table"],
        join_pairs=tuple(tuple(pair) for pair in state["join_pairs"]),
        core_pred=_parse_pred(state["core_pred"]),
        remainder_pred=_parse_pred(state["remainder_pred"]),
        visible_to=(
            None
            if state["visible_to"] is None
            else frozenset(state["visible_to"])
        ),
        name=state["name"],
    )


# -- capture -----------------------------------------------------------------


def capture_state(db: "Database", last_lsn: int) -> dict:
    """Serialize the full database state as of WAL position ``last_lsn``.

    The caller must have quiesced the database (no concurrent DML).
    """
    tables: dict[str, dict] = {}
    for schema in db.catalog.tables():
        table = db.table(schema.name)
        tables[schema.name.lower()] = {
            "next_id": table.next_row_id,
            "rows": [[rid, list(row)] for rid, row in table.rows_with_ids()],
            "indexes": [
                {"columns": list(names), "unique": unique}
                for names, unique in table.index_defs()
            ],
        }
    views = [
        render(
            ast.CreateView(
                name=view.name,
                query=view.query,
                authorization=view.authorization,
                column_names=view.column_names,
            )
        )
        for view in db.catalog.views()
    ]
    return {
        "format": FORMAT,
        "last_lsn": last_lsn,
        "ddl": [_table_ddl(db, schema) for schema in db.catalog.tables()],
        "views": views,
        "tables": tables,
        "grants": [
            [r.view, r.grantee, r.grantor, r.grant_option]
            for r in db.grants.grants()
        ],
        "truman": dict(db.truman_policy),
        "authorize": [
            render(policy.to_statement())
            for policy in db.update_authorizer.policies()
        ],
        "participations": [
            _participation_state(c) for c in db.catalog.manual_participations()
        ],
        "vpd": [[table, text] for table, text in db.vpd_policies.policy_texts()],
        "rebac": (
            None
            if getattr(db, "rebac", None) is None
            else db.rebac.state_dict()
        ),
        "counters": {
            "data_version": db.validity_cache.data_version,
            "grants_version": db.grants.version,
            "views_version": db.catalog.views_version,
        },
    }


def restore_state(db: "Database", state: dict) -> None:
    """Load a captured state into an empty, not-yet-durable Database."""
    for sql in state["ddl"]:
        db.execute(sql)
    for sql in state["views"]:
        db.execute(sql)
    for name, table_state in state["tables"].items():
        table = db.table(name)
        for rid, row in table_state["rows"]:
            table.insert(tuple(row), row_id=rid)
        table.set_next_row_id(table_state["next_id"])
        for index_def in table_state["indexes"]:
            columns = tuple(index_def["columns"])
            unique = index_def["unique"]
            if not table.has_index(columns, unique):
                table.create_index(columns, unique=unique)
    db.grants.restore(
        [
            GrantRecord(view, grantee, grantor, bool(option))
            for view, grantee, grantor, option in state["grants"]
        ],
        version=state["counters"]["grants_version"],
    )
    for table_name, view_name in state["truman"].items():
        db.set_truman_view(table_name, view_name)
    for sql in state["authorize"]:
        db.execute(sql)
    for participation in state["participations"]:
        db.add_participation_constraint(load_participation(participation))
    for table, text in state.get("vpd", ()):
        db.vpd_policies.add_policy(table, text)
    rebac_state = state.get("rebac")
    if rebac_state is not None:
        from repro.rebac import NamespaceConfig, attach_rebac

        # tables/views/grants above already restored the compiled
        # schema; re-attach the manager and its tuples without DML —
        # the materialized RebacGrants rows are part of table state
        manager = attach_rebac(
            db,
            NamespaceConfig.from_state(rebac_state["namespace"]),
            create_schema=False,
        )
        manager.restore_tuples(rebac_state["tuples"])
    db.validity_cache.restore_data_version(state["counters"]["data_version"])
    db.catalog.restore_views_version(state["counters"]["views_version"])


# -- file I/O ----------------------------------------------------------------


def write_snapshot(
    path: str, state: dict, injector: Optional[FaultInjector] = None
) -> None:
    """Atomically publish ``state`` at ``path`` (temp + fsync + rename)."""
    body = json.dumps(state, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    header = f"{MAGIC} {FORMAT} {zlib.crc32(body) & 0xFFFFFFFF} {len(body)}\n"
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(header.encode("ascii"))
        if injector is not None and injector.consume("checkpoint.mid_snapshot"):
            # half the body reaches disk; the file is never renamed into
            # place, so recovery must ignore it
            handle.write(body[: len(body) // 2])
            handle.flush()
            raise InjectedCrash("checkpoint.mid_snapshot")
        handle.write(body)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_dir(os.path.dirname(path) or ".")


def load_snapshot(path: str) -> Optional[dict]:
    """Parse and validate a snapshot file; None when invalid/corrupt."""
    try:
        with open(path, "rb") as handle:
            header = handle.readline()
            body = handle.read()
    except OSError:
        return None
    try:
        parts = header.decode("ascii").split()
        if len(parts) != 4 or parts[0] != MAGIC or int(parts[1]) != FORMAT:
            return None
        crc, length = int(parts[2]), int(parts[3])
    except (UnicodeDecodeError, ValueError):
        return None
    if len(body) != length or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
        return None
    try:
        return json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
