"""On-disk layout of a durable data directory.

::

    data_dir/
      snapshot-<LSN 16 digits>.json   checkpoint taken at that LSN
      wal-<LSN 16 digits>.log         segment holding records with lsn > LSN

A checkpoint at LSN *N* publishes ``snapshot-N.json``, rotates the log
to ``wal-N.log``, and deletes every older snapshot and segment (log
truncation).  Recovery pairs the newest valid snapshot with every
segment record past its LSN, so a crash between any two checkpoint
steps leaves a recoverable directory.
"""

from __future__ import annotations

import os
import re

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{16})\.json$")
_SEGMENT_RE = re.compile(r"^wal-(\d{16})\.log$")


def snapshot_path(data_dir: str, lsn: int) -> str:
    return os.path.join(data_dir, f"snapshot-{lsn:016d}.json")


def segment_path(data_dir: str, base_lsn: int) -> str:
    return os.path.join(data_dir, f"wal-{base_lsn:016d}.log")


def _scan(data_dir: str, pattern: re.Pattern) -> list[tuple[int, str]]:
    found: list[tuple[int, str]] = []
    try:
        names = os.listdir(data_dir)
    except FileNotFoundError:
        return []
    for name in names:
        match = pattern.match(name)
        if match:
            found.append((int(match.group(1)), os.path.join(data_dir, name)))
    found.sort()
    return found


def list_snapshots(data_dir: str) -> list[tuple[int, str]]:
    """(lsn, path) of every snapshot file, oldest first."""
    return _scan(data_dir, _SNAPSHOT_RE)


def list_segments(data_dir: str) -> list[tuple[int, str]]:
    """(base_lsn, path) of every WAL segment, oldest first."""
    return _scan(data_dir, _SEGMENT_RE)


def has_durable_data(data_dir: str) -> bool:
    return bool(list_snapshots(data_dir)) or bool(list_segments(data_dir))
