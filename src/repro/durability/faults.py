"""Fault injection for crash-recovery testing.

The durability layer calls :meth:`FaultInjector.fire` at named *crash
points* on the write path (around WAL append, fsync, and checkpoint
steps).  A disarmed injector is a few-nanosecond dictionary probe; an
armed one raises :class:`InjectedCrash` when its countdown for that
point reaches zero, simulating the process dying at exactly that
instant.  Tests then re-open the data directory and compare the
recovered state against a never-crashed oracle.

:class:`InjectedCrash` derives from ``BaseException`` so that library
code catching ``ReproError`` (or even ``Exception``) cannot absorb a
simulated crash and keep running past it.
"""

from __future__ import annotations

import threading


class InjectedCrash(BaseException):
    """A simulated process crash at a named crash point."""

    def __init__(self, point: str):
        super().__init__(f"injected crash at {point!r}")
        self.point = point


#: every crash point the write path fires, in write-path order —
#: the recovery test matrix iterates this list
CRASH_POINTS = (
    "wal.before_append",   # nothing written: the operation is lost whole
    "wal.torn_append",     # half a frame written: CRC must catch it
    "wal.after_append",    # framed + flushed, not fsynced
    "wal.before_fsync",    # group-commit leader dies pre-fsync
    "wal.after_fsync",     # durable; crash immediately after
    "checkpoint.before_snapshot",   # checkpoint never starts
    "checkpoint.mid_snapshot",      # half-written snapshot temp file
    "checkpoint.after_snapshot",    # snapshot published, WAL not truncated
    "checkpoint.after_truncate",    # complete checkpoint, then crash
)


class FaultInjector:
    """Arms crash points with countdowns; thread-safe."""

    def __init__(self):
        self._armed: dict[str, int] = {}
        self._lock = threading.Lock()
        #: crash points that actually fired (for test assertions)
        self.fired: list[str] = []

    def arm(self, point: str, countdown: int = 1) -> None:
        """Crash at the ``countdown``-th future visit of ``point``."""
        if countdown < 1:
            raise ValueError("countdown must be >= 1")
        with self._lock:
            self._armed[point] = countdown

    def disarm(self, point: str) -> None:
        with self._lock:
            self._armed.pop(point, None)

    def consume(self, point: str) -> bool:
        """Decrement the countdown; True when this visit should crash."""
        with self._lock:
            remaining = self._armed.get(point)
            if remaining is None:
                return False
            remaining -= 1
            if remaining > 0:
                self._armed[point] = remaining
                return False
            del self._armed[point]
            self.fired.append(point)
            return True

    def fire(self, point: str) -> None:
        """Raise :class:`InjectedCrash` when ``point`` is due to crash."""
        if self.consume(point):
            raise InjectedCrash(point)
