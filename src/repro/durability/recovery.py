"""Crash recovery: latest valid snapshot + WAL tail replay.

``Database.open(data_dir)`` funnels here.  The algorithm:

1. **Choose a snapshot.**  Candidates are tried newest-first; a file
   whose CRC/length check fails is skipped (external corruption) and
   the next older one is used.  A half-written checkpoint can never be
   chosen because snapshots are published by atomic rename.
2. **Restore the snapshot** into a fresh in-memory database — DDL
   replayed through the normal CREATE path (rebuilding PK/unique
   indexes), rows re-inserted under their original ids, extra indexes,
   grants, policies, and the authorization-state counters.
3. **Replay the WAL tail**: every record with ``lsn`` greater than the
   snapshot's is re-applied in LSN order.  A torn/corrupt record is
   legal only at the very end of the newest segment (a crash mid-write)
   — it is truncated, not applied; anywhere else it is unrecoverable
   corruption and recovery raises :class:`DurabilityError` rather than
   silently dropping committed operations.
4. **Restore counters**: the validity-cache data version and the
   grant-registry version are advanced to the maxima recorded in the
   replayed records, so the service layer's shared validity cache is
   correctly cold-or-valid after the restart (a decision stamped before
   the crash can never validate against a recovered-but-different
   state).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.errors import DurabilityError
from repro.durability import layout
from repro.durability.snapshot import (
    load_participation,
    load_snapshot,
    restore_state,
)
from repro.durability.wal import read_wal, truncate_torn

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


def apply_record(db: "Database", record: dict) -> None:
    """Re-apply one WAL record to a recovering database."""
    kind = record["kind"]
    if kind == "ddl":
        db.execute(record["sql"])
    elif kind == "row":
        table = db.table(record["table"])
        op = record["op"]
        if op == "insert":
            table.insert(tuple(record["row"]), row_id=record["rid"])
        elif op == "update":
            table.update_row(record["rid"], tuple(record["row"]))
        elif op == "delete":
            table.delete_row(record["rid"])
        else:
            raise DurabilityError(f"unknown row operation {op!r} in WAL")
    elif kind == "index":
        table = db.table(record["table"])
        columns = tuple(record["columns"])
        if not table.has_index(columns, record["unique"]):
            table.create_index(columns, unique=record["unique"])
    elif kind == "grant":
        grantor = record["grantor"]
        db.grants.grant(
            record["view"],
            record["grantee"],
            grantor=None if grantor == "_dba" else grantor,
            grant_option=record["option"],
        )
    elif kind == "revoke":
        db.grants.revoke(
            record["view"], record["grantee"], grantor=record["grantor"]
        )
    elif kind == "truman":
        db.set_truman_view(record["table"], record["view"])
    elif kind == "vpd":
        db.vpd_policies.add_policy(record["table"], record["predicate"])
    elif kind == "participation":
        db.add_participation_constraint(
            load_participation(record["constraint"])
        )
    elif kind == "rebac_namespace":
        from repro.rebac import NamespaceConfig, attach_rebac

        # the schema DDL precedes this record in the log; only the
        # manager itself needs (re-)attaching here
        attach_rebac(
            db,
            NamespaceConfig.from_state(record["namespace"]),
            create_schema=False,
        )
    elif kind == "rebac_tuple":
        if getattr(db, "rebac", None) is None:
            raise DurabilityError(
                "rebac_tuple WAL record with no preceding rebac_namespace"
            )
        db.rebac.apply_record(record)
    else:
        raise DurabilityError(f"unknown WAL record kind {kind!r}")


def recover(db: "Database", data_dir: str) -> dict:
    """Restore ``db`` (which must be empty) from ``data_dir``.

    Returns the recovery report: chosen snapshot LSN, records replayed,
    whether a torn tail was truncated, the last LSN seen (the writer
    resumes at ``last_lsn + 1``), and wall-clock recovery time.
    """
    started = time.perf_counter()
    snapshots = layout.list_snapshots(data_dir)
    segments = layout.list_segments(data_dir)

    state = None
    skipped_corrupt = 0
    for _, path in reversed(snapshots):
        state = load_snapshot(path)
        if state is not None:
            break
        skipped_corrupt += 1
    if state is None and not any(base == 0 for base, _ in segments):
        raise DurabilityError(
            f"no valid snapshot in {data_dir!r} and the WAL does not reach "
            "back to LSN 0; the data directory is unrecoverable"
        )

    snapshot_lsn = -1
    if state is not None:
        restore_state(db, state)
        snapshot_lsn = state["last_lsn"]

    replayed = 0
    torn_truncated = False
    last_lsn = max(snapshot_lsn, 0)
    max_data_version = None
    max_grants_version = None
    max_epoch = 0
    for position, (base, path) in enumerate(segments):
        records, valid_bytes, torn = read_wal(path)
        if torn:
            if position != len(segments) - 1:
                raise DurabilityError(
                    f"corrupt WAL record mid-stream in {path!r}; later "
                    "segments hold committed operations that would be lost"
                )
            truncate_torn(path, valid_bytes)
            torn_truncated = True
        for record in records:
            lsn = record["lsn"]
            if lsn <= snapshot_lsn:
                continue
            apply_record(db, record)
            replayed += 1
            last_lsn = max(last_lsn, lsn)
            if "dv" in record:
                dv = record["dv"]
                max_data_version = (
                    dv if max_data_version is None else max(max_data_version, dv)
                )
            if "gv" in record:
                gv = record["gv"]
                max_grants_version = (
                    gv
                    if max_grants_version is None
                    else max(max_grants_version, gv)
                )
            if "epoch" in record:
                max_epoch = max(max_epoch, record["epoch"])

    if max_data_version is not None:
        db.validity_cache.restore_data_version(max_data_version)
    if max_grants_version is not None:
        db.grants.restore_version(max_grants_version)

    return {
        "snapshot_lsn": max(snapshot_lsn, 0),
        "wal_records_replayed": replayed,
        "wal_segments": len(segments),
        "torn_truncated": torn_truncated,
        "corrupt_snapshots_skipped": skipped_corrupt,
        "last_lsn": last_lsn,
        "recover_s": time.perf_counter() - started,
        # cluster extras: the highest policy epoch stamped on a replayed
        # record, and the snapshot's cluster block (policy epoch at
        # checkpoint time) — a ClusterWal re-opening durable state
        # restores its epoch from the max of the two
        "max_epoch": max_epoch,
        "cluster": (state or {}).get("cluster"),
    }
