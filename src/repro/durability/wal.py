"""Append-only write-ahead log with CRC32 framing and group commit.

Every logical mutation of a durable database becomes one WAL record: a
JSON payload carrying a monotonically increasing LSN, framed as::

    [4-byte little-endian payload length][4-byte CRC32 of payload][payload]

A record is *valid* only when the full frame is present and the CRC
matches; a crash mid-write therefore leaves a detectably torn tail that
recovery truncates instead of applying (a half-applied mutation would
silently diverge from the pre-crash state).

Durability is decoupled from appending so that it does not serialize
the enforcement gateway's worker pool:

* :meth:`WalWriter.append` frames the record and writes it to the OS
  under a short lock (microseconds);
* :meth:`WalWriter.sync` implements **group commit**: the first caller
  to arrive becomes the *leader* and issues one ``fsync`` covering
  every record appended so far; concurrent callers whose records are
  covered simply wait for the leader's fsync — N concurrent commits
  cost one disk flush, not N.

Sync policies: ``"group"`` (the default, described above), ``"always"``
(fsync inside every append — the per-operation baseline the E15
benchmark compares against), and ``"none"`` (never fsync; OS-crash
durability is forfeited but process-crash recovery still works because
appends are flushed to the kernel).
"""

from __future__ import annotations

import json
import os
import struct
import threading
from typing import Optional

from repro.errors import DurabilityError
from repro.durability.faults import FaultInjector, InjectedCrash

_HEADER = struct.Struct("<II")  # (payload length, CRC32 of payload)

#: a frame longer than this is treated as corruption, not data
MAX_RECORD_BYTES = 64 * 1024 * 1024

SYNC_POLICIES = ("group", "always", "none")


def _crc(payload: bytes) -> int:
    import zlib

    return zlib.crc32(payload) & 0xFFFFFFFF


def encode_record(payload: dict) -> bytes:
    body = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    return _HEADER.pack(len(body), _crc(body)) + body


def read_wal(path: str) -> tuple[list[dict], int, bool]:
    """Decode a WAL file.

    Returns ``(records, valid_bytes, torn)`` where ``valid_bytes`` is
    the offset one past the last intact record and ``torn`` is True
    when trailing bytes exist that do not form a CRC-valid record.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    return decode_frames(data)


def decode_frames(data: bytes) -> tuple[list[dict], int, bool]:
    """Decode a byte stream of CRC-framed records.

    Shared between file recovery (:func:`read_wal`) and the cluster's
    WAL shipper (:mod:`repro.cluster.shipper`), which round-trips every
    shipped record through the same framing a durable log would use.
    """
    records: list[dict] = []
    offset = 0
    torn = False
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            torn = True
            break
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES or start + length > len(data):
            torn = True
            break
        body = data[start : start + length]
        if _crc(body) != crc:
            torn = True
            break
        try:
            record = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            torn = True
            break
        records.append(record)
        offset = start + length
    return records, offset, torn


def truncate_torn(path: str, valid_bytes: int) -> None:
    """Drop a torn tail so future appends start at a record boundary."""
    with open(path, "r+b") as handle:
        handle.truncate(valid_bytes)
        handle.flush()
        os.fsync(handle.fileno())


class WalWriter:
    """Thread-safe appender over one WAL segment file."""

    def __init__(
        self,
        path: str,
        start_lsn: int,
        sync_policy: str = "group",
        injector: Optional[FaultInjector] = None,
    ):
        if sync_policy not in SYNC_POLICIES:
            raise DurabilityError(
                f"unknown WAL sync policy {sync_policy!r} "
                f"(expected one of {SYNC_POLICIES})"
            )
        self.path = path
        self.sync_policy = sync_policy
        self.injector = injector
        self._file = open(path, "ab")
        self._append_lock = threading.Lock()
        self._cond = threading.Condition()
        self._next_lsn = start_lsn
        self._last_appended = start_lsn - 1
        self._synced_lsn = start_lsn - 1
        self._syncing = False
        self._closed = False
        # counters (read by \wal-stats and the E15 benchmark)
        self.records_appended = 0
        self.bytes_appended = 0
        self.fsync_count = 0

    # -- appending -------------------------------------------------------

    @property
    def last_appended_lsn(self) -> int:
        with self._append_lock:
            return self._last_appended

    @property
    def synced_lsn(self) -> int:
        with self._cond:
            return self._synced_lsn

    def append(self, payload: dict) -> int:
        """Frame ``payload``, assign it the next LSN, write it out.

        The record is flushed to the OS before returning (surviving a
        process crash); it survives an OS crash only once a later
        :meth:`sync` covers its LSN (or with the ``"always"`` policy).
        """
        with self._append_lock:
            if self._closed:
                raise DurabilityError(f"WAL writer for {self.path} is closed")
            lsn = self._next_lsn
            payload = dict(payload)
            payload["lsn"] = lsn
            frame = encode_record(payload)
            if self.injector is not None:
                self.injector.fire("wal.before_append")
                if self.injector.consume("wal.torn_append"):
                    # simulate the process dying mid-write: half a frame
                    # reaches the file, then nothing else ever does
                    self._file.write(frame[: max(1, len(frame) // 2)])
                    self._file.flush()
                    raise InjectedCrash("wal.torn_append")
            self._file.write(frame)
            self._file.flush()
            self._next_lsn = lsn + 1
            self._last_appended = lsn
            self.records_appended += 1
            self.bytes_appended += len(frame)
            if self.injector is not None:
                self.injector.fire("wal.after_append")
            if self.sync_policy == "always":
                if self.injector is not None:
                    self.injector.fire("wal.before_fsync")
                os.fsync(self._file.fileno())
                self.fsync_count += 1
                with self._cond:
                    self._synced_lsn = lsn
                if self.injector is not None:
                    self.injector.fire("wal.after_fsync")
        return lsn

    # -- group commit ----------------------------------------------------

    def sync(self, lsn: Optional[int] = None) -> None:
        """Block until every record up to ``lsn`` is fsynced.

        Group commit: one concurrent caller fsyncs on behalf of all;
        the rest wait on the condition variable and return as soon as
        the covering flush lands.
        """
        if self.sync_policy != "group":
            return  # "always" synced in append; "none" never syncs
        with self._append_lock:
            target = self._last_appended if lsn is None else lsn
        while True:
            with self._cond:
                while self._synced_lsn < target and self._syncing:
                    self._cond.wait()
                if self._synced_lsn >= target:
                    return
                self._syncing = True
            # we are the leader; cover everything appended so far
            with self._append_lock:
                cover = self._last_appended
            synced = False
            try:
                if self.injector is not None:
                    self.injector.fire("wal.before_fsync")
                os.fsync(self._file.fileno())
                self.fsync_count += 1
                synced = True
            finally:
                with self._cond:
                    self._syncing = False
                    if synced:
                        self._synced_lsn = max(self._synced_lsn, cover)
                    self._cond.notify_all()
            if self.injector is not None:
                self.injector.fire("wal.after_fsync")

    def fsync_now(self) -> None:
        """Unconditional flush regardless of policy (checkpoint uses it)."""
        with self._append_lock:
            if self._closed:
                return
            cover = self._last_appended
            os.fsync(self._file.fileno())
            self.fsync_count += 1
        with self._cond:
            self._synced_lsn = max(self._synced_lsn, cover)

    def close(self) -> None:
        with self._append_lock:
            if self._closed:
                return
            self._closed = True
            self._file.flush()
            os.fsync(self._file.fileno())
            self._file.close()
