"""repro.durability — crash-safe persistence for the database.

The subsystem gives the in-memory engine a durable form without
touching its query path:

* :mod:`repro.durability.wal` — append-only write-ahead log with
  per-record CRC32 framing and **group commit** (one fsync covers every
  concurrently committed record);
* :mod:`repro.durability.snapshot` — checkpoint files serializing
  tables (with stable row ids), indexes, the auth-view registry, update
  policies, and the policy-epoch / data-version counters, published by
  atomic rename;
* :mod:`repro.durability.recovery` — ``Database.open(data_dir)``: load
  the newest valid snapshot, replay the WAL tail in LSN order, truncate
  a torn final record instead of applying it;
* :mod:`repro.durability.manager` — per-database glue: mutation hooks,
  commit, checkpoint + log truncation, ``\\wal-stats``;
* :mod:`repro.durability.faults` — crash-point injection used by the
  recovery test matrix and the E15 benchmark.

An in-memory ``Database()`` never touches this package: the hooks are
``None`` checks on mutation paths only, so read/query performance is
unchanged.
"""

from repro.durability.faults import CRASH_POINTS, FaultInjector, InjectedCrash
from repro.durability.layout import has_durable_data
from repro.durability.manager import DurabilityManager
from repro.durability.wal import WalWriter, read_wal

__all__ = [
    "CRASH_POINTS",
    "FaultInjector",
    "InjectedCrash",
    "DurabilityManager",
    "WalWriter",
    "read_wal",
    "has_durable_data",
]
