"""Hand-written SQL lexer.

Produces a list of :class:`~repro.sql.tokens.Token`.  Supports:

* ``--`` line comments and ``/* ... */`` block comments;
* single-quoted string literals with ``''`` escaping;
* double-quoted identifiers;
* integer and decimal numeric literals (with optional exponent);
* ``$name`` context parameters and ``$$name`` access-pattern parameters.

Keywords are case-insensitive and normalized to lower case; identifiers
preserve their case but comparisons elsewhere are case-insensitive.
"""

from __future__ import annotations

from repro.errors import LexError
from repro.sql.tokens import KEYWORDS, OPERATORS, Token, TokenType


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_char(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


class Lexer:
    """Single-pass lexer over a SQL source string."""

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.source):
                tokens.append(self._token(TokenType.EOF, ""))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.source) and self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        if index < len(self.source):
            return self.source[index]
        return ""

    def _token(self, type_: TokenType, value: str) -> Token:
        return Token(type_, value, self.pos, self.line, self.column)

    def _error(self, message: str) -> LexError:
        return LexError(message, self.pos, self.line, self.column)

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch.isspace():
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise self._error("unterminated block comment")
            else:
                return

    def _next_token(self) -> Token:
        ch = self._peek()
        if _is_ident_start(ch):
            return self._lex_word()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number()
        if ch == "'":
            return self._lex_string()
        if ch == '"':
            return self._lex_quoted_ident()
        if ch == "$":
            return self._lex_param()
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                token = self._token(TokenType.OP, op)
                self._advance(len(op))
                return token
        raise self._error(f"unexpected character {ch!r}")

    def _lex_word(self) -> Token:
        start = self.pos
        start_line, start_col = self.line, self.column
        while self.pos < len(self.source) and _is_ident_char(self._peek()):
            self._advance()
        word = self.source[start : self.pos]
        lowered = word.lower()
        if lowered in KEYWORDS:
            return Token(TokenType.KEYWORD, lowered, start, start_line, start_col)
        return Token(TokenType.IDENT, word, start, start_line, start_col)

    def _lex_number(self) -> Token:
        start = self.pos
        start_line, start_col = self.line, self.column
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        return Token(
            TokenType.NUMBER, self.source[start : self.pos], start, start_line, start_col
        )

    def _lex_string(self) -> Token:
        start = self.pos
        start_line, start_col = self.line, self.column
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":  # escaped quote
                    parts.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    break
            else:
                parts.append(ch)
                self._advance()
        return Token(TokenType.STRING, "".join(parts), start, start_line, start_col)

    def _lex_quoted_ident(self) -> Token:
        start = self.pos
        start_line, start_col = self.line, self.column
        self._advance()
        parts: list[str] = []
        while True:
            if self.pos >= len(self.source):
                raise self._error("unterminated quoted identifier")
            ch = self._peek()
            if ch == '"':
                self._advance()
                break
            parts.append(ch)
            self._advance()
        return Token(TokenType.IDENT, "".join(parts), start, start_line, start_col)

    def _lex_param(self) -> Token:
        start = self.pos
        start_line, start_col = self.line, self.column
        access_pattern = self._peek(1) == "$"
        self._advance(2 if access_pattern else 1)
        name_start = self.pos
        while self.pos < len(self.source) and (
            _is_ident_char(self._peek()) or self._peek().isdigit()
        ):
            self._advance()
        name = self.source[name_start : self.pos]
        if not name:
            raise self._error("expected parameter name after '$'")
        type_ = TokenType.AP_PARAM if access_pattern else TokenType.PARAM
        return Token(type_, name, start, start_line, start_col)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source`` into a list of tokens ending with EOF."""
    return Lexer(source).tokenize()
