"""SQL front end: lexer, parser, AST, and SQL renderer.

The supported fragment covers everything the paper's examples use:

* ``SELECT [DISTINCT]`` with expressions, aggregates, ``GROUP BY`` /
  ``HAVING``, ``ORDER BY``, ``LIMIT``;
* comma joins and explicit ``[INNER|LEFT|RIGHT] JOIN ... ON``;
* ``UNION [ALL]`` / ``INTERSECT`` / ``EXCEPT``;
* ``CREATE TABLE`` with PK/FK/NOT NULL/UNIQUE/CHECK constraints;
* ``CREATE [AUTHORIZATION] VIEW`` with ``$param`` and ``$$param``
  (access-pattern) parameters;
* ``INSERT`` / ``UPDATE`` / ``DELETE``;
* ``GRANT SELECT ON view TO user``;
* the paper's Section 4.4 ``AUTHORIZE INSERT/UPDATE/DELETE ON ...``
  statements, including ``old(...)`` references.
"""

from repro.sql.lexer import Lexer, tokenize
from repro.sql.parser import Parser, parse_statement, parse_statements, parse_query
from repro.sql.render import render
from repro.sql import ast

__all__ = [
    "Lexer",
    "tokenize",
    "Parser",
    "parse_statement",
    "parse_statements",
    "parse_query",
    "render",
    "ast",
]
