"""Render AST nodes back to SQL text.

Round-tripping (parse → render → parse) yields structurally equal ASTs;
this is exercised by property tests.  Rendering is also used to display
witness rewritings produced by the validity checker.
"""

from __future__ import annotations

from repro.sql import ast


def render(node) -> str:
    """Render any statement or expression node to SQL text."""
    if isinstance(node, ast.Expr):
        return _render_expr(node)
    if isinstance(node, ast.SelectStmt):
        return _render_select(node)
    if isinstance(node, ast.SetOp):
        op = node.op.upper() + (" ALL" if node.all else "")
        return f"({render(node.left)}) {op} ({render(node.right)})"
    if isinstance(node, ast.CreateTable):
        return _render_create_table(node)
    if isinstance(node, ast.CreateView):
        kind = "AUTHORIZATION VIEW" if node.authorization else "VIEW"
        cols = f" ({', '.join(node.column_names)})" if node.column_names else ""
        return f"CREATE {kind} {node.name}{cols} AS {render(node.query)}"
    if isinstance(node, ast.DropStmt):
        return f"DROP {node.kind.upper()} {node.name}"
    if isinstance(node, ast.Grant):
        return f"GRANT {node.privilege.upper()} ON {node.object_name} TO {node.grantee}"
    if isinstance(node, ast.Insert):
        return _render_insert(node)
    if isinstance(node, ast.Update):
        sets = ", ".join(f"{col} = {_render_expr(expr)}" for col, expr in node.assignments)
        where = f" WHERE {_render_expr(node.where)}" if node.where else ""
        return f"UPDATE {node.table} SET {sets}{where}"
    if isinstance(node, ast.Delete):
        where = f" WHERE {_render_expr(node.where)}" if node.where else ""
        return f"DELETE FROM {node.table}{where}"
    if isinstance(node, ast.TransactionStmt):
        return node.action.upper()
    if isinstance(node, ast.AuthorizeStmt):
        cols = f"({', '.join(node.columns)})" if node.columns else ""
        where = f" WHERE {_render_expr(node.where)}" if node.where else ""
        return f"AUTHORIZE {node.action.upper()} ON {node.table}{cols}{where}"
    raise TypeError(f"cannot render node of type {type(node).__name__}")


def _render_select(stmt: ast.SelectStmt) -> str:
    parts = ["SELECT"]
    if stmt.distinct:
        parts.append("DISTINCT")
    items = []
    for item in stmt.items:
        text = _render_expr(item.expr)
        if item.alias:
            text += f" AS {item.alias}"
        items.append(text)
    parts.append(", ".join(items))
    if stmt.from_items:
        parts.append("FROM")
        parts.append(", ".join(_render_table_expr(t) for t in stmt.from_items))
    if stmt.where is not None:
        parts.append(f"WHERE {_render_expr(stmt.where)}")
    if stmt.group_by:
        parts.append("GROUP BY " + ", ".join(_render_expr(e) for e in stmt.group_by))
    if stmt.having is not None:
        parts.append(f"HAVING {_render_expr(stmt.having)}")
    if stmt.order_by:
        rendered = [
            _render_expr(o.expr) + (" DESC" if o.descending else "")
            for o in stmt.order_by
        ]
        parts.append("ORDER BY " + ", ".join(rendered))
    if stmt.limit is not None:
        parts.append(f"LIMIT {stmt.limit}")
        if stmt.offset is not None:
            parts.append(f"OFFSET {stmt.offset}")
    return " ".join(parts)


def _render_table_expr(node: ast.TableExpr) -> str:
    if isinstance(node, ast.TableRef):
        if node.alias and node.alias != node.name:
            return f"{node.name} AS {node.alias}"
        return node.name
    if isinstance(node, ast.SubqueryRef):
        return f"({render(node.query)}) AS {node.alias}"
    if isinstance(node, ast.JoinRef):
        left = _render_table_expr(node.left)
        right = _render_table_expr(node.right)
        if node.kind == "cross":
            return f"{left} CROSS JOIN {right}"
        keyword = {"inner": "JOIN", "left": "LEFT JOIN", "right": "RIGHT JOIN"}.get(
            node.kind, f"{node.kind.upper()} JOIN"
        )
        on = f" ON {_render_expr(node.condition)}" if node.condition else ""
        return f"{left} {keyword} {right}{on}"
    raise TypeError(f"cannot render table expression {type(node).__name__}")


def _render_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.InSubquery):
        op = "NOT IN" if expr.negated else "IN"
        return f"({_render_expr(expr.operand)} {op} ({render(expr.query)}))"
    if isinstance(expr, ast.ExistsSubquery):
        op = "NOT EXISTS" if expr.negated else "EXISTS"
        return f"({op} ({render(expr.query)}))"
    if isinstance(expr, ast.BinaryOp) and expr.op in ("and", "or"):
        return f"({_render_expr(expr.left)} {expr.op.upper()} {_render_expr(expr.right)})"
    if isinstance(expr, ast.BinaryOp) and expr.op == "like":
        return f"({_render_expr(expr.left)} LIKE {_render_expr(expr.right)})"
    if isinstance(expr, ast.UnaryOp) and expr.op == "not":
        return f"(NOT {_render_expr(expr.operand)})"
    return str(expr)


def _render_create_table(stmt: ast.CreateTable) -> str:
    parts: list[str] = []
    for col in stmt.columns:
        text = f"{col.name} {col.type_name}"
        if col.primary_key:
            text += " PRIMARY KEY"
        if col.not_null:
            text += " NOT NULL"
        if col.unique:
            text += " UNIQUE"
        if col.default is not None:
            text += f" DEFAULT {_render_expr(col.default)}"
        parts.append(text)
    if stmt.primary_key:
        parts.append(f"PRIMARY KEY ({', '.join(stmt.primary_key)})")
    for fk in stmt.foreign_keys:
        ref_cols = f" ({', '.join(fk.ref_columns)})" if fk.ref_columns else ""
        parts.append(
            f"FOREIGN KEY ({', '.join(fk.columns)}) REFERENCES {fk.ref_table}{ref_cols}"
        )
    for unique in stmt.uniques:
        parts.append(f"UNIQUE ({', '.join(unique)})")
    for check in stmt.checks:
        parts.append(f"CHECK ({_render_expr(check.predicate)})")
    return f"CREATE TABLE {stmt.name} ({', '.join(parts)})"


def _render_insert(stmt: ast.Insert) -> str:
    cols = f" ({', '.join(stmt.columns)})" if stmt.columns else ""
    if stmt.query is not None:
        return f"INSERT INTO {stmt.table}{cols} {render(stmt.query)}"
    rows = ", ".join(
        "(" + ", ".join(_render_expr(v) for v in row) + ")" for row in stmt.rows
    )
    return f"INSERT INTO {stmt.table}{cols} VALUES {rows}"
