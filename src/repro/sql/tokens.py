"""Token definitions for the SQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    PARAM = "param"  # $user_id — context parameter
    AP_PARAM = "ap_param"  # $$1 / $$name — access-pattern parameter
    OP = "op"  # symbolic operators and punctuation
    EOF = "eof"


#: Reserved words.  Identifiers matching these (case-insensitively) lex as
#: KEYWORD tokens.  Function names like ``avg`` are *not* reserved; they lex
#: as IDENT and the parser recognizes calls by the following ``(``.
KEYWORDS = frozenset(
    {
        "select",
        "distinct",
        "all",
        "from",
        "where",
        "group",
        "by",
        "having",
        "order",
        "asc",
        "desc",
        "limit",
        "offset",
        "union",
        "intersect",
        "except",
        "join",
        "inner",
        "left",
        "right",
        "full",
        "outer",
        "cross",
        "on",
        "as",
        "and",
        "or",
        "not",
        "in",
        "is",
        "null",
        "like",
        "between",
        "exists",
        "case",
        "when",
        "then",
        "else",
        "end",
        "true",
        "false",
        "create",
        "drop",
        "table",
        "view",
        "authorization",
        "primary",
        "foreign",
        "key",
        "references",
        "unique",
        "check",
        "constraint",
        "default",
        "insert",
        "into",
        "values",
        "update",
        "set",
        "delete",
        "grant",
        "revoke",
        "to",
        "authorize",
        "old",
        "new",
        "begin",
        "commit",
        "rollback",
        "transaction",
    }
)

#: Multi-character operators, longest first so the lexer can greedy-match.
OPERATORS = (
    "<>",
    "!=",
    "<=",
    ">=",
    "||",
    "<",
    ">",
    "=",
    "+",
    "-",
    "*",
    "/",
    "%",
    "(",
    ")",
    ",",
    ".",
    ";",
)


@dataclass(frozen=True)
class Token:
    """A lexed token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int
    line: int
    column: int

    def is_keyword(self, *words: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in words

    def is_op(self, *ops: str) -> bool:
        return self.type is TokenType.OP and self.value in ops

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.value!r})"
