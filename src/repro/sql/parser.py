"""Recursive-descent parser for the supported SQL fragment."""

from __future__ import annotations

from typing import Optional

from repro.errors import ParseError
from repro.sql import ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType


class Parser:
    """Parses one or more SQL statements from a token stream."""

    def __init__(self, source: str):
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0

    # -- token helpers -------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.index += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self.current
        where = f"line {token.line}, column {token.column}"
        found = token.value if token.type is not TokenType.EOF else "<end of input>"
        return ParseError(f"{message}; found {found!r} at {where}")

    def _expect_keyword(self, word: str) -> Token:
        if self.current.is_keyword(word):
            return self._advance()
        raise self._error(f"expected keyword {word.upper()!r}")

    def _expect_op(self, op: str) -> Token:
        if self.current.is_op(op):
            return self._advance()
        raise self._error(f"expected {op!r}")

    def _expect_ident(self) -> str:
        if self.current.type is TokenType.IDENT:
            return self._advance().value
        raise self._error("expected identifier")

    def _accept_keyword(self, *words: str) -> Optional[str]:
        if self.current.is_keyword(*words):
            return self._advance().value
        return None

    def _accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self._advance()
            return True
        return False

    # -- entry points ----------------------------------------------------

    def parse_statements(self) -> list[ast.Statement]:
        statements: list[ast.Statement] = []
        while self.current.type is not TokenType.EOF:
            statements.append(self.parse_statement())
            while self._accept_op(";"):
                pass
        return statements

    def parse_statement(self) -> ast.Statement:
        token = self.current
        if token.is_keyword("select"):
            return self.parse_query()
        if token.is_op("("):
            return self.parse_query()
        if token.is_keyword("create"):
            return self._parse_create()
        if token.is_keyword("drop"):
            return self._parse_drop()
        if token.is_keyword("insert"):
            return self._parse_insert()
        if token.is_keyword("update"):
            return self._parse_update()
        if token.is_keyword("delete"):
            return self._parse_delete()
        if token.is_keyword("grant"):
            return self._parse_grant()
        if token.is_keyword("authorize"):
            return self._parse_authorize()
        if token.is_keyword("begin"):
            self._advance()
            self._accept_keyword("transaction")
            return ast.TransactionStmt("begin")
        if token.is_keyword("commit"):
            self._advance()
            self._accept_keyword("transaction")
            return ast.TransactionStmt("commit")
        if token.is_keyword("rollback"):
            self._advance()
            self._accept_keyword("transaction")
            return ast.TransactionStmt("rollback")
        raise self._error("expected a SQL statement")

    # -- queries -----------------------------------------------------------

    def parse_query(self) -> ast.QueryExpr:
        left = self._parse_query_term()
        while self.current.is_keyword("union", "intersect", "except"):
            op = self._advance().value
            all_flag = bool(self._accept_keyword("all"))
            if not all_flag:
                self._accept_keyword("distinct")
            right = self._parse_query_term()
            left = ast.SetOp(op=op, all=all_flag, left=left, right=right)
        return left

    def _parse_query_term(self) -> ast.QueryExpr:
        if self._accept_op("("):
            query = self.parse_query()
            self._expect_op(")")
            return query
        return self._parse_select()

    def _parse_select(self) -> ast.SelectStmt:
        self._expect_keyword("select")
        distinct = False
        if self._accept_keyword("distinct"):
            distinct = True
        else:
            self._accept_keyword("all")

        items = [self._parse_select_item()]
        while self._accept_op(","):
            items.append(self._parse_select_item())

        from_items: list[ast.TableExpr] = []
        if self._accept_keyword("from"):
            from_items.append(self._parse_table_expr())
            while self._accept_op(","):
                from_items.append(self._parse_table_expr())

        where = self.parse_expr() if self._accept_keyword("where") else None

        group_by: list[ast.Expr] = []
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by.append(self.parse_expr())
            while self._accept_op(","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self._accept_keyword("having") else None

        order_by: list[ast.OrderItem] = []
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self._accept_op(","):
                order_by.append(self._parse_order_item())

        limit = offset = None
        if self._accept_keyword("limit"):
            limit = self._parse_int_literal()
            if self._accept_keyword("offset"):
                offset = self._parse_int_literal()

        return ast.SelectStmt(
            items=tuple(items),
            from_items=tuple(from_items),
            where=where,
            group_by=tuple(group_by),
            having=having,
            distinct=distinct,
            order_by=tuple(order_by),
            limit=limit,
            offset=offset,
        )

    def _parse_int_literal(self) -> int:
        if self.current.type is TokenType.NUMBER:
            text = self._advance().value
            try:
                return int(text)
            except ValueError as exc:
                raise self._error("expected integer literal") from exc
        raise self._error("expected integer literal")

    def _parse_select_item(self) -> ast.SelectItem:
        # "*" or "table.*"
        if self.current.is_op("*"):
            self._advance()
            return ast.SelectItem(ast.Star())
        if (
            self.current.type is TokenType.IDENT
            and self._peek().is_op(".")
            and self._peek(2).is_op("*")
        ):
            table = self._advance().value
            self._advance()  # "."
            self._advance()  # "*"
            return ast.SelectItem(ast.Star(table=table))
        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        descending = False
        if self._accept_keyword("desc"):
            descending = True
        else:
            self._accept_keyword("asc")
        return ast.OrderItem(expr, descending)

    # -- table expressions ---------------------------------------------

    def _parse_table_expr(self) -> ast.TableExpr:
        left = self._parse_table_primary()
        while True:
            kind = None
            if self.current.is_keyword("join"):
                self._advance()
                kind = "inner"
            elif self.current.is_keyword("inner"):
                self._advance()
                self._expect_keyword("join")
                kind = "inner"
            elif self.current.is_keyword("left", "right", "full"):
                kind = self._advance().value
                self._accept_keyword("outer")
                self._expect_keyword("join")
            elif self.current.is_keyword("cross"):
                self._advance()
                self._expect_keyword("join")
                kind = "cross"
            else:
                return left
            right = self._parse_table_primary()
            condition = None
            if kind != "cross":
                self._expect_keyword("on")
                condition = self.parse_expr()
            left = ast.JoinRef(left=left, right=right, kind=kind, condition=condition)

    def _parse_table_primary(self) -> ast.TableExpr:
        if self._accept_op("("):
            if self.current.is_keyword("select"):
                query = self.parse_query()
                self._expect_op(")")
                self._accept_keyword("as")
                alias = self._expect_ident()
                return ast.SubqueryRef(query=query, alias=alias)
            inner = self._parse_table_expr()
            self._expect_op(")")
            return inner
        name = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self._advance().value
        return ast.TableRef(name=name, alias=alias)

    # -- expressions ------------------------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self.current.is_keyword("or"):
            self._advance()
            right = self._parse_and()
            left = ast.BinaryOp("or", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self.current.is_keyword("and"):
            self._advance()
            right = self._parse_not()
            left = ast.BinaryOp("and", left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self.current.is_keyword("not"):
            self._advance()
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()

        negated = False
        if self.current.is_keyword("not") and self._peek().is_keyword(
            "in", "between", "like"
        ):
            self._advance()
            negated = True

        if self.current.is_keyword("is"):
            self._advance()
            is_not = bool(self._accept_keyword("not"))
            self._expect_keyword("null")
            return ast.IsNull(left, negated=is_not)
        if self.current.is_keyword("in"):
            self._advance()
            self._expect_op("(")
            if self.current.is_keyword("select"):
                query = self.parse_query()
                self._expect_op(")")
                return ast.InSubquery(left, query, negated=negated)
            items = [self.parse_expr()]
            while self._accept_op(","):
                items.append(self.parse_expr())
            self._expect_op(")")
            return ast.InList(left, tuple(items), negated=negated)
        if self.current.is_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return ast.Between(left, low, high, negated=negated)
        if self.current.is_keyword("like"):
            self._advance()
            pattern = self._parse_additive()
            expr = ast.BinaryOp("like", left, pattern)
            return ast.UnaryOp("not", expr) if negated else expr
        if self.current.is_op("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self._advance().value
            if op == "!=":
                op = "<>"
            right = self._parse_additive()
            return ast.BinaryOp(op, left, right)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self.current.is_op("+", "-", "||"):
            op = self._advance().value
            right = self._parse_multiplicative()
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self.current.is_op("*", "/", "%"):
            op = self._advance().value
            right = self._parse_unary()
            left = ast.BinaryOp(op, left, right)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self.current.is_op("-"):
            self._advance()
            operand = self._parse_unary()
            if isinstance(operand, ast.Literal) and isinstance(
                operand.value, (int, float)
            ):
                return ast.Literal(-operand.value)
            return ast.UnaryOp("-", operand)
        if self.current.is_op("+"):
            self._advance()
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self.current

        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text or "E" in text:
                return ast.Literal(float(text))
            return ast.Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.PARAM:
            self._advance()
            return ast.Param(token.value)
        if token.type is TokenType.AP_PARAM:
            self._advance()
            return ast.AccessParam(token.value)
        if token.is_keyword("null"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("true"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("false"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("exists"):
            self._advance()
            self._expect_op("(")
            query = self.parse_query()
            self._expect_op(")")
            return ast.ExistsSubquery(query)
        if token.is_keyword("case"):
            return self._parse_case()
        if token.is_keyword("old", "new"):
            return self._parse_old_new()
        if token.is_op("("):
            self._advance()
            expr = self.parse_expr()
            self._expect_op(")")
            return expr
        if token.type is TokenType.IDENT:
            return self._parse_ident_expr()
        raise self._error("expected an expression")

    def _parse_case(self) -> ast.Expr:
        self._expect_keyword("case")
        branches: list[tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("when"):
            cond = self.parse_expr()
            self._expect_keyword("then")
            value = self.parse_expr()
            branches.append((cond, value))
        if not branches:
            raise self._error("CASE requires at least one WHEN branch")
        default = self.parse_expr() if self._accept_keyword("else") else None
        self._expect_keyword("end")
        return ast.CaseExpr(tuple(branches), default)

    def _parse_old_new(self) -> ast.Expr:
        keyword = self._advance().value  # "old" | "new"
        self._expect_op("(")
        first = self._expect_ident()
        table = None
        name = first
        if self._accept_op("."):
            table = first
            name = self._expect_ident()
        self._expect_op(")")
        if keyword == "old":
            return ast.OldColumnRef(table, name)
        # new(col) is the default interpretation of a bare column in an
        # AUTHORIZE predicate; represent it as a plain column reference.
        return ast.ColumnRef(table, name)

    def _parse_ident_expr(self) -> ast.Expr:
        name = self._advance().value
        if self.current.is_op("("):
            self._advance()
            distinct = bool(self._accept_keyword("distinct"))
            args: list[ast.Expr] = []
            if self.current.is_op("*"):
                self._advance()
                args.append(ast.Star())
            elif not self.current.is_op(")"):
                args.append(self.parse_expr())
                while self._accept_op(","):
                    args.append(self.parse_expr())
            self._expect_op(")")
            return ast.FuncCall(name.lower(), tuple(args), distinct=distinct)
        if self._accept_op("."):
            column = self._expect_ident()
            return ast.ColumnRef(name, column)
        return ast.ColumnRef(None, name)

    # -- DDL --------------------------------------------------------------

    def _parse_create(self) -> ast.Statement:
        self._expect_keyword("create")
        if self._accept_keyword("table"):
            return self._parse_create_table()
        authorization = bool(self._accept_keyword("authorization"))
        self._expect_keyword("view")
        name = self._expect_ident()
        column_names: tuple[str, ...] = ()
        if self._accept_op("("):
            names = [self._expect_ident()]
            while self._accept_op(","):
                names.append(self._expect_ident())
            self._expect_op(")")
            column_names = tuple(names)
        self._expect_keyword("as")
        query = self.parse_query()
        return ast.CreateView(
            name=name,
            query=query,
            authorization=authorization,
            column_names=column_names,
        )

    def _parse_create_table(self) -> ast.CreateTable:
        name = self._expect_ident()
        self._expect_op("(")
        columns: list[ast.ColumnDef] = []
        primary_key: tuple[str, ...] = ()
        foreign_keys: list[ast.ForeignKeySpec] = []
        uniques: list[tuple[str, ...]] = []
        checks: list[ast.CheckSpec] = []

        while True:
            if self._accept_keyword("constraint"):
                self._expect_ident()  # constraint name, ignored
            if self.current.is_keyword("primary"):
                self._advance()
                self._expect_keyword("key")
                primary_key = self._parse_column_name_list()
            elif self.current.is_keyword("foreign"):
                self._advance()
                self._expect_keyword("key")
                cols = self._parse_column_name_list()
                self._expect_keyword("references")
                ref_table = self._expect_ident()
                ref_cols: tuple[str, ...] = ()
                if self.current.is_op("("):
                    ref_cols = self._parse_column_name_list()
                foreign_keys.append(ast.ForeignKeySpec(cols, ref_table, ref_cols))
            elif self.current.is_keyword("unique"):
                self._advance()
                uniques.append(self._parse_column_name_list())
            elif self.current.is_keyword("check"):
                self._advance()
                self._expect_op("(")
                checks.append(ast.CheckSpec(self.parse_expr()))
                self._expect_op(")")
            else:
                columns.append(self._parse_column_def())
            if not self._accept_op(","):
                break
        self._expect_op(")")
        return ast.CreateTable(
            name=name,
            columns=tuple(columns),
            primary_key=primary_key,
            foreign_keys=tuple(foreign_keys),
            uniques=tuple(uniques),
            checks=tuple(checks),
        )

    def _parse_column_name_list(self) -> tuple[str, ...]:
        self._expect_op("(")
        names = [self._expect_ident()]
        while self._accept_op(","):
            names.append(self._expect_ident())
        self._expect_op(")")
        return tuple(names)

    def _parse_column_def(self) -> ast.ColumnDef:
        name = self._expect_ident()
        type_name = self._parse_type_name()
        not_null = primary_key = unique = False
        default: Optional[ast.Expr] = None
        while True:
            if self.current.is_keyword("not") and self._peek().is_keyword("null"):
                self._advance()
                self._advance()
                not_null = True
            elif self._accept_keyword("primary"):
                self._expect_keyword("key")
                primary_key = True
            elif self._accept_keyword("unique"):
                unique = True
            elif self._accept_keyword("default"):
                default = self._parse_primary()
            else:
                break
        return ast.ColumnDef(
            name=name,
            type_name=type_name,
            not_null=not_null,
            primary_key=primary_key,
            unique=unique,
            default=default,
        )

    def _parse_type_name(self) -> str:
        base = self._expect_ident().lower()
        # Consume an optional length/precision spec like varchar(20) or
        # decimal(8, 2); the in-memory engine is dynamically typed so the
        # spec is parsed and discarded.
        if self._accept_op("("):
            self._parse_int_literal()
            if self._accept_op(","):
                self._parse_int_literal()
            self._expect_op(")")
        return base

    def _parse_drop(self) -> ast.DropStmt:
        self._expect_keyword("drop")
        if self._accept_keyword("table"):
            kind = "table"
        else:
            self._accept_keyword("authorization")
            self._expect_keyword("view")
            kind = "view"
        return ast.DropStmt(kind=kind, name=self._expect_ident())

    # -- DML --------------------------------------------------------------

    def _parse_insert(self) -> ast.Insert:
        self._expect_keyword("insert")
        self._expect_keyword("into")
        table = self._expect_ident()
        columns: tuple[str, ...] = ()
        if self.current.is_op("("):
            columns = self._parse_column_name_list()
        if self._accept_keyword("values"):
            rows: list[tuple[ast.Expr, ...]] = []
            while True:
                self._expect_op("(")
                row = [self.parse_expr()]
                while self._accept_op(","):
                    row.append(self.parse_expr())
                self._expect_op(")")
                rows.append(tuple(row))
                if not self._accept_op(","):
                    break
            return ast.Insert(table=table, columns=columns, rows=tuple(rows))
        query = self.parse_query()
        return ast.Insert(table=table, columns=columns, query=query)

    def _parse_update(self) -> ast.Update:
        self._expect_keyword("update")
        table = self._expect_ident()
        self._expect_keyword("set")
        assignments: list[tuple[str, ast.Expr]] = []
        while True:
            column = self._expect_ident()
            self._expect_op("=")
            assignments.append((column, self.parse_expr()))
            if not self._accept_op(","):
                break
        where = self.parse_expr() if self._accept_keyword("where") else None
        return ast.Update(table=table, assignments=tuple(assignments), where=where)

    def _parse_delete(self) -> ast.Delete:
        self._expect_keyword("delete")
        self._expect_keyword("from")
        table = self._expect_ident()
        where = self.parse_expr() if self._accept_keyword("where") else None
        return ast.Delete(table=table, where=where)

    def _parse_grant(self) -> ast.Grant:
        self._expect_keyword("grant")
        self._expect_keyword("select")
        self._expect_keyword("on")
        object_name = self._expect_ident()
        self._expect_keyword("to")
        grantee = self._expect_ident()
        return ast.Grant(privilege="select", object_name=object_name, grantee=grantee)

    # -- AUTHORIZE (Section 4.4) -------------------------------------------

    def _parse_authorize(self) -> ast.AuthorizeStmt:
        self._expect_keyword("authorize")
        if self._accept_keyword("insert"):
            action = "insert"
        elif self._accept_keyword("update"):
            action = "update"
        elif self._accept_keyword("delete"):
            action = "delete"
        else:
            raise self._error("expected INSERT, UPDATE, or DELETE after AUTHORIZE")
        self._expect_keyword("on")
        table = self._expect_ident()
        columns: tuple[str, ...] = ()
        if self.current.is_op("("):
            columns = self._parse_column_name_list()
        where = self.parse_expr() if self._accept_keyword("where") else None
        return ast.AuthorizeStmt(action=action, table=table, columns=columns, where=where)


def parse_statement(source: str) -> ast.Statement:
    """Parse exactly one statement; raise ParseError on trailing input."""
    from repro.instrument import COUNTERS

    COUNTERS.bump("sql.parse")
    parser = Parser(source)
    statement = parser.parse_statement()
    while parser._accept_op(";"):
        pass
    if parser.current.type is not TokenType.EOF:
        raise parser._error("unexpected trailing input")
    return statement


def parse_statements(source: str) -> list[ast.Statement]:
    """Parse a ``;``-separated script into a list of statements."""
    from repro.instrument import COUNTERS

    COUNTERS.bump("sql.parse")
    return Parser(source).parse_statements()


def parse_query(source: str) -> ast.QueryExpr:
    """Parse a query (SELECT or set operation), rejecting other statements."""
    statement = parse_statement(source)
    if not isinstance(statement, ast.QueryExpr):
        raise ParseError("expected a query (SELECT statement)")
    return statement
