"""Abstract syntax tree for the supported SQL fragment.

All nodes are frozen dataclasses with structural equality, which the
rest of the system relies on (e.g. hash-consing in the optimizer DAG and
signatures in the validity cache).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


class Node:
    """Marker base class for all AST nodes."""

    __slots__ = ()


# ---------------------------------------------------------------------------
# Scalar expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant: int, float, str, bool, or None (SQL NULL)."""

    value: object

    def __str__(self) -> str:
        if self.value is None:
            return "NULL"
        if isinstance(self.value, bool):
            return "TRUE" if self.value else "FALSE"
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return str(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference, e.g. ``Grades.student_id``."""

    table: Optional[str]
    name: str

    def __str__(self) -> str:
        if self.table:
            return f"{self.table}.{self.name}"
        return self.name


@dataclass(frozen=True)
class OldColumnRef(Expr):
    """``old(Table.col)`` — pre-image reference in AUTHORIZE UPDATE (§4.4)."""

    table: Optional[str]
    name: str

    def __str__(self) -> str:
        inner = f"{self.table}.{self.name}" if self.table else self.name
        return f"old({inner})"


@dataclass(frozen=True)
class Param(Expr):
    """Context parameter ``$name`` (e.g. ``$user_id``, ``$time``)."""

    name: str

    def __str__(self) -> str:
        return f"${self.name}"


@dataclass(frozen=True)
class AccessParam(Expr):
    """Access-pattern parameter ``$$name`` (must be bound at access time)."""

    name: str

    def __str__(self) -> str:
        return f"$${self.name}"


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``Table.*`` in a select list or COUNT(*)."""

    table: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.table}.*" if self.table else "*"


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary operator: comparisons, arithmetic, AND/OR, LIKE, ``||``."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: NOT, unary minus."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"({self.op} {self.operand})"


@dataclass(frozen=True)
class IsNull(Expr):
    operand: Expr
    negated: bool = False

    def __str__(self) -> str:
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {op})"


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with a literal/parameter list."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        items = ", ".join(str(item) for item in self.items)
        return f"({self.operand} {op} ({items}))"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)`` — paper future work: nested queries.

    Only supported as a top-level WHERE conjunct (translated to a
    semi/anti join); the subquery must be uncorrelated.
    """

    operand: Expr
    query: "QueryExpr"
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT IN" if self.negated else "IN"
        return f"({self.operand} {op} (<subquery>))"


@dataclass(frozen=True)
class ExistsSubquery(Expr):
    """``[NOT] EXISTS (SELECT ...)`` with an uncorrelated subquery."""

    query: "QueryExpr"
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({op} (<subquery>))"


@dataclass(frozen=True)
class Between(Expr):
    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def __str__(self) -> str:
        op = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"({self.operand} {op} {self.low} AND {self.high})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar or aggregate function call.

    Aggregates (``count``, ``sum``, ``avg``, ``min``, ``max``) are
    distinguished during binding, not parsing.  ``count(*)`` is
    represented with a single :class:`Star` argument.
    """

    name: str
    args: tuple[Expr, ...]
    distinct: bool = False

    def __str__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.name}({inner})"


@dataclass(frozen=True)
class CaseExpr(Expr):
    """``CASE [WHEN cond THEN value]... [ELSE value] END`` (searched form)."""

    branches: tuple[tuple[Expr, Expr], ...]
    default: Optional[Expr] = None

    def __str__(self) -> str:
        parts = ["CASE"]
        for cond, value in self.branches:
            parts.append(f"WHEN {cond} THEN {value}")
        if self.default is not None:
            parts.append(f"ELSE {self.default}")
        parts.append("END")
        return " ".join(parts)


AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


def is_aggregate_call(expr: Expr) -> bool:
    return isinstance(expr, FuncCall) and expr.name.lower() in AGGREGATE_FUNCTIONS


def contains_aggregate(expr: Expr) -> bool:
    """True if ``expr`` contains an aggregate function call anywhere."""
    if is_aggregate_call(expr):
        return True
    return any(contains_aggregate(child) for child in expr_children(expr))


def expr_children(expr: Expr) -> tuple[Expr, ...]:
    """Direct sub-expressions of ``expr`` (uniform tree walking)."""
    if isinstance(expr, BinaryOp):
        return (expr.left, expr.right)
    if isinstance(expr, UnaryOp):
        return (expr.operand,)
    if isinstance(expr, IsNull):
        return (expr.operand,)
    if isinstance(expr, InList):
        return (expr.operand, *expr.items)
    if isinstance(expr, InSubquery):
        return (expr.operand,)  # the nested query is not a scalar child
    if isinstance(expr, ExistsSubquery):
        return ()
    if isinstance(expr, Between):
        return (expr.operand, expr.low, expr.high)
    if isinstance(expr, FuncCall):
        return expr.args
    if isinstance(expr, CaseExpr):
        children: list[Expr] = []
        for cond, value in expr.branches:
            children.append(cond)
            children.append(value)
        if expr.default is not None:
            children.append(expr.default)
        return tuple(children)
    return ()


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    for child in expr_children(expr):
        yield from walk_expr(child)


# ---------------------------------------------------------------------------
# Table references
# ---------------------------------------------------------------------------


class TableExpr(Node):
    __slots__ = ()


@dataclass(frozen=True)
class TableRef(TableExpr):
    """Base table or view reference with optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class SubqueryRef(TableExpr):
    """Derived table: ``(SELECT ...) AS alias``."""

    query: "SelectStmt"
    alias: str


@dataclass(frozen=True)
class JoinRef(TableExpr):
    """Explicit join: ``left [INNER|LEFT|RIGHT|CROSS] JOIN right [ON cond]``."""

    left: TableExpr
    right: TableExpr
    kind: str  # "inner" | "left" | "right" | "cross"
    condition: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Query statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem(Node):
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem(Node):
    expr: Expr
    descending: bool = False


class QueryExpr(Node):
    """A query: SELECT statement or set operation over queries."""

    __slots__ = ()


@dataclass(frozen=True)
class SelectStmt(QueryExpr):
    items: tuple[SelectItem, ...]
    from_items: tuple[TableExpr, ...] = ()
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    distinct: bool = False
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None


@dataclass(frozen=True)
class SetOp(QueryExpr):
    """``UNION [ALL]`` / ``INTERSECT [ALL]`` / ``EXCEPT [ALL]``."""

    op: str  # "union" | "intersect" | "except"
    all: bool
    left: QueryExpr
    right: QueryExpr


# ---------------------------------------------------------------------------
# DDL
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ColumnDef(Node):
    name: str
    type_name: str
    not_null: bool = False
    primary_key: bool = False
    unique: bool = False
    default: Optional[Expr] = None


@dataclass(frozen=True)
class ForeignKeySpec(Node):
    columns: tuple[str, ...]
    ref_table: str
    ref_columns: tuple[str, ...]


@dataclass(frozen=True)
class CheckSpec(Node):
    predicate: Expr


@dataclass(frozen=True)
class CreateTable(Node):
    name: str
    columns: tuple[ColumnDef, ...]
    primary_key: tuple[str, ...] = ()
    foreign_keys: tuple[ForeignKeySpec, ...] = ()
    uniques: tuple[tuple[str, ...], ...] = ()
    checks: tuple[CheckSpec, ...] = ()


@dataclass(frozen=True)
class CreateView(Node):
    name: str
    query: QueryExpr
    authorization: bool = False
    column_names: tuple[str, ...] = ()


@dataclass(frozen=True)
class DropStmt(Node):
    kind: str  # "table" | "view"
    name: str


@dataclass(frozen=True)
class Grant(Node):
    privilege: str  # "select"
    object_name: str
    grantee: str


# ---------------------------------------------------------------------------
# DML
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Insert(Node):
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expr, ...], ...] = ()
    query: Optional[QueryExpr] = None


@dataclass(frozen=True)
class Update(Node):
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(Node):
    table: str
    where: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Update authorization (paper Section 4.4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TransactionStmt(Node):
    """BEGIN [TRANSACTION] / COMMIT / ROLLBACK."""

    action: str  # "begin" | "commit" | "rollback"


@dataclass(frozen=True)
class AuthorizeStmt(Node):
    """``AUTHORIZE INSERT|UPDATE|DELETE ON table[(cols)] WHERE pred``."""

    action: str  # "insert" | "update" | "delete"
    table: str
    columns: tuple[str, ...] = ()
    where: Optional[Expr] = None


Statement = Union[
    QueryExpr,
    TransactionStmt,
    CreateTable,
    CreateView,
    DropStmt,
    Grant,
    Insert,
    Update,
    Delete,
    AuthorizeStmt,
]
