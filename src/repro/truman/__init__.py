"""The Truman model (paper Section 3): transparent query modification,
including an Oracle VPD-style predicate-policy engine."""

from repro.truman.rewrite import truman_rewrite
from repro.truman.vpd import VpdPolicySet

__all__ = ["truman_rewrite", "VpdPolicySet"]
