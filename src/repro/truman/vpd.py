"""Oracle Virtual-Private-Database-style predicate policies (Section 3.1).

VPD encodes the authorization policy as *policy functions* attached to
tables; each returns a WHERE-clause predicate that is appended to the
user query before execution.  Here a policy function is any Python
callable ``(SessionContext) -> Optional[ast.Expr]`` returning a
predicate over the table's columns (unqualified references), or
``None`` for "no restriction".  String predicates with ``$param``
placeholders are also accepted and parsed once.
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.sql import ast
from repro.sql.parser import Parser
from repro.algebra import expr as exprs
from repro.authviews.session import SessionContext

PolicyFn = Callable[[SessionContext], Optional[ast.Expr]]


def _parse_predicate(text: str) -> ast.Expr:
    parser = Parser(text)
    predicate = parser.parse_expr()
    return predicate


class VpdPolicySet:
    """Per-table VPD policy functions."""

    def __init__(self):
        self._policies: dict[str, list[PolicyFn]] = {}
        #: bumped on every policy attachment; prepared templates built
        #: under an older policy set are stale (repro.prepared)
        self._version = 0
        #: ``on_change(table, predicate_text_or_None, version)`` after
        #: every attachment; the durability/replication layers use it to
        #: ship the policy.  ``None`` marks a callable policy, which has
        #: no serializable form.
        self.on_change: Optional[Callable[[str, Optional[str], int], None]] = None
        #: (table, predicate text | None) per attachment, in order —
        #: the serializable subset survives snapshots and WAL shipping
        self._texts: list[tuple[str, Optional[str]]] = []

    @property
    def version(self) -> int:
        return self._version

    def add_policy(
        self, table: str, policy: Union[str, ast.Expr, PolicyFn]
    ) -> None:
        """Attach a policy to a table.

        ``policy`` may be a predicate string (``"student_id = $user_id"``),
        a pre-parsed expression, or a callable policy function.
        """
        text: Optional[str]
        if isinstance(policy, str):
            predicate = _parse_predicate(policy)
            text = policy
            fn: PolicyFn = lambda session, predicate=predicate: exprs.substitute_params(
                predicate, session.param_values()
            )
        elif isinstance(policy, ast.Expr):
            from repro.sql.render import render

            text = render(policy)
            fn = lambda session, predicate=policy: exprs.substitute_params(
                predicate, session.param_values()
            )
        else:
            text = None
            fn = policy
        self._policies.setdefault(table.lower(), []).append(fn)
        self._texts.append((table.lower(), text))
        self._version += 1
        if self.on_change is not None:
            self.on_change(table.lower(), text, self._version)

    def has_policy(self, table: str) -> bool:
        return table.lower() in self._policies

    def predicate_for(
        self, table: str, binding: str, session: SessionContext
    ) -> Optional[ast.Expr]:
        """Combined predicate for one table reference, with column
        references qualified by the reference's binding name."""
        parts = []
        for fn in self._policies.get(table.lower(), ()):
            predicate = fn(session)
            if predicate is None:
                continue
            parts.append(_qualify(predicate, binding))
        return exprs.make_conjunction(parts)

    def tables(self) -> list[str]:
        return list(self._policies)

    def policy_texts(self) -> list[tuple[str, str]]:
        """Serializable (table, predicate text) policies, in attachment
        order.  Callable policies have no text and are omitted."""
        return [(table, text) for table, text in self._texts if text is not None]


def _qualify(predicate: ast.Expr, binding: str) -> ast.Expr:
    """Qualify unqualified column references with ``binding``."""

    def visit(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.ColumnRef) and node.table is None:
            return ast.ColumnRef(binding, node.name)
        return None

    return exprs.transform(predicate, visit)
