"""Truman-model query modification (paper Sections 3.2-3.3).

Two transparent rewrites are applied to the user query:

1. **View substitution** — each base-table reference with an entry in
   the database's Truman policy (``db.set_truman_view``) is replaced by
   the corresponding parameterized authorization view, inlined as a
   derived table under the original alias.
2. **VPD predicates** — for each base-table reference with a VPD policy
   function, the returned predicate is ANDed into the enclosing WHERE
   clause.

The rewritten query is then executed normally.  The paper's point —
reproduced by our E4/E6 experiments — is that this *silently changes
query semantics*: an ``avg(grade)`` over ``Grades`` becomes an average
over the user's own grades only, and substituted views introduce
redundant joins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sql import ast
from repro.algebra import expr as exprs
from repro.authviews.session import SessionContext

if TYPE_CHECKING:  # pragma: no cover
    from repro.db import Database


def truman_rewrite(
    db: "Database", query: ast.QueryExpr, session: SessionContext
) -> ast.QueryExpr:
    """Return the Truman-modified version of ``query`` for this session."""
    return _rewrite_query(db, query, session)


def _rewrite_query(
    db: "Database", query: ast.QueryExpr, session: SessionContext
) -> ast.QueryExpr:
    if isinstance(query, ast.SetOp):
        return ast.SetOp(
            query.op,
            query.all,
            _rewrite_query(db, query.left, session),
            _rewrite_query(db, query.right, session),
        )
    assert isinstance(query, ast.SelectStmt)

    vpd_conjuncts: list[ast.Expr] = []
    new_from = tuple(
        _rewrite_table_expr(db, item, session, vpd_conjuncts)
        for item in query.from_items
    )
    where = query.where
    if vpd_conjuncts:
        where = exprs.make_conjunction(
            ([where] if where is not None else []) + vpd_conjuncts
        )
    return ast.SelectStmt(
        items=query.items,
        from_items=new_from,
        where=where,
        group_by=query.group_by,
        having=query.having,
        distinct=query.distinct,
        order_by=query.order_by,
        limit=query.limit,
        offset=query.offset,
    )


def _rewrite_table_expr(
    db: "Database",
    table_expr: ast.TableExpr,
    session: SessionContext,
    vpd_conjuncts: list[ast.Expr],
) -> ast.TableExpr:
    if isinstance(table_expr, ast.SubqueryRef):
        return ast.SubqueryRef(
            _rewrite_query(db, table_expr.query, session), table_expr.alias
        )
    if isinstance(table_expr, ast.JoinRef):
        return ast.JoinRef(
            _rewrite_table_expr(db, table_expr.left, session, vpd_conjuncts),
            _rewrite_table_expr(db, table_expr.right, session, vpd_conjuncts),
            table_expr.kind,
            table_expr.condition,
        )
    assert isinstance(table_expr, ast.TableRef)

    if not db.catalog.has_table(table_expr.name):
        return table_expr  # view references pass through unmodified

    binding = table_expr.binding_name
    view_name = db.truman_policy.get(table_expr.name.lower())
    if view_name is not None:
        view = db.catalog.view(view_name)
        # Inline the (still-parameterized) view body as a derived table
        # under the original alias; $params are bound at translation.
        return ast.SubqueryRef(query=view.query, alias=binding)

    if db.vpd_policies.has_policy(table_expr.name):
        predicate = db.vpd_policies.predicate_for(
            table_expr.name, binding, session
        )
        if predicate is not None:
            vpd_conjuncts.append(predicate)
    return table_expr
