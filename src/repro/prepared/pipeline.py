"""The prepared execution pipeline: signature → template → bind → run.

Entry points used by :meth:`repro.db.Database.execute_query` and the
enforcement gateway:

* :func:`resolve_signature` — SQL text (or parsed query) to
  ``(skeleton, literals, signature_text)``, memoized per text.
* :func:`get_or_build_template` — the template-cache lookup/build.
* :func:`decide_prepared` — Non-Truman decision for a bound literal
  tuple, served from the template's decision cache when the paper's
  §5.6 carry-over rule applies.
* :func:`execute_prepared` — the full Database-level pipeline.

Anything the pipeline cannot serve **identically** to the fresh path
raises :class:`~repro.prepared.template.PreparedFallback`, and the
caller re-executes through the standard parse → check → plan route, so
behavior (including error messages) is preserved bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import (
    BindError,
    CatalogError,
    ParameterError,
    QueryRejectedError,
    UnknownTableError,
    UnsupportedFeatureError,
)
from repro.sql import ast, parse_statement, render
from repro.nontruman.cache import query_signature
from repro.nontruman.decision import ValidityDecision
from repro.prepared.template import (
    PlanBinder,
    PreparedFallback,
    PreparedTemplate,
    bind_skeleton,
    placeholder_names,
)

#: modes the pipeline serves; motro has its own bespoke path
PREPARABLE_MODES = ("open", "truman", "non-truman")


# ---------------------------------------------------------------------------
# Query introspection
# ---------------------------------------------------------------------------


def _walk_query_exprs(query: ast.QueryExpr):
    """Yield every expression node in ``query``, descending into set
    operations, derived tables, join conditions, and nested
    IN/EXISTS subqueries (unlike :func:`ast.walk_expr`)."""
    if isinstance(query, ast.SetOp):
        yield from _walk_query_exprs(query.left)
        yield from _walk_query_exprs(query.right)
        return

    def walk_expr(expr: ast.Expr):
        for node in ast.walk_expr(expr):
            yield node
            if isinstance(node, (ast.InSubquery, ast.ExistsSubquery)):
                yield from _walk_query_exprs(node.query)

    def walk_table(item: ast.TableExpr):
        if isinstance(item, ast.SubqueryRef):
            yield from _walk_query_exprs(item.query)
        elif isinstance(item, ast.JoinRef):
            yield from walk_table(item.left)
            yield from walk_table(item.right)
            if item.condition is not None:
                yield from walk_expr(item.condition)

    for item in query.items:
        if item.expr is not None:
            yield from walk_expr(item.expr)
    for from_item in query.from_items:
        yield from walk_table(from_item)
    for clause in (query.where, query.having):
        if clause is not None:
            yield from walk_expr(clause)
    for group in query.group_by:
        yield from walk_expr(group)
    for order in query.order_by:
        yield from walk_expr(order.expr)


def access_param_names(query: ast.QueryExpr) -> frozenset:
    """Names of every ``$$`` access parameter anywhere in ``query``."""
    return frozenset(
        node.name
        for node in _walk_query_exprs(query)
        if isinstance(node, ast.AccessParam)
    )


def collect_relations(db, query: ast.QueryExpr, mode: str) -> frozenset:
    """Lower-cased names of every relation the query transitively
    depends on: direct references, view-definition bodies (views are
    expanded at plan time), and Truman view substitutions."""
    names: set[str] = set()

    def add_name(name: str) -> None:
        key = name.lower()
        if key in names:
            return
        names.add(key)
        if db.catalog.has_view(key):
            walk_query(db.catalog.view(key).query)
        if mode == "truman":
            substituted = db.truman_policy.get(key)
            if substituted is not None:
                add_name(substituted)

    def walk_table(item: ast.TableExpr) -> None:
        if isinstance(item, ast.TableRef):
            add_name(item.name)
        elif isinstance(item, ast.SubqueryRef):
            walk_query(item.query)
        elif isinstance(item, ast.JoinRef):
            walk_table(item.left)
            walk_table(item.right)

    def walk_query(q: ast.QueryExpr) -> None:
        if isinstance(q, ast.SetOp):
            walk_query(q.left)
            walk_query(q.right)
            return
        for item in q.from_items:
            walk_table(item)
        for node in _walk_query_exprs(q):
            if isinstance(node, (ast.InSubquery, ast.ExistsSubquery)):
                walk_query(node.query)

    walk_query(query)
    return frozenset(names)


def params_key_for(session) -> tuple:
    """Hashable canonical form of the session's ``$param`` values (they
    are substituted into the plan at template-build time, so they are
    part of the cache key)."""
    items = tuple(sorted(session.param_values().items(), key=lambda kv: kv[0]))
    try:
        hash(items)
    except TypeError:
        raise PreparedFallback("unhashable session parameter values")
    return items


# ---------------------------------------------------------------------------
# Signature resolution (text tier)
# ---------------------------------------------------------------------------


def resolve_signature(db, source: Union[str, ast.QueryExpr]) -> tuple:
    """``(skeleton, literals, signature_text)`` for SQL text or a parsed
    query, memoizing the parse per distinct text."""
    if isinstance(source, str):
        cached = db.prepared.lookup_text(source)
        if cached is not None:
            return cached
        query = parse_statement(source)
        if not isinstance(query, ast.QueryExpr):
            raise PreparedFallback("not a query")
        skeleton, literals, signature_text = _sign_query(query)
        db.prepared.remember_text(source, skeleton, literals, signature_text)
        return skeleton, literals, signature_text
    return _sign_query(source)


def _sign_query(query: ast.QueryExpr) -> tuple:
    if access_param_names(query):
        # user-written $$ parameters (including any that could collide
        # with our _litN placeholders) go through the legacy path, which
        # raises the proper ParameterError or binds them explicitly
        raise PreparedFallback("query uses access-pattern parameters")
    skeleton, literals = query_signature(query)
    try:
        hash(skeleton)
        hash(literals)
    except TypeError:
        raise PreparedFallback("unhashable query signature")
    return skeleton, literals, render(skeleton)


# ---------------------------------------------------------------------------
# Template lookup / build
# ---------------------------------------------------------------------------


def template_key(skeleton, session, mode: str, params_key: tuple) -> tuple:
    return (skeleton, session.user, mode, params_key)


def get_or_build_template(
    db,
    skeleton,
    literals: tuple,
    session,
    mode: str,
    signature_text: Optional[str] = None,
) -> tuple:
    """Returns ``(template, hit)``; raises :class:`PreparedFallback`
    when the query cannot be templated."""
    if mode not in PREPARABLE_MODES:
        raise PreparedFallback(f"mode {mode!r} is not preparable")
    params_key = params_key_for(session)
    key = template_key(skeleton, session, mode, params_key)
    cache = db.prepared
    template = cache.lookup(key)
    if template is not None:
        if template.n_literals != len(literals):
            raise PreparedFallback("literal arity mismatch")
        return template, True
    cache.check_unpreparable(key, session.user)
    try:
        template = _build_template(
            db, skeleton, literals, session, mode, params_key, signature_text
        )
    except PreparedFallback:
        cache.note_unpreparable(key, session.user)
        raise
    cache.store(key, template)
    return template, False


def _build_template(
    db,
    skeleton,
    literals: tuple,
    session,
    mode: str,
    params_key: tuple,
    signature_text: Optional[str],
) -> PreparedTemplate:
    names = placeholder_names(len(literals))

    # Version stamps are observed *before* any compilation: a policy or
    # DDL change racing with the build leaves the template stale on
    # arrival (a later lookup re-validates and evicts), never
    # accidentally fresh.
    grant_version = db.grants.user_version(session.user)
    schema_version = db.catalog.schema_version
    vpd_version = db.vpd_policies.version
    policy_epoch = (db.grants.version, db.catalog.views_version)
    data_version = db.validity_cache.data_version

    exec_query = skeleton
    if mode == "truman":
        from repro.truman.rewrite import truman_rewrite

        try:
            exec_query = truman_rewrite(db, skeleton, session)
        except (CatalogError, BindError, ParameterError) as exc:
            raise PreparedFallback(f"truman rewrite failed: {exc}")

    extra = access_param_names(exec_query) - names
    if extra:
        # e.g. access-pattern parameters inside a substituted view body
        raise PreparedFallback(
            "access-pattern parameters survive templating: "
            + ", ".join(sorted(extra))
        )

    relations = set(collect_relations(db, skeleton, mode))
    if mode == "truman":
        relations |= collect_relations(db, exec_query, mode)
    if mode == "non-truman":
        # Decisions depend on the user's *available* authorization views
        # (and transitively on the relations those views mention), not
        # just on the relations the query names: redefining a granted
        # view can flip validity.  The granted *names* must come from
        # the grant registry, not the catalog's current view list — a
        # build racing a drop/create redefinition can observe the window
        # where the view is absent, and a template stamped without it
        # would never go stale when the view reappears.  The grant
        # record (and the per-name relation_version counter) both
        # survive that window.  Granting/revoking itself is already
        # covered by grant_version.
        granted = {
            record.view
            for record in db.grants.grants()
            if db.grants.is_granted(record.view, session.user)
        }
        for name in granted:
            relations.add(name)
            if db.catalog.has_view(name):
                view = db.catalog.view(name)
                if view.authorization:
                    relations |= collect_relations(db, view.query, mode)

    relation_versions = tuple(
        sorted((name, db.catalog.relation_version(name)) for name in relations)
    )

    try:
        plan = db.plan_template(exec_query, session)
    except (
        UnknownTableError,
        CatalogError,
        BindError,
        ParameterError,
        UnsupportedFeatureError,
    ) as exc:
        raise PreparedFallback(f"cannot plan template: {exc}")

    binder = PlanBinder(plan, names)
    if signature_text is None:
        signature_text = render(skeleton)
    template = PreparedTemplate(
        skeleton=skeleton,
        user=session.user,
        mode=mode,
        params_key=params_key,
        signature_text=signature_text,
        n_literals=len(literals),
        grant_version=grant_version,
        relation_versions=relation_versions,
        schema_version=schema_version,
        policy_epoch=policy_epoch,
        vpd_version=vpd_version,
        binder=binder,
    )
    # seed the decision data-version floor (purely informational here;
    # decisions are stamped individually on store)
    template.decisions.restore_data_version(data_version)
    return template


# ---------------------------------------------------------------------------
# Decisions and execution
# ---------------------------------------------------------------------------


def decide_prepared(
    db, template: PreparedTemplate, skeleton, literals: tuple, session, ctx=None
) -> ValidityDecision:
    """Non-Truman decision for one bound literal tuple, consulting the
    template's embedded decision cache first (§5.6 carry-over rule)."""
    data_version = db.validity_cache.data_version
    cached = template.decisions.lookup_signed(
        session.user, skeleton, literals, session.user_id,
        data_version=data_version,
    )
    if cached is not None:
        validity, reason = cached
        return ValidityDecision(validity=validity, reason=reason, from_cache=True)
    bound = bind_skeleton(skeleton, literals)
    decision = db.check_validity(bound, session, ctx=ctx)
    template.decisions.store_signed(
        session.user,
        skeleton,
        literals,
        session.user_id,
        decision.validity,
        decision.reason,
        data_version=data_version,
    )
    return decision


def execute_prepared(
    db,
    source: Union[str, ast.QueryExpr],
    session,
    mode: str,
    engine: Optional[str] = None,
    ctx=None,
):
    """Full Database-level prepared execution; raises
    :class:`PreparedFallback` when the standard path must be used."""
    if mode not in PREPARABLE_MODES:
        raise PreparedFallback(f"mode {mode!r} is not preparable")
    skeleton, literals, signature_text = resolve_signature(db, source)
    template, _hit = get_or_build_template(
        db, skeleton, literals, session, mode, signature_text
    )
    if mode == "non-truman":
        decision = decide_prepared(db, template, skeleton, literals, session, ctx)
        if not decision.valid:
            raise QueryRejectedError(
                f"query rejected by Non-Truman model: {decision.reason}",
                decision=decision,
            )
    plan = template.binder.bind(literals)
    return db.run_plan(
        plan,
        session=session,
        engine=engine,
        ctx=ctx,
        optimize=False,
        compile_cache=template.compile_cache,
    )
