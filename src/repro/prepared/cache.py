"""The prepared-statement template cache (paper §5.6).

Two LRU tiers:

* a **text tier** mapping raw SQL text to its parsed signature
  ``(skeleton, literals, signature_text)``.  This is pure parse
  memoization — user-independent and state-independent (stripping
  literals commutes with everything) — so it never needs invalidation.
  It is what makes *transparent* server-side templating possible: a
  plain repeated query string skips the parser entirely.
* a **template tier** mapping ``(skeleton, user, mode, params_key)`` to
  a :class:`~repro.prepared.template.PreparedTemplate`.

Invalidation is **exact**, not epoch-global.  Each template is stamped
with the version counters of precisely the state it was compiled from:

* ``grants.user_version(user)`` — the per-user (+PUBLIC) grant-change
  counters.  A grant to user A never evicts user B's templates.
* ``catalog.relation_version(name)`` for every relation the skeleton
  transitively references (through view definitions and Truman view
  substitutions).  DDL on relation X never evicts templates over Y.
* the VPD policy-set version (policy attachment is rare and global).

A template is validated against the live counters on every lookup, so
even without the proactive ``invalidate_*`` hooks a stale template can
never be served; the hooks merely evict eagerly so the stats stay
honest.  Validity decisions inside a template are additionally stamped
with the database data version (conditional decisions and rejections
are state-dependent; see :mod:`repro.nontruman.cache`).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.prepared.template import PreparedFallback, PreparedTemplate

#: templates per (user, mode, params) slot before LRU eviction
DEFAULT_MAX_TEMPLATES = 256
DEFAULT_MAX_TEXTS = 1024
_MAX_NEGATIVE = 512


class PreparedStatementCache:
    """Thread-safe two-tier cache of prepared artifacts for one
    :class:`~repro.db.Database`."""

    def __init__(
        self,
        db,
        max_templates: int = DEFAULT_MAX_TEMPLATES,
        max_texts: int = DEFAULT_MAX_TEXTS,
    ):
        self._db = db
        self._lock = threading.RLock()
        self._templates: "OrderedDict[tuple, PreparedTemplate]" = OrderedDict()
        self._texts: "OrderedDict[str, tuple]" = OrderedDict()
        #: keys that recently failed to build, stamped with the version
        #: snapshot at failure time (a policy/DDL change may make them
        #: preparable, so stale stamps drop the negative entry)
        self._negative: "OrderedDict[tuple, tuple]" = OrderedDict()
        self.max_templates = max_templates
        self.max_texts = max_texts
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: calls to invalidate_user / invalidate_relation (counted even
        #: when nothing matched — replication idempotence tests assert a
        #: re-applied policy record triggers no second call)
        self.user_invalidations = 0
        self.relation_invalidations = 0
        self.evictions = 0
        self.builds = 0
        self.text_hits = 0
        self.text_misses = 0

    # -- version stamps ---------------------------------------------------

    def _stamp(self, user) -> tuple:
        db = self._db
        return (
            db.grants.user_version(user),
            db.catalog.schema_version,
            db.vpd_policies.version,
        )

    def _is_stale(self, template: PreparedTemplate) -> bool:
        db = self._db
        if db.grants.user_version(template.user) != template.grant_version:
            return True
        if db.vpd_policies.version != template.vpd_version:
            return True
        for name, version in template.relation_versions:
            if db.catalog.relation_version(name) != version:
                return True
        return False

    # -- text tier --------------------------------------------------------

    def lookup_text(self, sql: str) -> Optional[tuple]:
        """Memoized ``(skeleton, literals, signature_text)`` for raw SQL."""
        with self._lock:
            entry = self._texts.get(sql)
            if entry is None:
                self.text_misses += 1
                return None
            self.text_hits += 1
            self._texts.move_to_end(sql)
            return entry

    def remember_text(
        self, sql: str, skeleton, literals: tuple, signature_text: str
    ) -> None:
        with self._lock:
            self._texts[sql] = (skeleton, literals, signature_text)
            self._texts.move_to_end(sql)
            while len(self._texts) > self.max_texts:
                self._texts.popitem(last=False)

    # -- template tier ----------------------------------------------------

    def lookup(self, key: tuple) -> Optional[PreparedTemplate]:
        with self._lock:
            template = self._templates.get(key)
            if template is None:
                self.misses += 1
                return None
            if self._is_stale(template):
                del self._templates[key]
                self.invalidations += 1
                self.misses += 1
                return None
            self.hits += 1
            self._templates.move_to_end(key)
            return template

    def store(self, key: tuple, template: PreparedTemplate) -> None:
        with self._lock:
            self.builds += 1
            self._templates[key] = template
            self._templates.move_to_end(key)
            self._negative.pop(key, None)
            while len(self._templates) > self.max_templates:
                self._templates.popitem(last=False)
                self.evictions += 1

    # -- negative cache ---------------------------------------------------

    def note_unpreparable(self, key: tuple, user) -> None:
        with self._lock:
            self._negative[key] = self._stamp(user)
            self._negative.move_to_end(key)
            while len(self._negative) > _MAX_NEGATIVE:
                self._negative.popitem(last=False)

    def check_unpreparable(self, key: tuple, user) -> None:
        """Raise :class:`PreparedFallback` if ``key`` recently failed to
        build and nothing relevant changed since."""
        with self._lock:
            stamp = self._negative.get(key)
            if stamp is None:
                return
            if stamp != self._stamp(user):
                del self._negative[key]
                return
        raise PreparedFallback("query is known to be unpreparable")

    # -- eager invalidation ----------------------------------------------

    def invalidate_user(self, user) -> None:
        """Drop templates belonging to ``user`` (PUBLIC drops all —
        a PUBLIC grant changes every user's available views)."""
        from repro.authviews.registry import PUBLIC

        key_user = None if user is None else str(user).lower()
        with self._lock:
            self.user_invalidations += 1
            doomed = [
                key
                for key, template in self._templates.items()
                if key_user == PUBLIC
                or (template.user is None and key_user is None)
                or (
                    template.user is not None
                    and str(template.user).lower() == key_user
                )
            ]
            for key in doomed:
                del self._templates[key]
            self.invalidations += len(doomed)
            self._negative.clear()

    def invalidate_relation(self, name: str) -> None:
        """Drop templates that (transitively) reference ``name``."""
        with self._lock:
            self.relation_invalidations += 1
            doomed = [
                key
                for key, template in self._templates.items()
                if template.references(name)
            ]
            for key in doomed:
                del self._templates[key]
            self.invalidations += len(doomed)
            self._negative.clear()

    def invalidate_all(self) -> None:
        with self._lock:
            self.invalidations += len(self._templates)
            self._templates.clear()
            self._negative.clear()

    # -- introspection ----------------------------------------------------

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._templates)

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "prepared_templates": len(self._templates),
                "prepared_texts": len(self._texts),
                "prepared_hits": self.hits,
                "prepared_misses": self.misses,
                "prepared_hit_rate": (self.hits / total) if total else 0.0,
                "prepared_builds": self.builds,
                "prepared_invalidations": self.invalidations,
                "prepared_user_invalidations": self.user_invalidations,
                "prepared_relation_invalidations": self.relation_invalidations,
                "prepared_evictions": self.evictions,
                "prepared_text_hits": self.text_hits,
                "prepared_text_misses": self.text_misses,
            }
