"""Prepared-statement templates: literal binding over compiled artifacts.

A *template* captures everything the engine computed for one
literal-stripped query skeleton — the skeleton AST, the translated (and
selection-pushed) algebra plan, cached validity decisions, and a
compiled-kernel cache for the vectorized engine.  Serving a repeated
query then reduces to substituting the new literals into the stored
plan (:class:`PlanBinder`) and running it, with **zero** parse, check,
or plan work.

Binding happens at two levels:

* :func:`bind_skeleton` substitutes literals back into a skeleton AST —
  the exact inverse of :func:`repro.nontruman.cache.query_signature` —
  used when a fresh validity check is unavoidable (decision-cache miss).
* :class:`PlanBinder` substitutes literals directly into the algebra
  plan.  It precomputes which operators/expressions contain
  placeholders and path-copies only those, so unaffected subtrees keep
  their object identity across binds.  Identity-stable expressions are
  safe keys for the per-template :class:`PlanCompileCache`: the
  vectorized executor reuses compiled kernels for them instead of
  re-compiling on every execution.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.sql import ast
from repro.algebra import expr as exprs
from repro.algebra import ops
from repro.nontruman.cache import ValidityCache


class PreparedFallback(Exception):
    """This query cannot be served from the prepared pipeline; the
    caller must fall back to the standard parse → check → plan path."""


def placeholder_names(count: int) -> frozenset:
    """Placeholder names for a ``count``-literal signature."""
    return frozenset(f"_lit{i + 1}" for i in range(count))


def bind_values(literals: tuple) -> dict:
    """Literal tuple → placeholder-name value map (1-indexed)."""
    return {f"_lit{i + 1}": value for i, value in enumerate(literals)}


def bind_skeleton(skeleton: ast.QueryExpr, literals: tuple) -> ast.QueryExpr:
    """Substitute ``literals`` back into a signature skeleton (the exact
    inverse of :func:`~repro.nontruman.cache.query_signature`)."""
    from repro.algebra.translate import _map_query_exprs

    values = bind_values(literals)
    return _map_query_exprs(
        skeleton, lambda e: exprs.substitute_access_params(e, values)
    )


# ---------------------------------------------------------------------------
# Sparse (identity-preserving) substitution over plan expressions
# ---------------------------------------------------------------------------


def _substitute_sparse(expr: Optional[ast.Expr], values: dict) -> Optional[ast.Expr]:
    """Like :func:`exprs.substitute_access_params` but returns ``expr``
    itself (same object) when no placeholder occurs in it, so clean
    subtrees keep their identity across binds."""
    if expr is None:
        return None
    if isinstance(expr, ast.AccessParam):
        if expr.name in values:
            return ast.Literal(values[expr.name])
        return expr
    children = ast.expr_children(expr)
    if not children:
        return expr
    new_children = tuple(_substitute_sparse(c, values) for c in children)
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return _rebuild_expr(expr, new_children)


def _rebuild_expr(expr: ast.Expr, children: tuple) -> ast.Expr:
    """Rebuild ``expr`` with new children, mirroring the child order of
    :func:`ast.expr_children`."""
    if isinstance(expr, ast.BinaryOp):
        return dataclasses.replace(expr, left=children[0], right=children[1])
    if isinstance(expr, (ast.UnaryOp, ast.IsNull, ast.InSubquery)):
        return dataclasses.replace(expr, operand=children[0])
    if isinstance(expr, ast.InList):
        return dataclasses.replace(expr, operand=children[0], items=children[1:])
    if isinstance(expr, ast.Between):
        return dataclasses.replace(
            expr, operand=children[0], low=children[1], high=children[2]
        )
    if isinstance(expr, ast.FuncCall):
        return dataclasses.replace(expr, args=children)
    if isinstance(expr, ast.CaseExpr):
        pairs = len(expr.branches)
        branches = tuple(
            (children[2 * i], children[2 * i + 1]) for i in range(pairs)
        )
        default = children[2 * pairs] if expr.default is not None else None
        return dataclasses.replace(expr, branches=branches, default=default)
    raise PreparedFallback(
        f"cannot rebuild expression node {type(expr).__name__}"
    )


# ---------------------------------------------------------------------------
# Compiled-kernel cache (vectorized engine)
# ---------------------------------------------------------------------------


class PlanCompileCache:
    """Per-template cache of compiled vector kernels.

    Keys are ``(id(expr), columns)`` where ``expr`` is an
    identity-stable (placeholder-free) node of the template's plan.
    The id-keying is safe because the template holds live references to
    all cacheable nodes, so their ids can never be recycled while the
    cache is alive; ``cacheable`` whitelists exactly those ids.
    Updates race benignly (last writer wins under the GIL): compiling
    the same pure expression twice yields equivalent kernels.
    """

    def __init__(self, cacheable_ids: frozenset):
        self.cacheable = cacheable_ids
        self._fns: dict = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, key):
        fn = self._fns.get(key)
        if fn is None:
            self.misses += 1
        else:
            self.hits += 1
        return fn

    def store(self, key, fn) -> None:
        self._fns[key] = fn

    @property
    def size(self) -> int:
        return len(self._fns)


# ---------------------------------------------------------------------------
# Plan binder
# ---------------------------------------------------------------------------

#: operator types the binder knows how to path-copy
_CHILD_FIELDS = {
    ops.Select: ("child",),
    ops.Project: ("child",),
    ops.Distinct: ("child",),
    ops.Alias: ("child",),
    ops.Sort: ("child",),
    ops.Limit: ("child",),
    ops.Aggregate: ("child",),
    ops.Join: ("left", "right"),
    ops.SemiJoin: ("left", "right"),
    ops.SetOperation: ("left", "right"),
    ops.Rel: (),
}


def _op_exprs(op: ops.Operator):
    """Yield the scalar expressions owned directly by ``op``."""
    if isinstance(op, ops.Select):
        yield op.predicate
    elif isinstance(op, ops.Project):
        for expr, _name in op.exprs:
            yield expr
    elif isinstance(op, ops.Join):
        if op.predicate is not None:
            yield op.predicate
    elif isinstance(op, ops.SemiJoin):
        if op.operand is not None:
            yield op.operand
    elif isinstance(op, ops.Aggregate):
        for expr, _name in op.group_exprs:
            yield expr
        for call, _name in op.aggregates:
            yield call
    elif isinstance(op, ops.Sort):
        for expr, _desc in op.keys:
            yield expr


class PlanBinder:
    """Binds literal tuples into a template plan by path-copying.

    At construction, walks the plan once and records (a) which
    operators transitively contain a ``_litN`` placeholder — only those
    are rebuilt per bind — and (b) the ids of all placeholder-free
    expression nodes, which form the :class:`PlanCompileCache`
    whitelist (they survive every bind with identity intact).
    """

    def __init__(self, plan: ops.Operator, names: frozenset):
        self.plan = plan
        self.names = names
        self._dirty_ops: set[int] = set()
        self._cacheable: set[int] = set()
        self._analyze(plan)
        self.cacheable_ids = frozenset(self._cacheable)

    # -- analysis ---------------------------------------------------------

    def _scan_expr(self, expr: ast.Expr) -> bool:
        """True if ``expr`` contains a bindable placeholder; records
        placeholder-free nodes as compile-cacheable."""
        dirty = isinstance(expr, ast.AccessParam) and expr.name in self.names
        for child in ast.expr_children(expr):
            if self._scan_expr(child):
                dirty = True
        if not dirty:
            self._cacheable.add(id(expr))
        return dirty

    def _analyze(self, op: ops.Operator) -> bool:
        if type(op) not in _CHILD_FIELDS:
            # ViewRel / DependentJoin / unknown operators: witness-style
            # plans are not built by the prepared pipeline; bail out
            # rather than risk a wrong rebuild.
            raise PreparedFallback(
                f"unsupported operator in prepared plan: {type(op).__name__}"
            )
        dirty = False
        for field in _CHILD_FIELDS[type(op)]:
            if self._analyze(getattr(op, field)):
                dirty = True
        for expr in _op_exprs(op):
            if self._scan_expr(expr):
                dirty = True
        if dirty:
            self._dirty_ops.add(id(op))
        return dirty

    # -- binding ----------------------------------------------------------

    def bind(self, literals: tuple) -> ops.Operator:
        """Plan with ``literals`` substituted for the placeholders.
        Operators without placeholders are shared, not copied."""
        from repro.instrument import COUNTERS

        COUNTERS.bump("prepared.bind")
        if not self._dirty_ops:
            return self.plan
        return self._bind_op(self.plan, bind_values(literals))

    def _bind_op(self, op: ops.Operator, values: dict) -> ops.Operator:
        if id(op) not in self._dirty_ops:
            return op
        changes: dict = {}
        for field in _CHILD_FIELDS[type(op)]:
            changes[field] = self._bind_op(getattr(op, field), values)
        if isinstance(op, ops.Select):
            changes["predicate"] = _substitute_sparse(op.predicate, values)
        elif isinstance(op, ops.Project):
            changes["exprs"] = tuple(
                (_substitute_sparse(e, values), name) for e, name in op.exprs
            )
        elif isinstance(op, ops.Join):
            changes["predicate"] = _substitute_sparse(op.predicate, values)
        elif isinstance(op, ops.SemiJoin):
            changes["operand"] = _substitute_sparse(op.operand, values)
        elif isinstance(op, ops.Aggregate):
            changes["group_exprs"] = tuple(
                (_substitute_sparse(e, values), name)
                for e, name in op.group_exprs
            )
            changes["aggregates"] = tuple(
                (_substitute_sparse(call, values), name)
                for call, name in op.aggregates
            )
        elif isinstance(op, ops.Sort):
            changes["keys"] = tuple(
                (_substitute_sparse(e, values), desc) for e, desc in op.keys
            )
        return dataclasses.replace(op, **changes)


# ---------------------------------------------------------------------------
# The template
# ---------------------------------------------------------------------------


class PreparedTemplate:
    """One fully-compiled artifact for a (skeleton, user, mode, params)
    cache slot, with the version stamps that govern its staleness."""

    __slots__ = (
        "skeleton",
        "user",
        "mode",
        "params_key",
        "signature_text",
        "n_literals",
        "grant_version",
        "relation_versions",
        "schema_version",
        "policy_epoch",
        "vpd_version",
        "binder",
        "compile_cache",
        "decisions",
    )

    def __init__(
        self,
        skeleton: ast.QueryExpr,
        user,
        mode: str,
        params_key: tuple,
        signature_text: str,
        n_literals: int,
        grant_version: tuple,
        relation_versions: tuple,
        schema_version: int,
        policy_epoch: tuple,
        vpd_version: int,
        binder: PlanBinder,
    ):
        self.skeleton = skeleton
        self.user = user
        self.mode = mode
        self.params_key = params_key
        self.signature_text = signature_text
        self.n_literals = n_literals
        self.grant_version = grant_version
        self.relation_versions = relation_versions
        self.schema_version = schema_version
        self.policy_epoch = policy_epoch
        self.vpd_version = vpd_version
        self.binder = binder
        self.compile_cache = PlanCompileCache(binder.cacheable_ids)
        #: cached Non-Truman decisions for this slot; reuses the §5.6
        #: literal-carry-over rule (entry_matches) and data-version
        #: stamping of the session cache verbatim
        self.decisions = ValidityCache(max_entries=8)

    def references(self, relation: str) -> bool:
        key = relation.lower()
        return any(name == key for name, _v in self.relation_versions)
