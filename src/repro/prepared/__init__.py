"""Prepared statements (paper §5.6): compile once, bind per request.

``repro.prepared`` caches the full compiled artifact of a query —
literal-stripped skeleton AST, translated algebra plan, Non-Truman
validity decisions, and vectorized kernels — keyed on
``(signature, user, mode, session params)`` and stamped with exact
policy/DDL version counters, so a hot repeated query skips
parse → check → plan entirely while remaining observationally identical
to fresh execution.  See :mod:`repro.prepared.cache` for the
invalidation invariants.
"""

from repro.prepared.cache import PreparedStatementCache
from repro.prepared.pipeline import (
    PREPARABLE_MODES,
    decide_prepared,
    execute_prepared,
    get_or_build_template,
    resolve_signature,
)
from repro.prepared.template import (
    PlanBinder,
    PlanCompileCache,
    PreparedFallback,
    PreparedTemplate,
    bind_skeleton,
    placeholder_names,
)

__all__ = [
    "PREPARABLE_MODES",
    "PlanBinder",
    "PlanCompileCache",
    "PreparedFallback",
    "PreparedStatementCache",
    "PreparedTemplate",
    "bind_skeleton",
    "decide_prepared",
    "execute_prepared",
    "get_or_build_template",
    "placeholder_names",
    "resolve_signature",
]
