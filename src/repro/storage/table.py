"""In-memory multiset table storage.

Rows are Python tuples keyed by a monotonically increasing row id; a
table is a *multiset* (SQL bag semantics) — the same tuple value may
appear under many row ids.  Hash indexes are maintained incrementally
on insert/delete.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.errors import ExecutionError, IntegrityError
from repro.catalog.schema import TableSchema
from repro.catalog.types import coerce_value
from repro.storage.index import HashIndex


class Table:
    """Row storage for one base table."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[int, tuple] = {}
        self._next_id = 0
        self._indexes: list[HashIndex] = []

    # -- index management -------------------------------------------------

    def create_index(self, columns: Iterable[str], unique: bool = False) -> HashIndex:
        names = tuple(columns)
        ordinals = tuple(self.schema.column_index(c) for c in names)
        index = HashIndex(self.schema.name, ordinals, names, unique=unique)
        for row_id, row in self._rows.items():
            index.insert(row_id, row)
        self._indexes.append(index)
        return index

    def find_index(self, columns: Iterable[str]) -> Optional[HashIndex]:
        wanted = tuple(self.schema.column_index(c) for c in columns)
        for index in self._indexes:
            if index.columns == wanted:
                return index
        return None

    # -- row access ---------------------------------------------------------

    def rows(self) -> Iterator[tuple]:
        """Iterate over the current rows (bag semantics)."""
        return iter(list(self._rows.values()))

    def rows_with_ids(self) -> Iterator[tuple[int, tuple]]:
        return iter(list(self._rows.items()))

    def get_row(self, row_id: int) -> tuple:
        try:
            return self._rows[row_id]
        except KeyError as exc:
            raise ExecutionError(f"no row with id {row_id}") from exc

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    # -- mutation -------------------------------------------------------------

    def _coerce(self, values: tuple) -> tuple:
        if len(values) != len(self.schema.columns):
            raise ExecutionError(
                f"{self.schema.name}: expected {len(self.schema.columns)} values, "
                f"got {len(values)}"
            )
        coerced = []
        for value, col in zip(values, self.schema.columns):
            if value is None and col.not_null:
                raise IntegrityError(
                    f"NULL in NOT NULL column {self.schema.name}.{col.name}"
                )
            coerced.append(coerce_value(value, col.dtype))
        return tuple(coerced)

    def insert(self, values: tuple) -> int:
        row = self._coerce(values)
        for index in self._indexes:
            if index.would_violate(row):
                raise IntegrityError(
                    f"unique violation on {self.schema.name}"
                    f"({', '.join(index.column_names)}): {index.key_of(row)!r}"
                )
        row_id = self._next_id
        self._next_id += 1
        self._rows[row_id] = row
        for index in self._indexes:
            index.insert(row_id, row)
        return row_id

    def delete_row(self, row_id: int) -> tuple:
        row = self.get_row(row_id)
        del self._rows[row_id]
        for index in self._indexes:
            index.delete(row_id, row)
        return row

    def update_row(self, row_id: int, values: tuple) -> tuple:
        """Replace the row under ``row_id``; returns the old row."""
        old = self.get_row(row_id)
        new = self._coerce(values)
        for index in self._indexes:
            if index.would_violate(new, ignore_row_id=row_id):
                raise IntegrityError(
                    f"unique violation on {self.schema.name}"
                    f"({', '.join(index.column_names)}): {index.key_of(new)!r}"
                )
        for index in self._indexes:
            index.delete(row_id, old)
        self._rows[row_id] = new
        for index in self._indexes:
            index.insert(row_id, new)
        return old

    def delete_where(self, predicate: Callable[[tuple], bool]) -> int:
        """Delete all rows satisfying ``predicate``; returns count deleted."""
        doomed = [rid for rid, row in self.rows_with_ids() if predicate(row)]
        for rid in doomed:
            self.delete_row(rid)
        return len(doomed)

    def truncate(self) -> None:
        for rid in list(self._rows):
            self.delete_row(rid)

    # -- statistics (for the cost model) ------------------------------------

    def distinct_count(self, column: str) -> int:
        ordinal = self.schema.column_index(column)
        return len({row[ordinal] for row in self._rows.values()})
