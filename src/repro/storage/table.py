"""In-memory multiset table storage.

Rows are Python tuples keyed by a monotonically increasing row id; a
table is a *multiset* (SQL bag semantics) — the same tuple value may
appear under many row ids.  Hash indexes are maintained incrementally
on insert/delete.

Mutations are **atomic across all indexes**: if applying a change to a
later index raises (e.g. a unique violation that slipped past the
pre-check under concurrent mutation), every already-applied index entry
is rolled back and the row map is left untouched, so storage can never
end half-mutated.

Each table carries an optional ``on_mutate`` hook, set by the
durability layer (:mod:`repro.durability`): after a mutation fully
succeeds the hook receives ``("insert", row_id, row)``,
``("update", row_id, new_row, old_row)``, ``("delete", row_id, row)``,
or ``("index", column_names, unique)`` and appends the matching WAL
record.  In-memory databases leave the hook ``None``; the cost on that
path is one attribute check per mutation and nothing on reads.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.errors import ExecutionError, IntegrityError
from repro.catalog.schema import TableSchema
from repro.catalog.types import coerce_value
from repro.storage.index import HashIndex


class Table:
    """Row storage for one base table."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[int, tuple] = {}
        self._next_id = 0
        self._indexes: list[HashIndex] = []
        #: durability hook; see module docstring
        self.on_mutate: Optional[Callable[..., None]] = None
        self._data_version = 0

    @property
    def data_version(self) -> int:
        """Monotonic count of successful mutations on this relation.

        Exposed through ``\\stats`` so clients can compare a replica's
        applied state against the primary without diffing rows.
        """
        return self._data_version

    # -- index management -------------------------------------------------

    def create_index(self, columns: Iterable[str], unique: bool = False) -> HashIndex:
        names = tuple(columns)
        ordinals = tuple(self.schema.column_index(c) for c in names)
        index = HashIndex(self.schema.name, ordinals, names, unique=unique)
        for row_id, row in self._rows.items():
            index.insert(row_id, row)
        self._indexes.append(index)
        if self.on_mutate is not None:
            self.on_mutate("index", names, unique)
        return index

    def find_index(self, columns: Iterable[str]) -> Optional[HashIndex]:
        wanted = tuple(self.schema.column_index(c) for c in columns)
        for index in self._indexes:
            if index.columns == wanted:
                return index
        return None

    def has_index(self, columns: Iterable[str], unique: bool) -> bool:
        """True when an index on exactly these columns + uniqueness exists."""
        wanted = tuple(self.schema.column_index(c) for c in columns)
        return any(
            index.columns == wanted and index.unique == unique
            for index in self._indexes
        )

    def index_defs(self) -> list[tuple[tuple[str, ...], bool]]:
        """(column names, unique) for every index, in creation order."""
        return [(index.column_names, index.unique) for index in self._indexes]

    # -- row access ---------------------------------------------------------

    def rows(self) -> Iterator[tuple]:
        """Iterate over the current rows (bag semantics)."""
        return iter(list(self._rows.values()))

    def rows_with_ids(self) -> Iterator[tuple[int, tuple]]:
        return iter(list(self._rows.items()))

    def get_row(self, row_id: int) -> tuple:
        try:
            return self._rows[row_id]
        except KeyError as exc:
            raise ExecutionError(f"no row with id {row_id}") from exc

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def next_row_id(self) -> int:
        return self._next_id

    def set_next_row_id(self, next_id: int) -> None:
        """Restore the id counter (snapshot load; ids must stay stable)."""
        self._next_id = max(self._next_id, next_id)

    # -- mutation -------------------------------------------------------------

    def _coerce(self, values: tuple) -> tuple:
        if len(values) != len(self.schema.columns):
            raise ExecutionError(
                f"{self.schema.name}: expected {len(self.schema.columns)} values, "
                f"got {len(values)}"
            )
        coerced = []
        for value, col in zip(values, self.schema.columns):
            if value is None and col.not_null:
                raise IntegrityError(
                    f"NULL in NOT NULL column {self.schema.name}.{col.name}"
                )
            coerced.append(coerce_value(value, col.dtype))
        return tuple(coerced)

    def insert(self, values: tuple, row_id: Optional[int] = None) -> int:
        """Insert a row; returns its id.

        ``row_id`` pins the id during WAL replay / snapshot load, where
        ids recorded before the crash must keep addressing the same
        rows.
        """
        row = self._coerce(values)
        for index in self._indexes:
            if index.would_violate(row):
                raise IntegrityError(
                    f"unique violation on {self.schema.name}"
                    f"({', '.join(index.column_names)}): {index.key_of(row)!r}"
                )
        if row_id is None:
            rid = self._next_id
        else:
            if row_id in self._rows:
                raise ExecutionError(
                    f"{self.schema.name}: row id {row_id} already exists"
                )
            rid = row_id
        applied: list[HashIndex] = []
        try:
            for index in self._indexes:
                index.insert(rid, row)
                applied.append(index)
        except BaseException:
            # atomicity across indexes: undo the entries already applied
            for index in applied:
                index.delete(rid, row)
            raise
        self._next_id = max(self._next_id, rid + 1)
        self._rows[rid] = row
        self._data_version += 1
        if self.on_mutate is not None:
            self.on_mutate("insert", rid, row)
        return rid

    def delete_row(self, row_id: int) -> tuple:
        row = self.get_row(row_id)
        del self._rows[row_id]
        for index in self._indexes:
            index.delete(row_id, row)
        self._data_version += 1
        if self.on_mutate is not None:
            self.on_mutate("delete", row_id, row)
        return row

    def update_row(self, row_id: int, values: tuple) -> tuple:
        """Replace the row under ``row_id``; returns the old row."""
        old = self.get_row(row_id)
        new = self._coerce(values)
        for index in self._indexes:
            if index.would_violate(new, ignore_row_id=row_id):
                raise IntegrityError(
                    f"unique violation on {self.schema.name}"
                    f"({', '.join(index.column_names)}): {index.key_of(new)!r}"
                )
        for index in self._indexes:
            index.delete(row_id, old)
        applied: list[HashIndex] = []
        try:
            for index in self._indexes:
                index.insert(row_id, new)
                applied.append(index)
        except BaseException:
            # roll the indexes back to the pre-update image
            for index in applied:
                index.delete(row_id, new)
            for index in self._indexes:
                index.insert(row_id, old)
            raise
        self._rows[row_id] = new
        self._data_version += 1
        if self.on_mutate is not None:
            self.on_mutate("update", row_id, new, old)
        return old

    def delete_where(self, predicate: Callable[[tuple], bool]) -> int:
        """Delete all rows satisfying ``predicate``; returns count deleted."""
        doomed = [rid for rid, row in self.rows_with_ids() if predicate(row)]
        for rid in doomed:
            self.delete_row(rid)
        return len(doomed)

    def truncate(self) -> None:
        for rid in list(self._rows):
            self.delete_row(rid)

    # -- statistics (for the cost model) ------------------------------------

    def distinct_count(self, column: str) -> int:
        ordinal = self.schema.column_index(column)
        return len({row[ordinal] for row in self._rows.values()})
