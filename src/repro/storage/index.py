"""Hash indexes over in-memory tables.

An index maps a tuple of column values to the multiset of row ids
holding those values.  Unique indexes additionally enforce that at most
one *live* row carries each key (rows containing NULL in any indexed
column are exempt, matching SQL UNIQUE semantics).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

from repro.errors import IntegrityError


class HashIndex:
    """Equality index on one or more columns of a table."""

    def __init__(self, table_name: str, columns: tuple[int, ...], column_names: tuple[str, ...], unique: bool = False):
        self.table_name = table_name
        self.columns = columns  # ordinal positions in the row
        self.column_names = column_names
        self.unique = unique
        self._buckets: dict[tuple, set[int]] = defaultdict(set)

    def key_of(self, row: tuple) -> tuple:
        return tuple(row[i] for i in self.columns)

    def _has_null(self, key: tuple) -> bool:
        return any(v is None for v in key)

    def insert(self, row_id: int, row: tuple) -> None:
        key = self.key_of(row)
        if self.unique and not self._has_null(key) and self._buckets.get(key):
            cols = ", ".join(self.column_names)
            raise IntegrityError(
                f"duplicate key {key!r} for unique index on {self.table_name}({cols})"
            )
        self._buckets[key].add(row_id)

    def delete(self, row_id: int, row: tuple) -> None:
        key = self.key_of(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(row_id)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: tuple) -> frozenset[int]:
        if self._has_null(key):
            return frozenset()
        return frozenset(self._buckets.get(key, ()))

    def would_violate(self, row: tuple, ignore_row_id: Optional[int] = None) -> bool:
        """True if inserting ``row`` would break uniqueness."""
        if not self.unique:
            return False
        key = self.key_of(row)
        if self._has_null(key):
            return False
        bucket = self._buckets.get(key, set())
        others = bucket - {ignore_row_id} if ignore_row_id is not None else bucket
        return bool(others)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())
