"""In-memory row storage with hash indexes."""

from repro.storage.table import Table
from repro.storage.index import HashIndex

__all__ = ["Table", "HashIndex"]
